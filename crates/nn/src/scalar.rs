//! The numeric element type of the NN substrate: a sealed [`Scalar`]
//! trait over `f32` and `f64`, plus the explicit SIMD microkernels the
//! GEMM path dispatches to.
//!
//! # Why generic, and why f32 by default
//!
//! The paper's networks are small fully-connected MLPs; nothing in them
//! needs f64 precision, and single precision doubles SIMD lane width
//! while halving memory traffic. [`Elem`] — the workspace-wide training
//! element type every downstream crate (`dss-rl`, `dss-miqp`, `dss-core`)
//! defaults to — is therefore `f32`. The `f64` instantiation stays fully
//! alive: every kernel, layer and agent is generic over [`Scalar`], the
//! property oracles and gradient checks run for both types, and swapping
//! one line (`pub type Elem = f64`) rebuilds the whole stack in double
//! precision for numerical debugging.
//!
//! # Microkernels
//!
//! The register-tile inner loop of the blocked GEMM (see
//! [`crate::matrix`]) used to rely on LLVM autovectorization plus
//! `target-cpu=native`. That made throughput depend on build-host luck.
//! The tile is now an explicit per-scalar microkernel:
//!
//! * **`avx2_fma`** (`x86_64` with AVX2+FMA, detected at runtime via
//!   `is_x86_feature_detected!`): `MR × TJ` accumulators held in `__m256`
//!   /`__m256d` registers, one broadcast + two fused multiply-adds per
//!   `A`-row per reduction step. f32 runs 8 lanes per vector (`TJ = 16`),
//!   f64 runs 4 (`TJ = 8`).
//! * **`avx512f`** (`x86_64` with AVX-512F, detected at runtime): the
//!   `MR × TJ` tiles above stay on the AVX2 kernel (they are already
//!   register-bound), and the serial streaming GEMM additionally gets a
//!   **wide** `WMR × 2·TJ` tile ([`Scalar::gemm_tile_wide`]: 8×32 f32,
//!   8×16 f64) holding 16 zmm accumulators — twice the rows *and* twice
//!   the columns in flight per `B`-stripe pass.
//! * **`neon`** (aarch64, where NEON is baseline): the same `MR × TJ`
//!   tile walked as `MR × 8` (f32) / `MR × 4` (f64) sub-tiles of 128-bit
//!   `vfmaq` accumulators.
//! * **`scalar`** (every other arch, or `DSS_NO_SIMD=1`): the same tile
//!   walked with `mul_add` in the same association order, so all
//!   kernels produce **bit-identical** results — asserted by tests, which
//!   is what lets CI exercise the fallback without separate tolerances.
//!   Every output element is one ascending-`l` FMA chain added into `out`
//!   exactly once, and none of the tile shapes regroup *within* an output
//!   element, which is why even the wide AVX-512 tile matches the scalar
//!   kernel bit for bit.
//!
//! The kernel is picked once per process (first GEMM call) from CPU
//! features and the `DSS_NO_SIMD` environment variable; tests and
//! benches can pin a kernel for the current thread with
//! [`with_microkernel`].

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU8, Ordering};

/// Register tile height shared by every kernel: `A` rows advanced
/// together, each broadcast against the same `B` stripe.
pub(crate) const MR: usize = 4;

/// Wide register tile height used by the AVX-512 streaming path
/// ([`Scalar::gemm_tile_wide`]): two [`MR`] row groups advanced together
/// against a double-width (`2·TJ`) `B` stripe.
pub(crate) const WMR: usize = 8;

/// The workspace-wide default training element type. See the module docs
/// for why this is `f32` and how to rebuild in `f64`.
pub type Elem = f32;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Which GEMM inner-tile implementation is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Microkernel {
    /// Explicit AVX2 + FMA intrinsics (x86_64, detected at runtime).
    Avx2Fma,
    /// AVX2 tiles plus the wide AVX-512F streaming tile (x86_64,
    /// detected at runtime; implies AVX2+FMA).
    Avx512,
    /// 128-bit NEON `vfmaq` tiles (aarch64 baseline).
    Neon,
    /// Portable `mul_add` tile, bit-identical to every SIMD kernel.
    Scalar,
}

impl Microkernel {
    /// Stable name recorded in bench artifacts
    /// (`avx2_fma` / `avx512f` / `neon` / `scalar`).
    pub fn name(self) -> &'static str {
        match self {
            Microkernel::Avx2Fma => "avx2_fma",
            Microkernel::Avx512 => "avx512f",
            Microkernel::Neon => "neon",
            Microkernel::Scalar => "scalar",
        }
    }
}

/// Process-wide kernel choice: 0 = undetected, 1 = AVX2+FMA, 2 = scalar,
/// 3 = AVX-512, 4 = NEON.
static KERNEL: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Per-thread override installed by [`with_microkernel`] (tests and
    /// benches); `None` defers to the process-wide detection.
    static KERNEL_OVERRIDE: Cell<Option<Microkernel>> = const { Cell::new(None) };
}

fn detect() -> Microkernel {
    if std::env::var_os("DSS_NO_SIMD").is_some_and(|v| v != "0") {
        return Microkernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Microkernel::Avx512;
        }
        return Microkernel::Avx2Fma;
    }
    #[cfg(target_arch = "aarch64")]
    return Microkernel::Neon;
    #[cfg(not(target_arch = "aarch64"))]
    Microkernel::Scalar
}

/// The microkernel GEMM calls on this thread will use: the thread's
/// [`with_microkernel`] override if one is installed, else the cached
/// process-wide detection (CPU features + `DSS_NO_SIMD`).
pub fn active_microkernel() -> Microkernel {
    if let Some(k) = KERNEL_OVERRIDE.with(Cell::get) {
        return k;
    }
    match KERNEL.load(Ordering::Relaxed) {
        1 => Microkernel::Avx2Fma,
        2 => Microkernel::Scalar,
        3 => Microkernel::Avx512,
        4 => Microkernel::Neon,
        _ => {
            let k = detect();
            KERNEL.store(
                match k {
                    Microkernel::Avx2Fma => 1,
                    Microkernel::Scalar => 2,
                    Microkernel::Avx512 => 3,
                    Microkernel::Neon => 4,
                },
                Ordering::Relaxed,
            );
            k
        }
    }
}

/// The active microkernel's stable name (`avx2_fma` / `scalar`) —
/// recorded in bench artifacts so measurements are attributable.
pub fn microkernel_name() -> &'static str {
    active_microkernel().name()
}

/// Whether this build/host can run the AVX2+FMA kernel at all (used by
/// tests to skip the bit-identity assertion on non-x86 hardware).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether this build/host can run the AVX-512 kernel (the wide tile
/// needs AVX-512F; the narrow tiles it shares with `avx2_fma` need
/// AVX2+FMA).
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx2_available() && std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether this build can run the NEON kernel (NEON is baseline on
/// aarch64, so this is a compile-time fact).
pub fn neon_available() -> bool {
    cfg!(target_arch = "aarch64")
}

/// Runs `f` with every GEMM on the *current thread* pinned to kernel `k`
/// (pool workers are unaffected — pin shapes below the sharding cutoff or
/// run under a 1-thread pool when exact kernel control matters).
///
/// # Panics
/// Panics when `k` is a SIMD kernel this host cannot run.
pub fn with_microkernel<R>(k: Microkernel, f: impl FnOnce() -> R) -> R {
    let available = match k {
        Microkernel::Avx2Fma => avx2_available(),
        Microkernel::Avx512 => avx512_available(),
        Microkernel::Neon => neon_available(),
        Microkernel::Scalar => true,
    };
    assert!(available, "{} kernel unavailable on this host", k.name());
    let prev = KERNEL_OVERRIDE.with(|c| c.replace(Some(k)));
    struct Restore(Option<Microkernel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            KERNEL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The numeric element type of matrices, networks and agents: `f32` or
/// `f64`, selected statically. Sealed — the GEMM microkernels, pack
/// scratch and math surface are written per type and the rest of the
/// workspace is generic over this trait (defaulted to [`Elem`]).
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + std::fmt::Debug
    + std::fmt::Display
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + std::ops::MulAssign
    + std::iter::Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// `-∞`, the fold seed for maxima.
    const NEG_INFINITY: Self;
    /// `+∞`, the fold seed for minima.
    const INFINITY: Self;
    /// Register tile width in output columns for this type's microkernel
    /// (two AVX2 vectors per tile row: 16 for f32, 8 for f64).
    const TJ: usize;
    /// Type name recorded in bench artifacts ("f32" / "f64").
    const NAME: &'static str;

    /// Lossy conversion from `f64` (exact for in-range integers and every
    /// `f32`). All scalar-literal plumbing funnels through this so the
    /// workspace still compiles when [`Elem`] is rebound.
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (exact).
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self * a + b` (single rounding — matches the
    /// FMA intrinsics, which is what keeps the scalar and AVX2 kernels
    /// bit-identical).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// IEEE maximum of two values.
    fn max(self, other: Self) -> Self;
    /// IEEE minimum of two values.
    fn min(self, other: Self) -> Self;
    /// NaN check.
    fn is_nan(self) -> bool;
    /// Finiteness check.
    fn is_finite(self) -> bool;

    /// Takes this thread's pack scratch buffer for transposed GEMM
    /// operands (moved out so a helping caller re-entering the kernel on
    /// the same thread cannot alias it); return it with
    /// [`Scalar::put_pack`].
    fn take_pack() -> Vec<Self>;
    /// Returns the pack scratch taken by [`Scalar::take_pack`].
    fn put_pack(buf: Vec<Self>);

    /// Broadcast-A register tile:
    /// `out[r·n + jt + x] += Σ_l a[r·k + l] · b[l·n + jt + x]`
    /// for `r ∈ 0..MR`, `x ∈ 0..TJ` — `a` is pre-sliced at the tile's
    /// first row, `out` at the tile's first output row.
    ///
    /// # Panics
    /// Debug-asserts the slice extents; release callers must uphold them.
    fn gemm_tile(
        kernel: Microkernel,
        a: &[Self],
        k: usize,
        b: &[Self],
        n: usize,
        jt: usize,
        out: &mut [Self],
    );

    /// Transposed-A register tile:
    /// `out[r·n + jt + x] += Σ_l a[l·p + q + r] · b[l·n + jt + x]` — the
    /// four broadcast scalars per step are four *adjacent columns* of the
    /// untransposed `a` (m×p row-major), so no packing is needed.
    #[allow(clippy::too_many_arguments)]
    fn gemm_tile_at(
        kernel: Microkernel,
        a: &[Self],
        m: usize,
        p: usize,
        q: usize,
        b: &[Self],
        n: usize,
        jt: usize,
        out: &mut [Self],
    );

    /// Wide broadcast-A register tile — [`WMR`]` = 8` rows × `2·TJ`
    /// output columns per call (8×32 f32, 8×16 f64). Under
    /// [`Microkernel::Avx512`] this runs a single zmm-register kernel;
    /// every other kernel composes four narrow [`Scalar::gemm_tile`]
    /// calls, which is bit-identical because each output element's
    /// ascending-`l` FMA chain is unchanged by the tile grouping.
    fn gemm_tile_wide(
        kernel: Microkernel,
        a: &[Self],
        k: usize,
        b: &[Self],
        n: usize,
        jt: usize,
        out: &mut [Self],
    );
}

macro_rules! impl_scalar {
    (
        $t:ty, $name:literal, $tj:literal, $pack:ident, $kern:ident,
        $vec:ident, $lanes:literal, $loadu:ident, $storeu:ident, $set1:ident, $fmadd:ident, $add:ident, $setzero:ident,
        $loadu512:ident, $storeu512:ident, $set1512:ident, $fmadd512:ident, $add512:ident, $setzero512:ident,
        $nlanes:literal, $nload:ident, $nstore:ident, $ndup:ident, $nfma:ident, $nadd:ident
    ) => {
        thread_local! {
            static $pack: RefCell<Vec<$t>> = const { RefCell::new(Vec::new()) };
        }

        /// Per-type tile kernels (scalar fallback + AVX2/AVX-512/NEON,
        /// same association order so their results are bit-identical).
        mod $kern {
            use super::{MR, WMR};
            const TJ: usize = $tj;

            /// Portable tile: `mul_add` per lane in the exact order the
            /// FMA intrinsics accumulate.
            pub fn tile(a: &[$t], k: usize, b: &[$t], n: usize, jt: usize, out: &mut [$t]) {
                debug_assert!(a.len() >= MR * k);
                debug_assert!(b.len() >= (k - 1) * n + jt + TJ);
                debug_assert!(out.len() >= (MR - 1) * n + jt + TJ);
                let mut acc = [[0.0 as $t; TJ]; MR];
                for l in 0..k {
                    let bt = &b[l * n + jt..l * n + jt + TJ];
                    for r in 0..MR {
                        let ar = a[r * k + l];
                        for x in 0..TJ {
                            acc[r][x] = ar.mul_add(bt[x], acc[r][x]);
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let o = &mut out[r * n + jt..r * n + jt + TJ];
                    for (ov, &av) in o.iter_mut().zip(acc_row) {
                        *ov += av;
                    }
                }
            }

            /// Portable transposed-A tile, same order as the AVX2 variant.
            #[allow(clippy::too_many_arguments)]
            pub fn tile_at(
                a: &[$t],
                m: usize,
                p: usize,
                q: usize,
                b: &[$t],
                n: usize,
                jt: usize,
                out: &mut [$t],
            ) {
                debug_assert!(a.len() >= (m - 1) * p + q + MR);
                debug_assert!(b.len() >= (m - 1) * n + jt + TJ);
                debug_assert!(out.len() >= (MR - 1) * n + jt + TJ);
                let mut acc = [[0.0 as $t; TJ]; MR];
                for l in 0..m {
                    let bt = &b[l * n + jt..l * n + jt + TJ];
                    let ar = &a[l * p + q..l * p + q + MR];
                    for r in 0..MR {
                        for x in 0..TJ {
                            acc[r][x] = ar[r].mul_add(bt[x], acc[r][x]);
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let o = &mut out[r * n + jt..r * n + jt + TJ];
                    for (ov, &av) in o.iter_mut().zip(acc_row) {
                        *ov += av;
                    }
                }
            }

            /// AVX2+FMA tile: MR rows × 2 vectors of accumulators live in
            /// registers across the whole reduction; one broadcast and two
            /// fused multiply-adds per row per step; the tile is added
            /// into `out` exactly once.
            ///
            /// # Safety
            /// Caller must ensure AVX2+FMA are available and the slice
            /// extents debug-asserted in [`tile`] hold.
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            pub unsafe fn tile_avx2(
                a: &[$t],
                k: usize,
                b: &[$t],
                n: usize,
                jt: usize,
                out: &mut [$t],
            ) {
                use std::arch::x86_64::*;
                debug_assert!(a.len() >= MR * k);
                debug_assert!(b.len() >= (k - 1) * n + jt + TJ);
                debug_assert!(out.len() >= (MR - 1) * n + jt + TJ);
                let mut acc = [[$setzero(); 2]; MR];
                let ap = a.as_ptr();
                let bp = b.as_ptr();
                for l in 0..k {
                    let b0 = $loadu(bp.add(l * n + jt));
                    let b1 = $loadu(bp.add(l * n + jt + $lanes));
                    for r in 0..MR {
                        let ar = $set1(*ap.add(r * k + l));
                        acc[r][0] = $fmadd(ar, b0, acc[r][0]);
                        acc[r][1] = $fmadd(ar, b1, acc[r][1]);
                    }
                }
                let op = out.as_mut_ptr();
                for (r, acc_row) in acc.iter().enumerate() {
                    let o = op.add(r * n + jt);
                    $storeu(o, $add($loadu(o), acc_row[0]));
                    let o1 = o.add($lanes);
                    $storeu(o1, $add($loadu(o1), acc_row[1]));
                }
            }

            /// AVX2+FMA transposed-A tile (contiguous 4-column `A` loads).
            ///
            /// # Safety
            /// Same contract as [`tile_avx2`].
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            #[allow(clippy::too_many_arguments)]
            pub unsafe fn tile_at_avx2(
                a: &[$t],
                m: usize,
                p: usize,
                q: usize,
                b: &[$t],
                n: usize,
                jt: usize,
                out: &mut [$t],
            ) {
                use std::arch::x86_64::*;
                debug_assert!(a.len() >= (m - 1) * p + q + MR);
                debug_assert!(b.len() >= (m - 1) * n + jt + TJ);
                debug_assert!(out.len() >= (MR - 1) * n + jt + TJ);
                let mut acc = [[$setzero(); 2]; MR];
                let ap = a.as_ptr();
                let bp = b.as_ptr();
                for l in 0..m {
                    let b0 = $loadu(bp.add(l * n + jt));
                    let b1 = $loadu(bp.add(l * n + jt + $lanes));
                    let arp = ap.add(l * p + q);
                    for r in 0..MR {
                        let ar = $set1(*arp.add(r));
                        acc[r][0] = $fmadd(ar, b0, acc[r][0]);
                        acc[r][1] = $fmadd(ar, b1, acc[r][1]);
                    }
                }
                let op = out.as_mut_ptr();
                for (r, acc_row) in acc.iter().enumerate() {
                    let o = op.add(r * n + jt);
                    $storeu(o, $add($loadu(o), acc_row[0]));
                    let o1 = o.add($lanes);
                    $storeu(o1, $add($loadu(o1), acc_row[1]));
                }
            }

            /// Portable wide tile (`WMR × 2·TJ`): four narrow tiles.
            /// Per-output-element FMA chains are identical to the fused
            /// AVX-512 kernel, so this is its bit oracle (and the
            /// fallback every non-AVX-512 kernel dispatches to).
            pub fn tile_wide(a: &[$t], k: usize, b: &[$t], n: usize, jt: usize, out: &mut [$t]) {
                for h in 0..WMR / MR {
                    for half in 0..2 {
                        tile(
                            &a[h * MR * k..],
                            k,
                            b,
                            n,
                            jt + half * TJ,
                            &mut out[h * MR * n..],
                        );
                    }
                }
            }

            /// AVX-512F wide tile: WMR rows × 2 zmm vectors (16
            /// accumulators) live in registers across the whole
            /// reduction; one broadcast and two fused multiply-adds per
            /// row per step; added into `out` exactly once.
            ///
            /// # Safety
            /// Caller must ensure AVX-512F is available; slice extents as
            /// debug-asserted.
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx512f")]
            pub unsafe fn tile_wide_avx512(
                a: &[$t],
                k: usize,
                b: &[$t],
                n: usize,
                jt: usize,
                out: &mut [$t],
            ) {
                use std::arch::x86_64::*;
                debug_assert!(a.len() >= WMR * k);
                debug_assert!(b.len() >= (k - 1) * n + jt + 2 * TJ);
                debug_assert!(out.len() >= (WMR - 1) * n + jt + 2 * TJ);
                let mut acc = [[$setzero512(); 2]; WMR];
                let ap = a.as_ptr();
                let bp = b.as_ptr();
                for l in 0..k {
                    let b0 = $loadu512(bp.add(l * n + jt));
                    let b1 = $loadu512(bp.add(l * n + jt + TJ));
                    for r in 0..WMR {
                        let ar = $set1512(*ap.add(r * k + l));
                        acc[r][0] = $fmadd512(ar, b0, acc[r][0]);
                        acc[r][1] = $fmadd512(ar, b1, acc[r][1]);
                    }
                }
                let op = out.as_mut_ptr();
                for (r, acc_row) in acc.iter().enumerate() {
                    let o = op.add(r * n + jt);
                    $storeu512(o, $add512($loadu512(o), acc_row[0]));
                    let o1 = o.add(TJ);
                    $storeu512(o1, $add512($loadu512(o1), acc_row[1]));
                }
            }

            /// NEON tile: the `MR × TJ` stripe walked as four 128-bit
            /// vectors per row (`MR × 2·lanes` sub-tiles), `vfmaq`
            /// accumulators in registers, added into `out` once.
            ///
            /// # Safety
            /// NEON is baseline on aarch64; slice extents as
            /// debug-asserted in [`tile`].
            #[cfg(target_arch = "aarch64")]
            #[target_feature(enable = "neon")]
            pub unsafe fn tile_neon(
                a: &[$t],
                k: usize,
                b: &[$t],
                n: usize,
                jt: usize,
                out: &mut [$t],
            ) {
                use std::arch::aarch64::*;
                debug_assert!(a.len() >= MR * k);
                debug_assert!(b.len() >= (k - 1) * n + jt + TJ);
                debug_assert!(out.len() >= (MR - 1) * n + jt + TJ);
                let mut acc = [[$ndup(0.0 as $t); TJ / $nlanes]; MR];
                let ap = a.as_ptr();
                let bp = b.as_ptr();
                for l in 0..k {
                    let bq = bp.add(l * n + jt);
                    let mut bv = [$ndup(0.0 as $t); TJ / $nlanes];
                    for (v, bvv) in bv.iter_mut().enumerate() {
                        *bvv = $nload(bq.add(v * $nlanes));
                    }
                    for r in 0..MR {
                        let ar = $ndup(*ap.add(r * k + l));
                        for (accv, &bvv) in acc[r].iter_mut().zip(&bv) {
                            // vfmaq(acc, b, c) = acc + b·c (acc first).
                            *accv = $nfma(*accv, bvv, ar);
                        }
                    }
                }
                let op = out.as_mut_ptr();
                for (r, acc_row) in acc.iter().enumerate() {
                    let o = op.add(r * n + jt);
                    for (v, &av) in acc_row.iter().enumerate() {
                        let ov = o.add(v * $nlanes);
                        $nstore(ov, $nadd($nload(ov), av));
                    }
                }
            }

            /// NEON transposed-A tile (contiguous 4-column `A` loads).
            ///
            /// # Safety
            /// Same contract as [`tile_neon`].
            #[cfg(target_arch = "aarch64")]
            #[target_feature(enable = "neon")]
            #[allow(clippy::too_many_arguments)]
            pub unsafe fn tile_at_neon(
                a: &[$t],
                m: usize,
                p: usize,
                q: usize,
                b: &[$t],
                n: usize,
                jt: usize,
                out: &mut [$t],
            ) {
                use std::arch::aarch64::*;
                debug_assert!(a.len() >= (m - 1) * p + q + MR);
                debug_assert!(b.len() >= (m - 1) * n + jt + TJ);
                debug_assert!(out.len() >= (MR - 1) * n + jt + TJ);
                let mut acc = [[$ndup(0.0 as $t); TJ / $nlanes]; MR];
                let ap = a.as_ptr();
                let bp = b.as_ptr();
                for l in 0..m {
                    let bq = bp.add(l * n + jt);
                    let mut bv = [$ndup(0.0 as $t); TJ / $nlanes];
                    for (v, bvv) in bv.iter_mut().enumerate() {
                        *bvv = $nload(bq.add(v * $nlanes));
                    }
                    let arp = ap.add(l * p + q);
                    for r in 0..MR {
                        let ar = $ndup(*arp.add(r));
                        for (accv, &bvv) in acc[r].iter_mut().zip(&bv) {
                            *accv = $nfma(*accv, bvv, ar);
                        }
                    }
                }
                let op = out.as_mut_ptr();
                for (r, acc_row) in acc.iter().enumerate() {
                    let o = op.add(r * n + jt);
                    for (v, &av) in acc_row.iter().enumerate() {
                        let ov = o.add(v * $nlanes);
                        $nstore(ov, $nadd($nload(ov), av));
                    }
                }
            }
        }

        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const NEG_INFINITY: Self = <$t>::NEG_INFINITY;
            const INFINITY: Self = <$t>::INFINITY;
            const TJ: usize = $tj;
            const NAME: &'static str = $name;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn tanh(self) -> Self {
                <$t>::tanh(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }

            fn take_pack() -> Vec<Self> {
                $pack.take()
            }
            fn put_pack(buf: Vec<Self>) {
                $pack.set(buf);
            }

            #[inline]
            fn gemm_tile(
                kernel: Microkernel,
                a: &[Self],
                k: usize,
                b: &[Self],
                n: usize,
                jt: usize,
                out: &mut [Self],
            ) {
                match kernel {
                    #[cfg(target_arch = "x86_64")]
                    Microkernel::Avx2Fma | Microkernel::Avx512 => unsafe {
                        $kern::tile_avx2(a, k, b, n, jt, out)
                    },
                    #[cfg(target_arch = "aarch64")]
                    Microkernel::Neon => unsafe { $kern::tile_neon(a, k, b, n, jt, out) },
                    Microkernel::Scalar => $kern::tile(a, k, b, n, jt, out),
                    _ => unreachable!("SIMD kernel selected off its architecture"),
                }
            }

            #[inline]
            fn gemm_tile_at(
                kernel: Microkernel,
                a: &[Self],
                m: usize,
                p: usize,
                q: usize,
                b: &[Self],
                n: usize,
                jt: usize,
                out: &mut [Self],
            ) {
                match kernel {
                    #[cfg(target_arch = "x86_64")]
                    Microkernel::Avx2Fma | Microkernel::Avx512 => unsafe {
                        $kern::tile_at_avx2(a, m, p, q, b, n, jt, out)
                    },
                    #[cfg(target_arch = "aarch64")]
                    Microkernel::Neon => unsafe { $kern::tile_at_neon(a, m, p, q, b, n, jt, out) },
                    Microkernel::Scalar => $kern::tile_at(a, m, p, q, b, n, jt, out),
                    _ => unreachable!("SIMD kernel selected off its architecture"),
                }
            }

            #[inline]
            fn gemm_tile_wide(
                kernel: Microkernel,
                a: &[Self],
                k: usize,
                b: &[Self],
                n: usize,
                jt: usize,
                out: &mut [Self],
            ) {
                match kernel {
                    #[cfg(target_arch = "x86_64")]
                    Microkernel::Avx512 => unsafe { $kern::tile_wide_avx512(a, k, b, n, jt, out) },
                    _ => $kern::tile_wide(a, k, b, n, jt, out),
                }
            }
        }
    };
}

impl_scalar!(
    f32,
    "f32",
    16,
    PACK_F32,
    kern_f32,
    __m256,
    8,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_set1_ps,
    _mm256_fmadd_ps,
    _mm256_add_ps,
    _mm256_setzero_ps,
    _mm512_loadu_ps,
    _mm512_storeu_ps,
    _mm512_set1_ps,
    _mm512_fmadd_ps,
    _mm512_add_ps,
    _mm512_setzero_ps,
    4,
    vld1q_f32,
    vst1q_f32,
    vdupq_n_f32,
    vfmaq_f32,
    vaddq_f32
);
impl_scalar!(
    f64,
    "f64",
    8,
    PACK_F64,
    kern_f64,
    __m256d,
    4,
    _mm256_loadu_pd,
    _mm256_storeu_pd,
    _mm256_set1_pd,
    _mm256_fmadd_pd,
    _mm256_add_pd,
    _mm256_setzero_pd,
    _mm512_loadu_pd,
    _mm512_storeu_pd,
    _mm512_set1_pd,
    _mm512_fmadd_pd,
    _mm512_add_pd,
    _mm512_setzero_pd,
    2,
    vld1q_f64,
    vst1q_f64,
    vdupq_n_f64,
    vfmaq_f64,
    vaddq_f64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(Microkernel::Avx2Fma.name(), "avx2_fma");
        assert_eq!(Microkernel::Avx512.name(), "avx512f");
        assert_eq!(Microkernel::Neon.name(), "neon");
        assert_eq!(Microkernel::Scalar.name(), "scalar");
        assert_eq!(<f32 as Scalar>::NAME, "f32");
        assert_eq!(<f64 as Scalar>::NAME, "f64");
    }

    #[test]
    fn override_is_scoped_to_thread_and_restored() {
        let outer = active_microkernel();
        with_microkernel(Microkernel::Scalar, || {
            assert_eq!(active_microkernel(), Microkernel::Scalar);
        });
        assert_eq!(active_microkernel(), outer);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(<f32 as Scalar>::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(<f64 as Scalar>::from_f64(1.5), 1.5);
        assert!(<f32 as Scalar>::NEG_INFINITY < <f32 as Scalar>::from_f64(-1e30));
    }

    /// The scalar and AVX2 tiles must agree **bit for bit** — same FMA
    /// contraction, same association order — for both element types.
    #[test]
    fn tiles_bit_identical_across_kernels() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2+FMA on this host");
            return;
        }
        fn case<S: Scalar>() {
            let k = 37;
            let n = S::TJ + 5;
            let mk = |seed: u64, len: usize| -> Vec<S> {
                (0..len)
                    .map(|i| {
                        let x = ((i as u64)
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(seed)
                            >> 33) as f64;
                        S::from_f64(x / (1u64 << 31) as f64 - 0.5)
                    })
                    .collect()
            };
            let a = mk(1, MR * k);
            let b = mk(2, k * n);
            let mut scalar_out = vec![S::ZERO; MR * n];
            let mut avx_out = vec![S::ZERO; MR * n];
            S::gemm_tile(Microkernel::Scalar, &a, k, &b, n, 0, &mut scalar_out);
            S::gemm_tile(Microkernel::Avx2Fma, &a, k, &b, n, 0, &mut avx_out);
            assert_eq!(scalar_out, avx_out, "{} broadcast tile diverged", S::NAME);

            // Transposed-A form: a is m×p, tile reads columns q..q+MR.
            let (m, p, q) = (k, MR + 3, 2);
            let at = mk(3, m * p);
            let mut scalar_at = vec![S::ZERO; MR * n];
            let mut avx_at = vec![S::ZERO; MR * n];
            S::gemm_tile_at(Microkernel::Scalar, &at, m, p, q, &b, n, 0, &mut scalar_at);
            S::gemm_tile_at(Microkernel::Avx2Fma, &at, m, p, q, &b, n, 0, &mut avx_at);
            assert_eq!(scalar_at, avx_at, "{} transposed-A tile diverged", S::NAME);
        }
        case::<f32>();
        case::<f64>();
    }

    /// The wide AVX-512 tile must agree bit for bit with its portable
    /// oracle (four narrow scalar tiles over the same 8×2TJ region) —
    /// same per-element FMA chains, so exact equality, not tolerance.
    #[test]
    fn wide_tile_bit_identical_to_narrow_composition() {
        fn case<S: Scalar>() {
            let k = 29;
            let n = 2 * S::TJ + 5;
            let mk = |seed: u64, len: usize| -> Vec<S> {
                (0..len)
                    .map(|i| {
                        let x = ((i as u64)
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(seed)
                            >> 33) as f64;
                        S::from_f64(x / (1u64 << 31) as f64 - 0.5)
                    })
                    .collect()
            };
            let a = mk(5, WMR * k);
            let b = mk(6, k * n);

            // The portable wide tile is exactly four narrow scalar tiles.
            let mut wide = vec![S::ZERO; WMR * n];
            let mut narrow = vec![S::ZERO; WMR * n];
            S::gemm_tile_wide(Microkernel::Scalar, &a, k, &b, n, 0, &mut wide);
            for h in 0..WMR / MR {
                for half in 0..2 {
                    S::gemm_tile(
                        Microkernel::Scalar,
                        &a[h * MR * k..],
                        k,
                        &b,
                        n,
                        half * S::TJ,
                        &mut narrow[h * MR * n..],
                    );
                }
            }
            assert_eq!(wide, narrow, "{} portable wide tile diverged", S::NAME);

            if avx512_available() {
                let mut zmm = vec![S::ZERO; WMR * n];
                S::gemm_tile_wide(Microkernel::Avx512, &a, k, &b, n, 0, &mut zmm);
                assert_eq!(wide, zmm, "{} AVX-512 wide tile diverged", S::NAME);
            } else {
                eprintln!("skipping AVX-512 leg: unavailable on this host");
            }
        }
        case::<f32>();
        case::<f64>();
    }

    /// Under the `avx512f` kernel the narrow tiles dispatch to the AVX2
    /// implementation — the remainder path of the wide GEMM stays
    /// bit-identical to the pure-AVX2 kernel by construction.
    #[test]
    fn avx512_narrow_tiles_are_the_avx2_tiles() {
        if !avx512_available() {
            eprintln!("skipping: no AVX-512 on this host");
            return;
        }
        let k = 19;
        let n = 16 + 3;
        let mk = |seed: u64, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let x = ((i as u64)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(seed)
                        >> 33) as f64;
                    (x / (1u64 << 31) as f64 - 0.5) as f32
                })
                .collect()
        };
        let a = mk(7, MR * k);
        let b = mk(8, k * n);
        let mut via_avx2 = vec![0.0f32; MR * n];
        let mut via_avx512 = vec![0.0f32; MR * n];
        f32::gemm_tile(Microkernel::Avx2Fma, &a, k, &b, n, 0, &mut via_avx2);
        f32::gemm_tile(Microkernel::Avx512, &a, k, &b, n, 0, &mut via_avx512);
        assert_eq!(via_avx2, via_avx512);
    }
}
