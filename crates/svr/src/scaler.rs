//! Feature standardization.

/// Per-feature standardization to zero mean and unit variance, fitted on a
/// training set and then applied to any sample. Constant features are left
/// centered but unscaled (divisor clamped to 1) so they cannot blow up.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits on rows of samples.
    ///
    /// # Panics
    /// Panics on an empty sample set or ragged rows.
    pub fn fit(samples: &[Vec<f64>]) -> Self {
        assert!(!samples.is_empty(), "cannot fit scaler on no samples");
        let dim = samples[0].len();
        let n = samples.len() as f64;
        let mut means = vec![0.0; dim];
        for s in samples {
            assert_eq!(s.len(), dim, "ragged sample rows");
            for (m, &v) in means.iter_mut().zip(s) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for s in samples {
            for ((sd, &v), &m) in stds.iter_mut().zip(s).zip(&means) {
                *sd += (v - m) * (v - m);
            }
        }
        for sd in &mut stds {
            *sd = (*sd / n).sqrt();
            if *sd < 1e-12 {
                *sd = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one sample.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "scaler dimension mismatch");
        x.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Standardizes a batch.
    pub fn transform_all(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let data = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let sc = StandardScaler::fit(&data);
        let t = sc.transform_all(&data);
        for d in 0..2 {
            let mean: f64 = t.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| r[d] * r[d]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_feature_survives() {
        let data = vec![vec![7.0], vec![7.0]];
        let sc = StandardScaler::fit(&data);
        assert_eq!(sc.transform(&[7.0]), vec![0.0]);
        assert_eq!(sc.transform(&[8.0]), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_checked() {
        let sc = StandardScaler::fit(&[vec![1.0, 2.0]]);
        let _ = sc.transform(&[1.0]);
    }
}
