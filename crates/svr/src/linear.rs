//! ε-insensitive linear SVR trained on the primal by subgradient descent.
//!
//! Objective (soft-margin SVR, Drucker et al. 1996, primal form):
//!
//! ```text
//! min_w,b  0.5·λ‖w‖² + (1/n) Σ_i max(0, |y_i − (w·x_i + b)| − ε)
//! ```
//!
//! Subgradient SGD with a decaying step size. Training is deterministic
//! given the seed (sample order is shuffled per epoch from a seeded RNG).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters for [`LinearSvr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvrConfig {
    /// Insensitive-tube half-width ε.
    pub epsilon: f64,
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Initial learning rate (decays as `lr / (1 + t/decay)`).
    pub learning_rate: f64,
    /// Step-decay time constant, in update counts.
    pub lr_decay: f64,
    /// Passes over the training set.
    pub epochs: usize,
    /// RNG seed for per-epoch shuffling.
    pub seed: u64,
}

impl Default for SvrConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.01,
            lambda: 1e-4,
            learning_rate: 0.05,
            lr_decay: 5_000.0,
            epochs: 60,
            seed: 7,
        }
    }
}

/// A fitted linear SVR.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvr {
    weights: Vec<f64>,
    bias: f64,
    config: SvrConfig,
}

impl LinearSvr {
    /// Fits on `(xs, ys)`.
    ///
    /// # Panics
    /// Panics on empty or ragged input, or length mismatch.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: SvrConfig) -> Self {
        assert!(!xs.is_empty(), "no training samples");
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        let dim = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == dim), "ragged samples");

        let mut w = vec![0.0; dim];
        let mut b = 0.0;
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut t = 0u64;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let lr = config.learning_rate / (1.0 + t as f64 / config.lr_decay);
                t += 1;
                let pred = dot(&w, &xs[i]) + b;
                let r = ys[i] - pred;
                // Subgradient of the ε-insensitive loss w.r.t. prediction:
                // 0 inside the tube, ∓1 outside.
                let g = if r > config.epsilon {
                    -1.0
                } else if r < -config.epsilon {
                    1.0
                } else {
                    0.0
                };
                for (wj, &xj) in w.iter_mut().zip(&xs[i]) {
                    *wj -= lr * (config.lambda * *wj + g * xj);
                }
                b -= lr * g;
            }
        }
        Self {
            weights: w,
            bias: b,
            config,
        }
    }

    /// Predicts one sample.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "predict dimension mismatch");
        dot(&self.weights, x) + self.bias
    }

    /// Predicts a batch.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Fitted weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The configuration used to fit.
    pub fn config(&self) -> &SvrConfig {
        &self.config
    }
}

/// Coefficient of determination R² of predictions against targets.
///
/// Returns 1 for a perfect fit; can be negative for fits worse than the
/// mean predictor. A constant target with perfect predictions scores 1.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn r_squared(preds: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(preds.len(), ys.len(), "length mismatch");
    assert!(!ys.is_empty(), "empty input");
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|&y| (y - mean).powi(2)).sum();
    let ss_res: f64 = preds.iter().zip(ys).map(|(&p, &y)| (y - p).powi(2)).sum();
    if ss_tot < 1e-12 {
        return if ss_res < 1e-9 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn linear_data(n: usize, noise: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x = vec![rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)];
            let y = 3.0 * x[0] - 2.0 * x[1] + 0.5 + noise * rng.random_range(-1.0..1.0);
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn recovers_linear_relationship() {
        let (xs, ys) = linear_data(400, 0.0, 1);
        let svr = LinearSvr::fit(&xs, &ys, SvrConfig::default());
        assert!((svr.weights()[0] - 3.0).abs() < 0.15, "{:?}", svr.weights());
        assert!((svr.weights()[1] + 2.0).abs() < 0.15, "{:?}", svr.weights());
        assert!((svr.bias() - 0.5).abs() < 0.15, "{}", svr.bias());
        let r2 = r_squared(&svr.predict_all(&xs), &ys);
        assert!(r2 > 0.98, "R² = {r2}");
    }

    #[test]
    fn robust_to_moderate_noise() {
        let (xs, ys) = linear_data(600, 0.3, 2);
        let svr = LinearSvr::fit(&xs, &ys, SvrConfig::default());
        let r2 = r_squared(&svr.predict_all(&xs), &ys);
        assert!(r2 > 0.9, "R² = {r2}");
    }

    #[test]
    fn epsilon_tube_tolerates_small_residuals() {
        // With a huge ε everything sits inside the tube: no fitting signal,
        // weights stay ~0 (only decayed by regularization).
        let (xs, ys) = linear_data(100, 0.0, 3);
        let cfg = SvrConfig {
            epsilon: 100.0,
            ..SvrConfig::default()
        };
        let svr = LinearSvr::fit(&xs, &ys, cfg);
        assert!(svr.weights().iter().all(|w| w.abs() < 1e-6));
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = linear_data(50, 0.1, 4);
        let a = LinearSvr::fit(&xs, &ys, SvrConfig::default());
        let b = LinearSvr::fit(&xs, &ys, SvrConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn r_squared_edge_cases() {
        assert_eq!(r_squared(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
        assert_eq!(r_squared(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        // Mean predictor scores 0.
        let r2 = r_squared(&[2.0, 2.0], &[1.0, 3.0]);
        assert!(r2.abs() < 1e-12);
    }
}
