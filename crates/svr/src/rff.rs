//! RBF-kernel SVR via Random Fourier Features (Rahimi & Recht, 2007).
//!
//! `φ(x) = sqrt(2/D) · cos(Ω x + β)` with `Ω ~ N(0, 2γ)` and
//! `β ~ U[0, 2π)` satisfies `E[φ(x)·φ(y)] = exp(−γ‖x−y‖²)`, so a linear SVR
//! on `φ(x)` approximates an RBF-kernel SVR while training in
//! O(samples · D) — no QP, no kernel matrix.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::linear::{LinearSvr, SvrConfig};

/// An RBF-approximating SVR: random Fourier feature map + [`LinearSvr`].
#[derive(Debug, Clone)]
pub struct RffSvr {
    omega: Vec<Vec<f64>>, // D × dim
    beta: Vec<f64>,       // D
    scale: f64,
    linear: LinearSvr,
}

impl RffSvr {
    /// Fits with `n_features` random features and kernel width `gamma`.
    ///
    /// # Panics
    /// Panics on empty/ragged input, `n_features == 0`, or bad `gamma`.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        gamma: f64,
        n_features: usize,
        config: SvrConfig,
    ) -> Self {
        assert!(!xs.is_empty(), "no training samples");
        assert!(n_features > 0, "need at least one random feature");
        assert!(gamma > 0.0, "gamma must be positive");
        let dim = xs[0].len();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_f0f0);
        // Ω rows ~ N(0, 2γ I): std dev per entry is sqrt(2γ).
        let sd = (2.0 * gamma).sqrt();
        let omega: Vec<Vec<f64>> = (0..n_features)
            .map(|_| {
                (0..dim)
                    .map(|_| sd * sample_standard_normal(&mut rng))
                    .collect()
            })
            .collect();
        let beta: Vec<f64> = (0..n_features)
            .map(|_| rng.random_range(0.0..std::f64::consts::TAU))
            .collect();
        let scale = (2.0 / n_features as f64).sqrt();

        let mapped: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| feature_map(x, &omega, &beta, scale))
            .collect();
        let linear = LinearSvr::fit(&mapped, ys, config);
        Self {
            omega,
            beta,
            scale,
            linear,
        }
    }

    /// Predicts one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.linear
            .predict(&feature_map(x, &self.omega, &self.beta, self.scale))
    }

    /// Predicts a batch.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of random features.
    pub fn n_features(&self) -> usize {
        self.omega.len()
    }
}

fn feature_map(x: &[f64], omega: &[Vec<f64>], beta: &[f64], scale: f64) -> Vec<f64> {
    omega
        .iter()
        .zip(beta)
        .map(|(w, &b)| {
            let z: f64 = w.iter().zip(x).map(|(&wi, &xi)| wi * xi).sum();
            scale * (z + b).cos()
        })
        .collect()
}

/// Standard normal via Box-Muller.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::rbf_kernel;
    use crate::linear::r_squared;

    #[test]
    fn feature_map_approximates_rbf_kernel() {
        // Build a map with many features and compare inner products with the
        // true kernel on a few point pairs.
        let gamma: f64 = 0.5;
        let d = 4096;
        let mut rng = StdRng::seed_from_u64(99);
        let sd = (2.0 * gamma).sqrt();
        let dim = 3;
        let omega: Vec<Vec<f64>> = (0..d)
            .map(|_| {
                (0..dim)
                    .map(|_| sd * sample_standard_normal(&mut rng))
                    .collect()
            })
            .collect();
        let beta: Vec<f64> = (0..d)
            .map(|_| rng.random_range(0.0..std::f64::consts::TAU))
            .collect();
        let scale = (2.0 / d as f64).sqrt();
        let pairs = [
            (vec![0.0, 0.0, 0.0], vec![0.1, 0.0, -0.1]),
            (vec![1.0, -1.0, 0.5], vec![0.8, -0.7, 0.4]),
            (vec![0.0, 0.0, 0.0], vec![2.0, 2.0, 2.0]),
        ];
        for (x, y) in &pairs {
            let fx = feature_map(x, &omega, &beta, scale);
            let fy = feature_map(y, &omega, &beta, scale);
            let approx: f64 = fx.iter().zip(&fy).map(|(&a, &b)| a * b).sum();
            let exact = rbf_kernel(x, y, gamma);
            assert!(
                (approx - exact).abs() < 0.05,
                "kernel approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn fits_nonlinear_function_better_than_linear() {
        // y = sin(3x): linear SVR can't fit it, RFF SVR can.
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rng.random_range(-1.5..1.5)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();

        let cfg = SvrConfig {
            epochs: 120,
            ..SvrConfig::default()
        };
        let lin = crate::linear::LinearSvr::fit(&xs, &ys, cfg);
        let rff = RffSvr::fit(&xs, &ys, 2.0, 256, cfg);
        let r2_lin = r_squared(&lin.predict_all(&xs), &ys);
        let r2_rff = r_squared(&rff.predict_all(&xs), &ys);
        assert!(r2_rff > 0.9, "RFF R² = {r2_rff}");
        assert!(r2_rff > r2_lin + 0.2, "lin {r2_lin} vs rff {r2_rff}");
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = vec![vec![0.1], vec![0.5], vec![0.9]];
        let ys = vec![1.0, 2.0, 3.0];
        let cfg = SvrConfig::default();
        let a = RffSvr::fit(&xs, &ys, 1.0, 32, cfg);
        let b = RffSvr::fit(&xs, &ys, 1.0, 32, cfg);
        assert_eq!(a.predict(&[0.3]), b.predict(&[0.3]));
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
