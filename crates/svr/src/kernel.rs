//! Kernels (used directly in tests and approximated by RFF in training).

/// RBF (Gaussian) kernel `k(x, y) = exp(−γ‖x − y‖²)`.
///
/// # Panics
/// Panics on dimension mismatch or non-positive `gamma`.
pub fn rbf_kernel(x: &[f64], y: &[f64], gamma: f64) -> f64 {
    assert_eq!(x.len(), y.len(), "kernel dimension mismatch");
    assert!(gamma > 0.0, "gamma must be positive");
    let sq: f64 = x.iter().zip(y).map(|(&a, &b)| (a - b) * (a - b)).sum();
    (-gamma * sq).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_same_point() {
        assert_eq!(rbf_kernel(&[1.0, 2.0], &[1.0, 2.0], 0.5), 1.0);
    }

    #[test]
    fn decays_with_distance() {
        let near = rbf_kernel(&[0.0], &[0.1], 1.0);
        let far = rbf_kernel(&[0.0], &[2.0], 1.0);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [0.3, -1.2];
        let b = [2.0, 0.7];
        assert_eq!(rbf_kernel(&a, &b, 0.7), rbf_kernel(&b, &a, 0.7));
    }
}
