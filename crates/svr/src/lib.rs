//! Support Vector Regression — the predictor behind the paper's
//! **model-based baseline** (Li et al., *Performance modeling and predictive
//! scheduling for distributed stream data processing*, IEEE TBD 2016,
//! reference \[25\] of the reproduced paper).
//!
//! That baseline estimates end-to-end tuple processing time by predicting
//! the delay of each component with SVR and composing the predictions over
//! the topology. This crate supplies the regression machinery:
//!
//! * [`LinearSvr`] — ε-insensitive linear SVR trained by subgradient
//!   descent on the primal (Drucker et al., NIPS 1996 formulation);
//! * [`RffSvr`] — RBF-kernel SVR approximated with Random Fourier Features
//!   (Rahimi & Recht), i.e. a linear SVR on randomized cosine features,
//!   keeping training O(samples · features) without a QP solver;
//! * [`StandardScaler`] — feature standardization, fitted on training data.
//!
//! The composition of per-component predictions into an end-to-end estimate
//! lives in `dss-core::scheduler::model_based`, next to the search that
//! uses it.

pub mod kernel;
pub mod linear;
pub mod rff;
pub mod scaler;

pub use kernel::rbf_kernel;
pub use linear::{LinearSvr, SvrConfig};
pub use rff::RffSvr;
pub use scaler::StandardScaler;
