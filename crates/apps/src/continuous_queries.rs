//! Continuous Queries topology (paper Figure 3).
//!
//! `Spout → Query bolt → File bolt`: randomly generated speed queries scan
//! an in-memory vehicle table; matching records are written to a file.
//! The query bolt's table scan dominates service time; only matching
//! records (the speeders fraction) flow to the file bolt.
//!
//! Executor layouts are the paper's exactly (§4.1):
//!
//! | scale  | total | spout | query | file |
//! |--------|-------|-------|-------|------|
//! | small  | 20    | 2     | 9     | 9    |
//! | medium | 50    | 5     | 25    | 20   |
//! | large  | 100   | 10    | 45    | 45   |

use dss_sim::{Grouping, TopologyBuilder, Workload};

use crate::App;

/// The paper's three experimental scales for this topology, plus the
/// fleet scale that pushes past the paper's 16-core testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqScale {
    /// 20 executors (2/9/9).
    Small,
    /// 50 executors (5/25/20).
    Medium,
    /// 100 executors (10/45/45).
    Large,
    /// 1152 executors (768/256/128): [`FLEET_SPOUT_LANES`] independent
    /// ingest lanes of 96 spouts each, of which only the first carries
    /// traffic — a mostly-idle fleet.
    Fleet,
}

impl CqScale {
    /// `(spout, query, file)` parallelism. The fleet spout total spans
    /// [`FLEET_SPOUT_LANES`] separate spout components.
    pub fn parallelism(self) -> (usize, usize, usize) {
        match self {
            CqScale::Small => (2, 9, 9),
            CqScale::Medium => (5, 25, 20),
            CqScale::Large => (10, 45, 45),
            CqScale::Fleet => (768, 256, 128),
        }
    }

    /// Nominal workload (queries/s). Scaled with the executor count so the
    /// cluster "undertakes heavier workload but has not been overloaded"
    /// (§4.2's description of the large case). At fleet scale the nominal
    /// rate enters on lane 0 only.
    pub fn nominal_rate(self) -> f64 {
        match self {
            CqScale::Small => 1000.0,
            CqScale::Medium => 2200.0,
            CqScale::Large => 4200.0,
            CqScale::Fleet => 6000.0,
        }
    }

    /// Lowercase label for file names.
    pub fn label(self) -> &'static str {
        match self {
            CqScale::Small => "small",
            CqScale::Medium => "medium",
            CqScale::Large => "large",
            CqScale::Fleet => "fleet",
        }
    }
}

/// Spout lanes in the fleet-scale topology: independent ingest sources of
/// which only the first carries traffic under the nominal workload. The
/// other lanes are provisioned-but-idle capacity — the cluster shape that
/// makes event-driven simulation (and grouped action mapping) pay off.
pub const FLEET_SPOUT_LANES: usize = 8;

/// Fraction of queried rows that match (speeders hit rate; see
/// `datagen::VehicleDb::speeders`).
pub const QUERY_HIT_RATE: f64 = 0.2;

/// Builds the topology and nominal workload at a given scale.
pub fn continuous_queries(scale: CqScale) -> App {
    if scale == CqScale::Fleet {
        return continuous_queries_fleet();
    }
    let (sp, qp, fp) = scale.parallelism();
    let mut b = TopologyBuilder::new(format!("continuous-queries-{}", scale.label()));
    // Spout: deserialize a query and emit it (~40 µs).
    let spout = b.spout("query-spout", sp, 0.04);
    // Query bolt: scan the in-memory table (the dominant cost).
    let query = b.bolt("query-bolt", qp, 0.9);
    // File bolt: append matching records to the output file.
    let file = b.bolt("file-bolt", fp, 0.45);
    b.service_cv(query, 0.6);
    b.service_cv(file, 0.4);
    // Queries are small; matched records carry owner info.
    b.edge(spout, query, Grouping::Shuffle, 1.0, 96);
    b.edge(query, file, Grouping::Shuffle, QUERY_HIT_RATE, 320);
    let topology = b.build().expect("static topology is valid");
    let workload = Workload::uniform(&topology, scale.nominal_rate());
    App {
        name: match scale {
            CqScale::Small => "cq_small",
            CqScale::Medium => "cq_medium",
            CqScale::Large => "cq_large",
            CqScale::Fleet => unreachable!("fleet handled above"),
        },
        topology,
        workload,
    }
}

/// The fleet-scale variant: [`FLEET_SPOUT_LANES`] ingest lanes feeding one
/// shared query/file pipeline, with traffic on lane 0 only — the other
/// 672 spout executors are live but silent, so a sublinear engine should
/// spend nothing on them.
fn continuous_queries_fleet() -> App {
    let (sp, qp, fp) = CqScale::Fleet.parallelism();
    let lane_par = sp / FLEET_SPOUT_LANES;
    let mut b = TopologyBuilder::new("continuous-queries-fleet");
    let lanes: Vec<usize> = (0..FLEET_SPOUT_LANES)
        .map(|lane| b.spout(format!("query-spout-{lane}"), lane_par, 0.04))
        .collect();
    let query = b.bolt("query-bolt", qp, 0.9);
    let file = b.bolt("file-bolt", fp, 0.45);
    b.service_cv(query, 0.6);
    b.service_cv(file, 0.4);
    for &lane in &lanes {
        b.edge(lane, query, Grouping::Shuffle, 1.0, 96);
    }
    b.edge(query, file, Grouping::Shuffle, QUERY_HIT_RATE, 320);
    let topology = b.build().expect("static topology is valid");
    let rates = lanes
        .iter()
        .enumerate()
        .map(|(i, &lane)| {
            let rate = if i == 0 {
                CqScale::Fleet.nominal_rate()
            } else {
                0.0
            };
            (lane, rate)
        })
        .collect();
    let workload = Workload::new(rates, &topology).expect("spout rates are valid");
    App {
        name: "cq_fleet",
        topology,
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_counts_match_paper() {
        assert_eq!(
            continuous_queries(CqScale::Small).topology.n_executors(),
            20
        );
        assert_eq!(
            continuous_queries(CqScale::Medium).topology.n_executors(),
            50
        );
        assert_eq!(
            continuous_queries(CqScale::Large).topology.n_executors(),
            100
        );
    }

    #[test]
    fn structure_is_a_chain() {
        let app = continuous_queries(CqScale::Large);
        let t = &app.topology;
        assert_eq!(t.components().len(), 3);
        assert_eq!(t.edges().len(), 2);
        assert_eq!(t.spouts(), vec![0]);
        // Only hits flow to the file bolt.
        let rates = t.component_rates(app.workload.rates());
        assert!((rates[1] - 4200.0).abs() < 1e-9);
        assert!((rates[2] - 4200.0 * QUERY_HIT_RATE).abs() < 1e-9);
    }

    #[test]
    fn fleet_scale_is_mostly_idle() {
        let app = continuous_queries(CqScale::Fleet);
        let t = &app.topology;
        assert_eq!(t.n_executors(), 1152);
        assert_eq!(t.spouts().len(), FLEET_SPOUT_LANES);
        assert_eq!(app.workload.rates().len(), FLEET_SPOUT_LANES);
        // Only lane 0 carries traffic.
        assert_eq!(app.workload.total_rate(), CqScale::Fleet.nominal_rate());
        assert!(app.workload.rates()[1..].iter().all(|&(_, r)| r == 0.0));
        // Busy core demand is a sliver of a 128 x 8-core fleet.
        let rates = t.component_rates(app.workload.rates());
        let cores_needed: f64 = t
            .components()
            .iter()
            .enumerate()
            .map(|(c, spec)| rates[c] * spec.service_mean_ms / 1000.0)
            .sum();
        assert!(cores_needed > 2.0, "demand {cores_needed} cores");
        assert!(
            cores_needed < 0.02 * 1024.0,
            "fleet must be mostly idle: {cores_needed} cores"
        );
    }

    #[test]
    fn demand_fits_cluster_but_not_one_machine() {
        // Large scale must need >1 machine (so packing everything is wrong)
        // but « 10 machines (so round-robin wastes locality).
        let app = continuous_queries(CqScale::Large);
        let rates = app.topology.component_rates(app.workload.rates());
        let cores_needed: f64 = app
            .topology
            .components()
            .iter()
            .enumerate()
            .map(|(c, spec)| rates[c] * spec.service_mean_ms / 1000.0)
            .sum();
        assert!(cores_needed > 4.0, "demand {cores_needed} cores");
        assert!(cores_needed < 40.0 * 0.8, "demand {cores_needed} cores");
    }
}
