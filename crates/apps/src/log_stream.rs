//! Log Stream Processing topology (paper Figure 4).
//!
//! `Spout → LogRules → {Indexer → Database, Counter → Database}`: LogStash
//! submits IIS log lines through Redis; the LogRules bolt runs rule-based
//! analysis and delivers results *simultaneously* to an Indexer branch and
//! a Counter branch, each ending in a Mongo database writer (the paper
//! added the two Database bolts for verification).
//!
//! Executor layout (§4.1, 100 executors): 10 spout / 20 LogRules /
//! 20 Indexer / 20 Counter / 15 + 15 Database.
//!
//! The Counter branch is fields-grouped by log entry type; entry-type
//! popularity is Zipf-skewed (see `datagen::LogLineGen`), creating the hot
//! executors a good scheduler must place carefully.

use dss_sim::{Grouping, TopologyBuilder, Workload};

use crate::App;

/// Distinct log entry types (request paths) for the Counter's fields
/// grouping — matches `LogLineGen::new(50, 1.0)`.
pub const N_ENTRY_TYPES: usize = 50;
/// Zipf skew of entry-type popularity.
pub const ENTRY_TYPE_SKEW: f64 = 1.0;
/// Nominal log lines per second.
pub const NOMINAL_RATE: f64 = 2200.0;

/// Builds the 100-executor log-stream topology with its nominal workload.
pub fn log_stream() -> App {
    let mut b = TopologyBuilder::new("log-stream-processing");
    // Spout: pull a JSON log line from the Redis queue.
    let spout = b.spout("redis-spout", 10, 0.05);
    // LogRules: rule-based analysis of each line (regex-heavy).
    let rules = b.bolt("logrules-bolt", 20, 1.4);
    // Indexer: build index actions for the matched entries.
    let indexer = b.bolt("indexer-bolt", 20, 1.1);
    // Counter: increment per-entry-type counters.
    let counter = b.bolt("counter-bolt", 20, 0.7);
    // Database writers (Mongo inserts; the slowest per-tuple step).
    let db_index = b.bolt("db-indexer", 15, 1.6);
    let db_count = b.bolt("db-counter", 15, 1.2);
    b.service_cv(rules, 0.6);
    b.service_cv(db_index, 0.7);
    b.service_cv(db_count, 0.7);
    // IIS lines ~150 B as JSON ~ 400 B; analysis results smaller.
    b.edge(spout, rules, Grouping::Shuffle, 1.0, 420);
    // "results are simultaneously delivered to two separate bolts".
    b.edge(rules, indexer, Grouping::Shuffle, 1.0, 320);
    b.edge(
        rules,
        counter,
        Grouping::Fields {
            n_keys: N_ENTRY_TYPES,
            skew: ENTRY_TYPE_SKEW,
        },
        1.0,
        160,
    );
    // Index writes per entry; counter flushes aggregates (1 in 4 tuples).
    b.edge(indexer, db_index, Grouping::Shuffle, 0.9, 380);
    b.edge(counter, db_count, Grouping::Shuffle, 0.25, 120);
    let topology = b.build().expect("static topology is valid");
    let workload = Workload::uniform(&topology, NOMINAL_RATE);
    App {
        name: "log_stream",
        topology,
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_counts_match_paper() {
        let app = log_stream();
        assert_eq!(app.topology.n_executors(), 100);
        let p: Vec<usize> = app
            .topology
            .components()
            .iter()
            .map(|c| c.parallelism)
            .collect();
        assert_eq!(p, vec![10, 20, 20, 20, 15, 15]);
    }

    #[test]
    fn both_branches_fed_simultaneously() {
        let app = log_stream();
        let rates = app.topology.component_rates(app.workload.rates());
        // Indexer and Counter both see the full LogRules output.
        assert!((rates[2] - NOMINAL_RATE).abs() < 1e-6);
        assert!((rates[3] - NOMINAL_RATE).abs() < 1e-6);
        // The DB branches see filtered flows.
        assert!(rates[4] < rates[2]);
        assert!(rates[5] < rates[3]);
    }

    #[test]
    fn counter_branch_is_skewed() {
        let app = log_stream();
        let counter_edge = app
            .topology
            .edges()
            .iter()
            .position(|e| matches!(e.grouping, Grouping::Fields { .. }))
            .expect("fields edge exists");
        let shares = app.topology.fields_shares(counter_edge).unwrap();
        let max = shares.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = shares.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 2.0 * min, "entry-type skew expected: {shares:?}");
    }

    #[test]
    fn heavier_than_continuous_queries() {
        // The paper: "This topology is more complicated than the previous
        // continuous queries topology, which leads to a longer average
        // tuple processing time no matter which method is used."
        let app = log_stream();
        let rates = app.topology.component_rates(app.workload.rates());
        let service_sum: f64 = app
            .topology
            .components()
            .iter()
            .enumerate()
            .map(|(c, s)| rates[c] / NOMINAL_RATE * s.service_mean_ms)
            .sum();
        let cq = crate::continuous_queries(crate::CqScale::Large);
        let cq_rates = cq.topology.component_rates(cq.workload.rates());
        let cq_sum: f64 = cq
            .topology
            .components()
            .iter()
            .enumerate()
            .map(|(c, s)| cq_rates[c] / 4500.0 * s.service_mean_ms)
            .sum();
        assert!(service_sum > 2.0 * cq_sum, "{service_sum} vs {cq_sum}");
    }
}
