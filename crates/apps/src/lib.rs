//! The paper's three representative stream applications (§4.1), built on
//! `dss-sim`, plus the synthetic data generators that replace the paper's
//! external inputs.
//!
//! | Paper workload | Paper input | Our substitute |
//! |---|---|---|
//! | Continuous queries (Fig. 3) | random in-memory vehicle DB + speed queries | [`datagen::VehicleDb`] / [`datagen::QueryGen`] |
//! | Log stream processing (Fig. 4) | Microsoft IIS logs from the authors' university, via LogStash + Redis | [`datagen::LogLineGen`] (IIS-format lines, Zipf-skewed entry types) |
//! | Word count, stream version (Fig. 5) | *Alice's Adventures in Wonderland* via LogStash + Redis | [`datagen::TextGen`] (Zipf-distributed vocabulary, matching word-frequency statistics) |
//!
//! Each topology module exposes the executor layout the paper states
//! (e.g. continuous queries large scale: 10 spout / 45 query / 45 file
//! executors), service-time and selectivity parameters calibrated so the
//! four schedulers land in the paper's latency ranges, and the workload
//! rates used by the figure experiments.

pub mod continuous_queries;
pub mod datagen;
pub mod log_stream;
pub mod word_count;

pub use continuous_queries::{continuous_queries, CqScale, FLEET_SPOUT_LANES};
pub use log_stream::log_stream;
pub use word_count::{word_count, word_count_fleet};

use dss_sim::{Topology, Workload};

/// A ready-to-run application: topology plus its nominal workload.
#[derive(Debug, Clone)]
pub struct App {
    /// Human-readable identifier (used in figure CSV names).
    pub name: &'static str,
    /// The application graph.
    pub topology: Topology,
    /// The nominal workload of the paper's experiments.
    pub workload: Workload,
}

/// All three large-scale applications, in the order the paper evaluates
/// them (continuous queries, log stream processing, word count).
pub fn all_large_scale() -> Vec<App> {
    vec![
        continuous_queries(CqScale::Large),
        log_stream(),
        word_count(),
    ]
}
