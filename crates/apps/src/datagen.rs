//! Synthetic data generators replacing the paper's external inputs.
//!
//! The simulator only consumes statistical properties (tuple sizes, key
//! skew, selectivities), but the examples exercise realistic payloads; the
//! byte sizes configured on topology edges are derived from these
//! generators' output (see the `avg_len` tests).

use rand::rngs::StdRng;
use rand::RngExt;

use dss_sim::rng::Zipf;

/// A row of the continuous-queries in-memory table: a vehicle plate with
/// owner data and an attached speed (§4.1: "a database table with vehicle
/// plates and their owners' information including their names and SSNs ...
/// vehicle speeds were randomly generated and attached to every entry").
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleRecord {
    /// License plate, e.g. `ABC-1234`.
    pub plate: String,
    /// Owner name.
    pub owner: String,
    /// Owner SSN (synthetic).
    pub ssn: String,
    /// Speed in mph.
    pub speed_mph: f64,
}

/// Generator for the in-memory vehicle table.
#[derive(Debug)]
pub struct VehicleDb {
    records: Vec<VehicleRecord>,
}

const FIRST_NAMES: &[&str] = &[
    "Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Heidi", "Ivan", "Judy", "Karl",
    "Laura", "Mallory", "Niaj", "Olivia", "Peggy", "Quentin", "Rupert", "Sybil", "Trent",
];
const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
];

impl VehicleDb {
    /// Generates `n` random records.
    pub fn generate(n: usize, rng: &mut StdRng) -> Self {
        let records = (0..n)
            .map(|_| {
                let plate = format!(
                    "{}{}{}-{:04}",
                    random_upper(rng),
                    random_upper(rng),
                    random_upper(rng),
                    rng.random_range(0..10_000)
                );
                let owner = format!(
                    "{} {}",
                    FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())],
                    LAST_NAMES[rng.random_range(0..LAST_NAMES.len())]
                );
                let ssn = format!(
                    "{:03}-{:02}-{:04}",
                    rng.random_range(100..999),
                    rng.random_range(10..99),
                    rng.random_range(1000..9999)
                );
                let speed_mph = rng.random_range(25.0..95.0);
                VehicleRecord {
                    plate,
                    owner,
                    ssn,
                    speed_mph,
                }
            })
            .collect();
        Self { records }
    }

    /// The table rows.
    pub fn records(&self) -> &[VehicleRecord] {
        &self.records
    }

    /// Rows with speed above `threshold` (the query bolt's scan).
    pub fn speeders(&self, threshold: f64) -> impl Iterator<Item = &VehicleRecord> {
        self.records.iter().filter(move |r| r.speed_mph > threshold)
    }
}

/// Generator of "find owners of speeding vehicles" queries.
#[derive(Debug, Clone, Copy)]
pub struct QueryGen {
    /// Minimum threshold sampled.
    pub min_mph: f64,
    /// Maximum threshold sampled.
    pub max_mph: f64,
}

impl Default for QueryGen {
    fn default() -> Self {
        Self {
            min_mph: 60.0,
            max_mph: 90.0,
        }
    }
}

impl QueryGen {
    /// One random query: a speed threshold.
    pub fn next_query(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.min_mph..self.max_mph)
    }
}

/// IIS-style log line generator. Entry types (URL paths) follow a Zipf
/// popularity, matching the skew the LogRules→Counter fields grouping sees.
#[derive(Debug)]
pub struct LogLineGen {
    paths: Vec<String>,
    zipf: Zipf,
    statuses: Vec<(u32, f64)>,
}

impl LogLineGen {
    /// A generator with `n_paths` distinct request paths and Zipf skew `s`.
    pub fn new(n_paths: usize, skew: f64) -> Self {
        let paths = (0..n_paths)
            .map(|i| match i % 5 {
                0 => format!("/index_{i}.html"),
                1 => format!("/api/v1/resource/{i}"),
                2 => format!("/static/img_{i}.png"),
                3 => format!("/login?session={i}"),
                _ => format!("/dept/pages/{i}.aspx"),
            })
            .collect();
        Self {
            paths,
            zipf: Zipf::new(n_paths, skew),
            statuses: vec![(200, 0.9), (304, 0.05), (404, 0.04), (500, 0.01)],
        }
    }

    /// Number of distinct paths (the Counter's key universe).
    pub fn n_paths(&self) -> usize {
        self.paths.len()
    }

    /// One W3C/IIS-format log line.
    pub fn next_line(&self, t_seconds: u64, rng: &mut StdRng) -> String {
        let path_idx = self.zipf.sample(rng);
        let mut u: f64 = rng.random_range(0.0..1.0);
        let mut status = 200;
        for &(code, p) in &self.statuses {
            if u < p {
                status = code;
                break;
            }
            u -= p;
        }
        let ip = format!(
            "128.230.{}.{}",
            rng.random_range(0..256),
            rng.random_range(1..255)
        );
        let bytes = rng.random_range(200..40_000);
        let ms = rng.random_range(1..900);
        format!(
            "2017-10-{:02} {:02}:{:02}:{:02} {} GET {} - 80 - {} Mozilla/5.0 {} {} {}",
            1 + (t_seconds / 86_400) % 28,
            (t_seconds / 3600) % 24,
            (t_seconds / 60) % 60,
            t_seconds % 60,
            "W3SVC1",
            self.paths[path_idx],
            ip,
            status,
            bytes,
            ms
        )
    }
}

/// Zipf-vocabulary text generator, statistically matching natural-language
/// word frequencies (the substitute for *Alice's Adventures in
/// Wonderland*).
#[derive(Debug)]
pub struct TextGen {
    vocab: Vec<String>,
    zipf: Zipf,
    words_per_line_min: usize,
    words_per_line_max: usize,
}

impl TextGen {
    /// A generator over `vocab_size` synthetic words with Zipf exponent
    /// `skew` (natural text ≈ 1.0); lines hold 5–15 words like the paper's
    /// input prose.
    pub fn new(vocab_size: usize, skew: f64) -> Self {
        const SYLLABLES: &[&str] = &[
            "al", "ice", "won", "der", "land", "rab", "bit", "queen", "hat", "ter", "mad", "tea",
            "card", "rose", "march", "hare", "cat", "grin", "key", "door",
        ];
        let vocab = (0..vocab_size)
            .map(|i| {
                let a = SYLLABLES[i % SYLLABLES.len()];
                let b = SYLLABLES[(i / SYLLABLES.len()) % SYLLABLES.len()];
                if i < SYLLABLES.len() {
                    a.to_string()
                } else {
                    format!("{a}{b}")
                }
            })
            .collect();
        Self {
            vocab,
            zipf: Zipf::new(vocab_size, skew),
            words_per_line_min: 5,
            words_per_line_max: 15,
        }
    }

    /// Vocabulary size (the WordCount fields-grouping key universe).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// One line of text.
    pub fn next_line(&self, rng: &mut StdRng) -> String {
        let n = rng.random_range(self.words_per_line_min..=self.words_per_line_max);
        let mut line = String::new();
        for i in 0..n {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&self.vocab[self.zipf.sample(rng)]);
        }
        line
    }

    /// Average words per line (the split bolt's selectivity).
    pub fn avg_words_per_line(&self) -> f64 {
        (self.words_per_line_min + self.words_per_line_max) as f64 / 2.0
    }
}

fn random_upper(rng: &mut StdRng) -> char {
    (b'A' + rng.random_range(0..26u8)) as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn vehicle_db_shape() {
        let db = VehicleDb::generate(500, &mut rng());
        assert_eq!(db.records().len(), 500);
        for r in db.records().iter().take(20) {
            assert_eq!(r.plate.len(), 8);
            assert!(r.ssn.len() == 11 && r.ssn.chars().filter(|&c| c == '-').count() == 2);
            assert!((25.0..95.0).contains(&r.speed_mph));
        }
    }

    #[test]
    fn speeders_filter_matches_threshold() {
        let db = VehicleDb::generate(1000, &mut rng());
        let threshold = 70.0;
        let hits = db.speeders(threshold).count();
        assert!(hits > 0 && hits < 1000);
        assert!(db.speeders(threshold).all(|r| r.speed_mph > threshold));
        // ~(95-70)/(95-25) ≈ 36% expected hit rate.
        let frac = hits as f64 / 1000.0;
        assert!((frac - 0.357).abs() < 0.08, "{frac}");
    }

    #[test]
    fn query_gen_in_range() {
        let q = QueryGen::default();
        let mut r = rng();
        for _ in 0..100 {
            let v = q.next_query(&mut r);
            assert!((60.0..90.0).contains(&v));
        }
    }

    #[test]
    fn log_lines_look_like_iis() {
        let g = LogLineGen::new(50, 1.0);
        let mut r = rng();
        let line = g.next_line(3_600, &mut r);
        assert!(line.starts_with("2017-10-"), "{line}");
        assert!(line.contains("GET /"), "{line}");
        assert!(line.contains("128.230."), "{line}");
        // Average length informs the topology's tuple_bytes.
        let avg: f64 = (0..200)
            .map(|i| g.next_line(i, &mut r).len() as f64)
            .sum::<f64>()
            / 200.0;
        assert!((80.0..200.0).contains(&avg), "avg IIS line len {avg}");
    }

    #[test]
    fn log_paths_are_zipf_skewed() {
        let g = LogLineGen::new(50, 1.0);
        let mut r = rng();
        let mut top = 0usize;
        let n = 5000;
        for i in 0..n {
            let line = g.next_line(i, &mut r);
            if line.contains("/index_0.html") {
                top += 1;
            }
        }
        // Rank-1 path under Zipf(1.0, 50) has mass ~ 1/H_50 ≈ 0.22.
        let frac = top as f64 / n as f64;
        assert!(frac > 0.15, "top path share {frac}");
    }

    #[test]
    fn text_gen_statistics() {
        let g = TextGen::new(3000, 1.0);
        let mut r = rng();
        let mut total_words = 0usize;
        let lines = 500;
        for _ in 0..lines {
            total_words += g.next_line(&mut r).split(' ').count();
        }
        let avg = total_words as f64 / lines as f64;
        assert!(
            (avg - g.avg_words_per_line()).abs() < 1.0,
            "avg words {avg}"
        );
        assert_eq!(g.vocab_size(), 3000);
    }

    #[test]
    fn generators_deterministic_per_seed() {
        let g = TextGen::new(100, 1.0);
        let a = g.next_line(&mut StdRng::seed_from_u64(5));
        let b = g.next_line(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
