//! Word Count topology, stream version (paper Figure 5).
//!
//! `Spout → SplitSentence → WordCount → Database`: LogStash pushes text
//! lines through Redis; the split bolt breaks lines into words; the count
//! bolt tallies appearances using **fields grouping** (the paper names the
//! grouping explicitly for this topology); the database bolt persists
//! results to Mongo.
//!
//! Executor layout (§4.1, 100 executors): 10 spout / 30 split / 30 count /
//! 30 database.
//!
//! Word frequencies follow Zipf (natural text), so a handful of count
//! executors receive most of the traffic — the load-balancing challenge
//! this topology contributes to the evaluation.

use dss_sim::{Grouping, TopologyBuilder, Workload};

use crate::App;

/// Vocabulary size for the fields grouping (matches `TextGen::new(3000, 1.0)`).
pub const VOCAB_SIZE: usize = 3000;
/// Zipf exponent of word frequency (natural language ≈ 1).
pub const WORD_SKEW: f64 = 1.0;
/// Average words per input line (the split bolt's selectivity; matches
/// `TextGen::avg_words_per_line`).
pub const WORDS_PER_LINE: f64 = 10.0;
/// Nominal input lines per second.
pub const NOMINAL_RATE: f64 = 900.0;
/// Nominal input lines per second at fleet scale: lighter per executor
/// than the paper layout (3.1 lines/s per spout), so a 128-machine fleet
/// stays far from saturation while word fan-out still exercises the
/// fields-grouped hot path.
pub const FLEET_RATE: f64 = 800.0;

/// Builds the 100-executor word-count topology with its nominal workload.
pub fn word_count() -> App {
    word_count_sized(
        "word-count-stream",
        "word_count",
        [10, 30, 30, 30],
        NOMINAL_RATE,
    )
}

/// The fleet-scale variant: the same four-stage pipeline at 1152 executors
/// (256 spout / 384 split / 320 count / 192 database) under a light
/// per-executor load — a thousand-thread assignment problem for the
/// hierarchical mapper over a 128-machine cluster.
pub fn word_count_fleet() -> App {
    word_count_sized(
        "word-count-fleet",
        "word_count_fleet",
        [256, 384, 320, 192],
        FLEET_RATE,
    )
}

fn word_count_sized(
    topo_name: &str,
    app_name: &'static str,
    parallelism: [usize; 4],
    rate: f64,
) -> App {
    let [sp, splitp, countp, dbp] = parallelism;
    let mut b = TopologyBuilder::new(topo_name);
    // Spout: pull a text line from the Redis queue.
    let spout = b.spout("line-spout", sp, 0.05);
    // Split: tokenize the line (cheap per line, emits one tuple per word).
    let split = b.bolt("split-bolt", splitp, 0.35);
    // Count: hash-map increment per word (cheap, but hot-key skewed).
    let count = b.bolt("count-bolt", countp, 0.18);
    // Database: periodic count flushes to Mongo.
    let db = b.bolt("db-bolt", dbp, 1.1);
    b.service_cv(split, 0.4);
    b.service_cv(count, 0.5);
    b.service_cv(db, 0.7);
    // Text lines ~70 B; words ~8 B (+framing); flushed counts small.
    b.edge(spout, split, Grouping::Shuffle, 1.0, 96);
    b.edge(
        split,
        count,
        Grouping::Fields {
            n_keys: VOCAB_SIZE,
            skew: WORD_SKEW,
        },
        WORDS_PER_LINE,
        40,
    );
    // Counts are flushed periodically, not per word.
    b.edge(count, db, Grouping::Shuffle, 0.05, 64);
    let topology = b.build().expect("static topology is valid");
    let workload = Workload::uniform(&topology, rate);
    App {
        name: app_name,
        topology,
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_counts_match_paper() {
        let app = word_count();
        assert_eq!(app.topology.n_executors(), 100);
        let p: Vec<usize> = app
            .topology
            .components()
            .iter()
            .map(|c| c.parallelism)
            .collect();
        assert_eq!(p, vec![10, 30, 30, 30]);
    }

    #[test]
    fn fleet_variant_scales_executors_not_structure() {
        let app = word_count_fleet();
        assert_eq!(app.topology.n_executors(), 1152);
        let p: Vec<usize> = app
            .topology
            .components()
            .iter()
            .map(|c| c.parallelism)
            .collect();
        assert_eq!(p, vec![256, 384, 320, 192]);
        // Same pipeline shape and groupings as the paper layout.
        let base = word_count();
        assert_eq!(app.topology.edges().len(), base.topology.edges().len());
        for (a, b) in app.topology.edges().iter().zip(base.topology.edges()) {
            assert_eq!(a.grouping, b.grouping);
            assert_eq!(a.selectivity, b.selectivity);
        }
        assert_eq!(app.workload.total_rate(), FLEET_RATE);
    }

    #[test]
    fn split_fans_out_words() {
        let app = word_count();
        let rates = app.topology.component_rates(app.workload.rates());
        assert!((rates[1] - NOMINAL_RATE).abs() < 1e-6);
        assert!((rates[2] - NOMINAL_RATE * WORDS_PER_LINE).abs() < 1e-6);
        assert!(rates[3] < rates[2] * 0.1);
    }

    #[test]
    fn count_bolt_uses_fields_grouping_with_zipf_skew() {
        let app = word_count();
        let edge = &app.topology.edges()[1];
        assert!(matches!(
            edge.grouping,
            Grouping::Fields {
                n_keys: VOCAB_SIZE,
                ..
            }
        ));
        let shares = app.topology.fields_shares(1).unwrap();
        let max = shares.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max > 2.0 / 30.0,
            "hot word executor should exceed 2x uniform: {max}"
        );
    }

    #[test]
    fn complexity_comparable_to_continuous_queries() {
        // The paper: "the complexity of this topology is similar to that of
        // the continuous queries topology" (both stabilize in the 1.5-3.5ms
        // band). Per-root-tuple service demand should be within ~2x.
        let app = word_count();
        let rates = app.topology.component_rates(app.workload.rates());
        let per_line_ms: f64 = app
            .topology
            .components()
            .iter()
            .enumerate()
            .map(|(c, s)| rates[c] / NOMINAL_RATE * s.service_mean_ms)
            .sum();
        let cq = crate::continuous_queries(crate::CqScale::Large);
        let cq_rates = cq.topology.component_rates(cq.workload.rates());
        let cq_ms: f64 = cq
            .topology
            .components()
            .iter()
            .enumerate()
            .map(|(c, s)| cq_rates[c] / 4500.0 * s.service_mean_ms)
            .sum();
        let ratio = per_line_ms / cq_ms;
        assert!((0.5..4.0).contains(&ratio), "ratio {ratio}");
    }
}
