//! Property tests: the znode tree against a flat reference model.

use std::collections::BTreeMap;

use dss_coord::tree::{CreateMode, ZnodeTree};
use dss_coord::CoordError;
use proptest::prelude::*;

/// Random operation against a small fixed namespace.
#[derive(Debug, Clone)]
enum TreeOp {
    Create(String, Vec<u8>),
    SetData(String, Vec<u8>),
    Delete(String),
}

fn path_strategy() -> impl Strategy<Value = String> {
    // Small namespace so collisions and parent/child relations occur often.
    prop::sample::select(vec![
        "/a".to_string(),
        "/b".to_string(),
        "/a/x".to_string(),
        "/a/y".to_string(),
        "/b/x".to_string(),
        "/a/x/deep".to_string(),
    ])
}

fn op_strategy() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (path_strategy(), prop::collection::vec(any::<u8>(), 0..8))
            .prop_map(|(p, d)| TreeOp::Create(p, d)),
        (path_strategy(), prop::collection::vec(any::<u8>(), 0..8))
            .prop_map(|(p, d)| TreeOp::SetData(p, d)),
        path_strategy().prop_map(TreeOp::Delete),
    ]
}

fn parent(path: &str) -> String {
    match path.rfind('/') {
        Some(0) => "/".to_string(),
        Some(i) => path[..i].to_string(),
        None => "/".to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tree behaves like a map of paths -> (data, version) with
    /// parent-existence and no-children-on-delete rules.
    #[test]
    fn tree_matches_flat_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut tree = ZnodeTree::new();
        let mut model: BTreeMap<String, (Vec<u8>, u64)> = BTreeMap::new();
        let mut last_zxid = tree.last_zxid();

        for op in ops {
            match op {
                TreeOp::Create(path, data) => {
                    let parent_exists = parent(&path) == "/" || model.contains_key(&parent(&path));
                    let exists = model.contains_key(&path);
                    let got = tree.create(&path, &data, CreateMode::Persistent, None);
                    if !parent_exists {
                        prop_assert!(matches!(got, Err(CoordError::NoNode(_))));
                    } else if exists {
                        prop_assert!(matches!(got, Err(CoordError::NodeExists(_))));
                    } else {
                        prop_assert!(got.is_ok());
                        model.insert(path, (data, 0));
                    }
                }
                TreeOp::SetData(path, data) => {
                    let got = tree.set_data(&path, &data, None);
                    match model.get_mut(&path) {
                        Some(entry) => {
                            prop_assert!(got.is_ok());
                            entry.0 = data;
                            entry.1 += 1;
                        }
                        None => prop_assert!(matches!(got, Err(CoordError::NoNode(_)))),
                    }
                }
                TreeOp::Delete(path) => {
                    let has_children = model
                        .keys()
                        .any(|k| k != &path && k.starts_with(&format!("{path}/")));
                    let got = tree.delete(&path, None);
                    if !model.contains_key(&path) {
                        prop_assert!(matches!(got, Err(CoordError::NoNode(_))));
                    } else if has_children {
                        prop_assert!(matches!(got, Err(CoordError::NotEmpty(_))));
                    } else {
                        prop_assert!(got.is_ok());
                        model.remove(&path);
                    }
                }
            }
            // zxid is monotone and only advances on successful writes.
            let z = tree.last_zxid();
            prop_assert!(z >= last_zxid);
            prop_assert!(z - last_zxid <= 1);
            last_zxid = z;
        }

        // Final state agreement: every model node exists with the right
        // data and version; total node count matches (+1 for the root).
        for (path, (data, version)) in &model {
            let (got_data, stat) = tree.get(path).unwrap();
            prop_assert_eq!(&got_data, data);
            prop_assert_eq!(stat.version, *version);
        }
        prop_assert_eq!(tree.len(), model.len() + 1);
    }

    /// Sequential creates under one parent produce strictly increasing,
    /// lexicographically sorted names, even interleaved with deletions.
    #[test]
    fn sequential_names_strictly_increase(n_creates in 1usize..30, delete_mask in any::<u32>()) {
        let mut tree = ZnodeTree::new();
        tree.create("/q", b"", CreateMode::Persistent, None).unwrap();
        let mut names = Vec::new();
        for i in 0..n_creates {
            let (path, _, _) = tree
                .create("/q/item-", b"", CreateMode::PersistentSequential, None)
                .unwrap();
            if delete_mask & (1 << (i % 32)) != 0 {
                tree.delete(&path, None).unwrap();
            }
            names.push(path);
        }
        for pair in names.windows(2) {
            prop_assert!(pair[0] < pair[1], "{} !< {}", pair[0], pair[1]);
        }
    }

    /// multi == the same ops applied serially, when all succeed; and a
    /// no-op when any fails.
    #[test]
    fn multi_equals_serial_or_nothing(ops in prop::collection::vec(op_strategy(), 1..8)) {
        use dss_coord::tree::Op;
        let mut base = ZnodeTree::new();
        base.create("/a", b"", CreateMode::Persistent, None).unwrap();

        let multi_ops: Vec<Op> = ops
            .iter()
            .map(|op| match op {
                TreeOp::Create(p, d) => Op::Create(p.clone(), d.clone(), CreateMode::Persistent),
                TreeOp::SetData(p, d) => Op::SetData(p.clone(), d.clone(), None),
                TreeOp::Delete(p) => Op::Delete(p.clone(), None),
            })
            .collect();

        let mut serial = base.clone();
        let mut serial_ok = true;
        for op in &multi_ops {
            let r = match op {
                Op::Create(p, d, m) => serial.create(p, d, *m, None).map(|_| ()),
                Op::SetData(p, d, v) => serial.set_data(p, d, *v).map(|_| ()),
                Op::Delete(p, v) => serial.delete(p, *v).map(|_| ()),
                Op::Check(..) => Ok(()),
            };
            if r.is_err() {
                serial_ok = false;
                break;
            }
        }

        let mut txn = base.clone();
        let got = txn.multi(&multi_ops);
        if serial_ok {
            prop_assert!(got.is_ok());
            // Same namespace contents as the serial run.
            prop_assert_eq!(txn.len(), serial.len());
        } else {
            prop_assert!(got.is_err());
            // Unchanged on failure.
            prop_assert_eq!(txn.len(), base.len());
            prop_assert_eq!(txn.last_zxid(), base.last_zxid());
        }
    }
}
