//! Error type mirroring ZooKeeper's client-visible error codes.

use std::fmt;

/// Errors returned by coordination operations.
///
/// These correspond one-to-one to the ZooKeeper error codes Storm's control
/// plane handles (`NONODE`, `NODEEXISTS`, `BADVERSION`, `NOTEMPTY`, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// The target znode does not exist.
    NoNode(String),
    /// A znode already exists at the creation path.
    NodeExists(String),
    /// Conditional update failed: expected version did not match.
    BadVersion {
        /// Path of the znode.
        path: String,
        /// Version the caller expected.
        expected: u64,
        /// Version actually stored.
        actual: u64,
    },
    /// Delete refused because the znode still has children.
    NotEmpty(String),
    /// Path is syntactically invalid (must be absolute, no empty or
    /// `.`/`..` components, no trailing slash except root).
    InvalidPath(String),
    /// The session performing the operation has expired.
    SessionExpired,
    /// Ephemeral znodes cannot have children (ZooKeeper semantics).
    NoChildrenForEphemerals(String),
    /// A `multi` transaction failed; no sub-operation was applied.
    MultiFailed {
        /// Index of the first failing operation.
        op_index: usize,
        /// The underlying error.
        cause: Box<CoordError>,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::NoNode(p) => write!(f, "no node: {p}"),
            CoordError::NodeExists(p) => write!(f, "node exists: {p}"),
            CoordError::BadVersion {
                path,
                expected,
                actual,
            } => write!(
                f,
                "bad version for {path}: expected {expected}, actual {actual}"
            ),
            CoordError::NotEmpty(p) => write!(f, "node not empty: {p}"),
            CoordError::InvalidPath(p) => write!(f, "invalid path: {p:?}"),
            CoordError::SessionExpired => write!(f, "session expired"),
            CoordError::NoChildrenForEphemerals(p) => {
                write!(f, "ephemeral node cannot have children: {p}")
            }
            CoordError::MultiFailed { op_index, cause } => {
                write!(f, "multi failed at op {op_index}: {cause}")
            }
        }
    }
}

impl std::error::Error for CoordError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path_and_versions() {
        let e = CoordError::BadVersion {
            path: "/a".into(),
            expected: 3,
            actual: 5,
        };
        let s = e.to_string();
        assert!(s.contains("/a") && s.contains('3') && s.contains('5'));
    }

    #[test]
    fn multi_failed_reports_inner_cause() {
        let e = CoordError::MultiFailed {
            op_index: 2,
            cause: Box::new(CoordError::NoNode("/x".into())),
        };
        assert!(e.to_string().contains("op 2"));
        assert!(e.to_string().contains("/x"));
    }
}
