//! The znode tree: single-threaded core of the coordination service.
//!
//! [`ZnodeTree`] holds the hierarchical namespace and implements every
//! operation's semantics (versioning, sequentials, ephemerals, zxid
//! assignment). The thread-safe, watch-firing, session-aware layer lives in
//! [`crate::service`]; keeping the core single-threaded makes the semantics
//! directly testable.

use std::collections::BTreeMap;

use crate::error::CoordError;
use crate::path::{basename_of, join, parent_of, parse_path, validate_path};
use crate::service::SessionId;
use crate::stat::Stat;

/// ZooKeeper create modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    /// Survives session end; deleted only explicitly.
    Persistent,
    /// Deleted automatically when the owning session expires or closes.
    Ephemeral,
    /// Persistent with a monotonic 10-digit suffix assigned by the parent.
    PersistentSequential,
    /// Ephemeral with a monotonic suffix.
    EphemeralSequential,
}

impl CreateMode {
    /// Whether nodes created in this mode are ephemeral.
    pub fn is_ephemeral(self) -> bool {
        matches!(
            self,
            CreateMode::Ephemeral | CreateMode::EphemeralSequential
        )
    }

    /// Whether the parent assigns a sequence suffix.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CreateMode::PersistentSequential | CreateMode::EphemeralSequential
        )
    }
}

/// One operation of an atomic `multi` transaction.
#[derive(Debug, Clone)]
pub enum Op {
    /// Create a node (path, data, mode).
    Create(String, Vec<u8>, CreateMode),
    /// Set data (path, data, expected version or `None` for unconditional).
    SetData(String, Vec<u8>, Option<u64>),
    /// Delete (path, expected version or `None`).
    Delete(String, Option<u64>),
    /// Assert existence and (optionally) version without modifying.
    Check(String, Option<u64>),
}

/// Result of one `multi` sub-operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Created node's actual path (sequence suffix included).
    Created(String),
    /// New stat after a data write.
    SetData(Stat),
    /// Node deleted.
    Deleted,
    /// Check passed.
    Checked,
}

/// A change committed by a write, reported to the service layer so it can
/// fire the matching watches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Change {
    /// Node created at path.
    Created(String),
    /// Node's data changed.
    DataChanged(String),
    /// Node deleted.
    Deleted(String),
}

#[derive(Debug, Clone)]
struct Znode {
    data: Vec<u8>,
    stat: Stat,
    children: BTreeMap<String, Znode>,
    /// Counter for `-Sequential` children of this node.
    seq_counter: u64,
}

impl Znode {
    fn new(data: Vec<u8>, stat: Stat) -> Self {
        Znode {
            data,
            stat,
            children: BTreeMap::new(),
            seq_counter: 0,
        }
    }
}

/// The hierarchical namespace with a global write-transaction counter.
#[derive(Debug, Clone)]
pub struct ZnodeTree {
    root: Znode,
    zxid: u64,
    now_ms: u64,
}

impl Default for ZnodeTree {
    fn default() -> Self {
        Self::new()
    }
}

impl ZnodeTree {
    /// Empty tree containing only the root node `/`.
    pub fn new() -> Self {
        ZnodeTree {
            root: Znode::new(Vec::new(), Stat::created(0, 0, None, 0)),
            zxid: 0,
            now_ms: 0,
        }
    }

    /// Advance the logical clock used for `ctime`/`mtime` stamps.
    pub fn set_now_ms(&mut self, now_ms: u64) {
        self.now_ms = now_ms;
    }

    /// Last committed write-transaction id.
    pub fn last_zxid(&self) -> u64 {
        self.zxid
    }

    fn node(&self, path: &str) -> Result<&Znode, CoordError> {
        let comps = parse_path(path)?;
        let mut cur = &self.root;
        for c in comps {
            cur = cur
                .children
                .get(c)
                .ok_or_else(|| CoordError::NoNode(path.to_string()))?;
        }
        Ok(cur)
    }

    fn node_mut(&mut self, path: &str) -> Result<&mut Znode, CoordError> {
        let comps = parse_path(path)?;
        let mut cur = &mut self.root;
        for c in comps {
            cur = cur
                .children
                .get_mut(c)
                .ok_or_else(|| CoordError::NoNode(path.to_string()))?;
        }
        Ok(cur)
    }

    /// Create a node. Returns the actual path (with any sequence suffix)
    /// and the created stat, plus the change record for watch dispatch.
    pub fn create(
        &mut self,
        path: &str,
        data: &[u8],
        mode: CreateMode,
        owner: Option<SessionId>,
    ) -> Result<(String, Stat, Vec<Change>), CoordError> {
        validate_path(path)?;
        if path == "/" {
            return Err(CoordError::NodeExists("/".to_string()));
        }
        let parent_path = parent_of(path).to_string();
        let now = self.now_ms;
        let next_zxid = self.zxid + 1;
        let parent = self.node_mut(&parent_path)?;
        if parent.stat.is_ephemeral() {
            return Err(CoordError::NoChildrenForEphemerals(parent_path));
        }
        let name = if mode.is_sequential() {
            let n = format!("{}{:010}", basename_of(path), parent.seq_counter);
            parent.seq_counter += 1;
            n
        } else {
            basename_of(path).to_string()
        };
        let actual = join(&parent_path, &name);
        if parent.children.contains_key(&name) {
            return Err(CoordError::NodeExists(actual));
        }
        let eph_owner = if mode.is_ephemeral() { owner } else { None };
        let stat = Stat::created(next_zxid, now, eph_owner, data.len());
        parent
            .children
            .insert(name, Znode::new(data.to_vec(), stat));
        parent.stat.num_children = parent.children.len();
        parent.stat.cversion += 1;
        self.zxid = next_zxid;
        Ok((actual.clone(), stat, vec![Change::Created(actual)]))
    }

    /// Read a node's data and stat.
    pub fn get(&self, path: &str) -> Result<(Vec<u8>, Stat), CoordError> {
        let n = self.node(path)?;
        Ok((n.data.clone(), n.stat))
    }

    /// Stat only, or `None` if the node does not exist.
    pub fn exists(&self, path: &str) -> Result<Option<Stat>, CoordError> {
        validate_path(path)?;
        match self.node(path) {
            Ok(n) => Ok(Some(n.stat)),
            Err(CoordError::NoNode(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Overwrite a node's data, optionally checking the expected version.
    pub fn set_data(
        &mut self,
        path: &str,
        data: &[u8],
        expected_version: Option<u64>,
    ) -> Result<(Stat, Vec<Change>), CoordError> {
        let next_zxid = self.zxid + 1;
        let now = self.now_ms;
        let node = self.node_mut(path)?;
        if let Some(v) = expected_version {
            if node.stat.version != v {
                return Err(CoordError::BadVersion {
                    path: path.to_string(),
                    expected: v,
                    actual: node.stat.version,
                });
            }
        }
        node.data = data.to_vec();
        node.stat.version += 1;
        node.stat.mzxid = next_zxid;
        node.stat.mtime_ms = now;
        node.stat.data_length = data.len();
        let stat = node.stat;
        self.zxid = next_zxid;
        Ok((stat, vec![Change::DataChanged(path.to_string())]))
    }

    /// Delete a childless node, optionally checking the expected version.
    pub fn delete(
        &mut self,
        path: &str,
        expected_version: Option<u64>,
    ) -> Result<Vec<Change>, CoordError> {
        validate_path(path)?;
        if path == "/" {
            return Err(CoordError::InvalidPath("/".to_string()));
        }
        {
            let node = self.node(path)?;
            if !node.children.is_empty() {
                return Err(CoordError::NotEmpty(path.to_string()));
            }
            if let Some(v) = expected_version {
                if node.stat.version != v {
                    return Err(CoordError::BadVersion {
                        path: path.to_string(),
                        expected: v,
                        actual: node.stat.version,
                    });
                }
            }
        }
        let parent_path = parent_of(path).to_string();
        let name = basename_of(path).to_string();
        let next_zxid = self.zxid + 1;
        let parent = self.node_mut(&parent_path)?;
        parent.children.remove(&name);
        parent.stat.num_children = parent.children.len();
        parent.stat.cversion += 1;
        self.zxid = next_zxid;
        Ok(vec![Change::Deleted(path.to_string())])
    }

    /// Sorted names of a node's direct children.
    pub fn children(&self, path: &str) -> Result<Vec<String>, CoordError> {
        Ok(self.node(path)?.children.keys().cloned().collect())
    }

    /// Paths of every ephemeral node owned by `session`, deepest first so
    /// they can be deleted in order.
    pub fn ephemerals_of(&self, session: SessionId) -> Vec<String> {
        let mut found = Vec::new();
        let mut stack = vec![(String::from("/"), &self.root)];
        while let Some((p, node)) = stack.pop() {
            if node.stat.ephemeral_owner == Some(session) {
                found.push(p.clone());
            }
            for (name, child) in &node.children {
                stack.push((join(&p, name), child));
            }
        }
        // Deepest paths first: an ephemeral cannot have children, but this
        // keeps deletion order robust regardless.
        found.sort_by_key(|p| std::cmp::Reverse(p.len()));
        found
    }

    /// Atomic transaction: apply all operations or none.
    ///
    /// The tree is config-sized (Storm stores kilobytes), so all-or-nothing
    /// is implemented by staging on a clone and committing by swap.
    pub fn multi(&mut self, ops: &[Op]) -> Result<(Vec<OpResult>, Vec<Change>), CoordError> {
        let mut staged = self.clone();
        let mut results = Vec::with_capacity(ops.len());
        let mut changes = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let fail = |cause: CoordError| CoordError::MultiFailed {
                op_index: i,
                cause: Box::new(cause),
            };
            match op {
                Op::Create(path, data, mode) => {
                    let (actual, _, ch) = staged.create(path, data, *mode, None).map_err(fail)?;
                    changes.extend(ch);
                    results.push(OpResult::Created(actual));
                }
                Op::SetData(path, data, ver) => {
                    let (stat, ch) = staged.set_data(path, data, *ver).map_err(fail)?;
                    changes.extend(ch);
                    results.push(OpResult::SetData(stat));
                }
                Op::Delete(path, ver) => {
                    let ch = staged.delete(path, *ver).map_err(fail)?;
                    changes.extend(ch);
                    results.push(OpResult::Deleted);
                }
                Op::Check(path, ver) => {
                    let node = staged.node(path).map_err(fail)?;
                    if let Some(v) = ver {
                        if node.stat.version != *v {
                            return Err(fail(CoordError::BadVersion {
                                path: path.clone(),
                                expected: *v,
                                actual: node.stat.version,
                            }));
                        }
                    }
                    results.push(OpResult::Checked);
                }
            }
        }
        // Commit: a multi is one transaction, so it consumes one zxid.
        staged.zxid = self.zxid + 1;
        *self = staged;
        Ok((results, changes))
    }

    /// Total number of znodes (including the root).
    pub fn len(&self) -> usize {
        fn count(n: &Znode) -> usize {
            1 + n.children.values().map(count).sum::<usize>()
        }
        count(&self.root)
    }

    /// True if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.root.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> ZnodeTree {
        ZnodeTree::new()
    }

    #[test]
    fn create_then_get_roundtrips_data() {
        let mut t = tree();
        t.create("/a", b"hello", CreateMode::Persistent, None)
            .unwrap();
        let (data, stat) = t.get("/a").unwrap();
        assert_eq!(data, b"hello");
        assert_eq!(stat.version, 0);
        assert_eq!(stat.data_length, 5);
    }

    #[test]
    fn create_requires_existing_parent() {
        let mut t = tree();
        let err = t
            .create("/a/b", b"", CreateMode::Persistent, None)
            .unwrap_err();
        assert!(matches!(err, CoordError::NoNode(_)));
    }

    #[test]
    fn duplicate_create_is_node_exists() {
        let mut t = tree();
        t.create("/a", b"", CreateMode::Persistent, None).unwrap();
        let err = t
            .create("/a", b"", CreateMode::Persistent, None)
            .unwrap_err();
        assert_eq!(err, CoordError::NodeExists("/a".into()));
    }

    #[test]
    fn set_data_bumps_version_and_mzxid() {
        let mut t = tree();
        t.create("/a", b"v0", CreateMode::Persistent, None).unwrap();
        let (stat, _) = t.set_data("/a", b"v1", None).unwrap();
        assert_eq!(stat.version, 1);
        assert!(stat.mzxid > stat.czxid);
        assert_eq!(t.get("/a").unwrap().0, b"v1");
    }

    #[test]
    fn conditional_set_rejects_stale_version() {
        let mut t = tree();
        t.create("/a", b"v0", CreateMode::Persistent, None).unwrap();
        t.set_data("/a", b"v1", Some(0)).unwrap();
        let err = t.set_data("/a", b"v2", Some(0)).unwrap_err();
        assert!(matches!(err, CoordError::BadVersion { actual: 1, .. }));
    }

    #[test]
    fn delete_refuses_non_empty_and_respects_version() {
        let mut t = tree();
        t.create("/a", b"", CreateMode::Persistent, None).unwrap();
        t.create("/a/b", b"", CreateMode::Persistent, None).unwrap();
        assert!(matches!(t.delete("/a", None), Err(CoordError::NotEmpty(_))));
        t.delete("/a/b", Some(0)).unwrap();
        assert!(matches!(
            t.delete("/a", Some(9)),
            Err(CoordError::BadVersion { .. })
        ));
        t.delete("/a", Some(0)).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn sequential_names_are_monotonic_per_parent() {
        let mut t = tree();
        t.create("/q", b"", CreateMode::Persistent, None).unwrap();
        let (p0, _, _) = t
            .create("/q/item-", b"", CreateMode::PersistentSequential, None)
            .unwrap();
        let (p1, _, _) = t
            .create("/q/item-", b"", CreateMode::PersistentSequential, None)
            .unwrap();
        assert_eq!(p0, "/q/item-0000000000");
        assert_eq!(p1, "/q/item-0000000001");
        assert!(p0 < p1, "sequence order must be lexicographic");
        // Counter survives deletion: no reuse of suffixes.
        t.delete(&p0, None).unwrap();
        let (p2, _, _) = t
            .create("/q/item-", b"", CreateMode::PersistentSequential, None)
            .unwrap();
        assert_eq!(p2, "/q/item-0000000002");
    }

    #[test]
    fn ephemerals_cannot_have_children() {
        let mut t = tree();
        t.create("/e", b"", CreateMode::Ephemeral, Some(SessionId(1)))
            .unwrap();
        let err = t
            .create("/e/c", b"", CreateMode::Persistent, None)
            .unwrap_err();
        assert!(matches!(err, CoordError::NoChildrenForEphemerals(_)));
    }

    #[test]
    fn ephemerals_of_lists_only_owned_nodes() {
        let mut t = tree();
        t.create("/p", b"", CreateMode::Persistent, None).unwrap();
        t.create("/p/e1", b"", CreateMode::Ephemeral, Some(SessionId(1)))
            .unwrap();
        t.create("/p/e2", b"", CreateMode::Ephemeral, Some(SessionId(2)))
            .unwrap();
        assert_eq!(t.ephemerals_of(SessionId(1)), vec!["/p/e1".to_string()]);
        assert_eq!(t.ephemerals_of(SessionId(2)), vec!["/p/e2".to_string()]);
        assert!(t.ephemerals_of(SessionId(3)).is_empty());
    }

    #[test]
    fn children_are_sorted() {
        let mut t = tree();
        t.create("/p", b"", CreateMode::Persistent, None).unwrap();
        for name in ["c", "a", "b"] {
            t.create(&format!("/p/{name}"), b"", CreateMode::Persistent, None)
                .unwrap();
        }
        assert_eq!(t.children("/p").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(t.get("/p").unwrap().1.num_children, 3);
    }

    #[test]
    fn zxid_increases_once_per_write() {
        let mut t = tree();
        let z0 = t.last_zxid();
        t.create("/a", b"", CreateMode::Persistent, None).unwrap();
        assert_eq!(t.last_zxid(), z0 + 1);
        t.set_data("/a", b"x", None).unwrap();
        assert_eq!(t.last_zxid(), z0 + 2);
        t.delete("/a", None).unwrap();
        assert_eq!(t.last_zxid(), z0 + 3);
    }

    #[test]
    fn multi_applies_all_or_nothing() {
        let mut t = tree();
        t.create("/a", b"v0", CreateMode::Persistent, None).unwrap();
        // Failing multi: second op has a bad version.
        let err = t
            .multi(&[
                Op::Create("/b".into(), b"".to_vec(), CreateMode::Persistent),
                Op::SetData("/a".into(), b"v1".to_vec(), Some(99)),
            ])
            .unwrap_err();
        assert!(matches!(err, CoordError::MultiFailed { op_index: 1, .. }));
        assert!(
            t.exists("/b").unwrap().is_none(),
            "create must be rolled back"
        );
        assert_eq!(t.get("/a").unwrap().0, b"v0");

        // Succeeding multi commits everything under one zxid.
        let z = t.last_zxid();
        let (results, _) = t
            .multi(&[
                Op::Check("/a".into(), Some(0)),
                Op::SetData("/a".into(), b"v1".to_vec(), Some(0)),
                Op::Create("/b".into(), b"".to_vec(), CreateMode::Persistent),
            ])
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(t.last_zxid(), z + 1);
        assert_eq!(t.get("/a").unwrap().0, b"v1");
        assert!(t.exists("/b").unwrap().is_some());
    }

    #[test]
    fn multi_check_verifies_existence_and_version() {
        let mut t = tree();
        t.create("/a", b"", CreateMode::Persistent, None).unwrap();
        assert!(t.multi(&[Op::Check("/a".into(), None)]).is_ok());
        assert!(t.multi(&[Op::Check("/missing".into(), None)]).is_err());
        assert!(t.multi(&[Op::Check("/a".into(), Some(5))]).is_err());
    }

    #[test]
    fn len_counts_all_nodes() {
        let mut t = tree();
        assert_eq!(t.len(), 1);
        t.create("/a", b"", CreateMode::Persistent, None).unwrap();
        t.create("/a/b", b"", CreateMode::Persistent, None).unwrap();
        assert_eq!(t.len(), 3);
    }
}
