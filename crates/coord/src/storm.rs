//! The Storm znode layout and assignment codec.
//!
//! Storm keeps its mutable control state in a well-known ZooKeeper subtree;
//! the Nimbus substitute (`dss-nimbus`) reads and writes exactly these
//! paths. The layout mirrors Storm's:
//!
//! ```text
//! /storm
//!   /storms/<topology>          topology registration (config payload)
//!   /assignments/<topology>     current scheduling solution
//!   /supervisors/<machine>      ephemeral: one per live worker machine
//!   /workerbeats/<topology>     parent of per-worker heartbeat ephemerals
//!   /errors/<topology>          component error reports
//! ```

use crate::error::CoordError;
use crate::service::Session;
use crate::tree::CreateMode;

/// Well-known path helpers for the Storm subtree.
#[derive(Debug, Clone, Copy, Default)]
pub struct StormPaths;

impl StormPaths {
    /// Root of the Storm subtree.
    pub const ROOT: &'static str = "/storm";

    /// Registration node of a topology.
    pub fn storm(topology: &str) -> String {
        format!("/storm/storms/{topology}")
    }

    /// Assignment node of a topology.
    pub fn assignment(topology: &str) -> String {
        format!("/storm/assignments/{topology}")
    }

    /// Supervisor liveness node of a machine.
    pub fn supervisor(machine: usize) -> String {
        format!("/storm/supervisors/machine-{machine:04}")
    }

    /// Heartbeat parent of a topology.
    pub fn workerbeats(topology: &str) -> String {
        format!("/storm/workerbeats/{topology}")
    }

    /// Heartbeat node of one worker process (one per machine per topology).
    pub fn workerbeat(topology: &str, machine: usize) -> String {
        format!("/storm/workerbeats/{topology}/machine-{machine:04}")
    }

    /// Error-report node of a topology.
    pub fn errors(topology: &str) -> String {
        format!("/storm/errors/{topology}")
    }

    /// Create the static skeleton (`/storm/...` parents). Idempotent.
    pub fn bootstrap(session: &Session) -> Result<(), CoordError> {
        for p in [
            "/storm",
            "/storm/storms",
            "/storm/assignments",
            "/storm/supervisors",
            "/storm/workerbeats",
            "/storm/errors",
        ] {
            match session.create(p, b"", CreateMode::Persistent) {
                Ok(_) | Err(CoordError::NodeExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Encode a thread-to-machine assignment (`machine_of[i]` = machine of
/// executor `i`, plus the machine count) as the znode payload.
///
/// Format: `u32` magic, `u32` machine count, `u32` executor count, then one
/// `u32` per executor — all little-endian. Small, versioned, and
/// self-validating on decode.
pub fn encode_assignment(machine_of: &[usize], n_machines: usize) -> Vec<u8> {
    const MAGIC: u32 = 0x5354_4131; // "STA1"
    let mut out = Vec::with_capacity(12 + machine_of.len() * 4);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(n_machines as u32).to_le_bytes());
    out.extend_from_slice(&(machine_of.len() as u32).to_le_bytes());
    for &m in machine_of {
        out.extend_from_slice(&(m as u32).to_le_bytes());
    }
    out
}

/// Decode an assignment payload written by [`encode_assignment`].
///
/// Returns `(machine_of, n_machines)` or `None` if the payload is
/// malformed (wrong magic, truncated, or machine index out of range).
pub fn decode_assignment(data: &[u8]) -> Option<(Vec<usize>, usize)> {
    const MAGIC: u32 = 0x5354_4131;
    let word = |i: usize| -> Option<u32> {
        data.get(i * 4..i * 4 + 4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    };
    if word(0)? != MAGIC {
        return None;
    }
    let n_machines = word(1)? as usize;
    let n_exec = word(2)? as usize;
    if data.len() != 12 + n_exec * 4 {
        return None;
    }
    let mut machine_of = Vec::with_capacity(n_exec);
    for i in 0..n_exec {
        let m = word(3 + i)? as usize;
        if m >= n_machines {
            return None;
        }
        machine_of.push(m);
    }
    Some((machine_of, n_machines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{CoordConfig, CoordService};

    #[test]
    fn bootstrap_is_idempotent() {
        let svc = CoordService::new(CoordConfig::default());
        let s = svc.connect();
        StormPaths::bootstrap(&s).unwrap();
        StormPaths::bootstrap(&s).unwrap();
        assert!(s.exists("/storm/assignments").unwrap().is_some());
        assert!(s.exists("/storm/supervisors").unwrap().is_some());
    }

    #[test]
    fn paths_are_distinct_per_topology_and_machine() {
        assert_ne!(StormPaths::assignment("a"), StormPaths::assignment("b"));
        assert_ne!(StormPaths::supervisor(1), StormPaths::supervisor(2));
        assert_eq!(
            StormPaths::workerbeat("wc", 3),
            "/storm/workerbeats/wc/machine-0003"
        );
    }

    #[test]
    fn assignment_codec_roundtrips() {
        let machine_of = vec![0, 3, 2, 2, 9, 1];
        let data = encode_assignment(&machine_of, 10);
        let (decoded, m) = decode_assignment(&data).unwrap();
        assert_eq!(decoded, machine_of);
        assert_eq!(m, 10);
    }

    #[test]
    fn decode_rejects_corruption() {
        let good = encode_assignment(&[0, 1, 2], 4);
        assert!(decode_assignment(&[]).is_none(), "empty");
        assert!(
            decode_assignment(&good[..good.len() - 1]).is_none(),
            "truncated"
        );
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(decode_assignment(&bad_magic).is_none(), "magic");
        // Machine index out of range.
        let bad_range = encode_assignment(&[5], 4);
        assert!(decode_assignment(&bad_range).is_none(), "range");
    }

    #[test]
    fn assignment_stored_and_read_through_service() {
        let svc = CoordService::new(CoordConfig::default());
        let s = svc.connect();
        StormPaths::bootstrap(&s).unwrap();
        let payload = encode_assignment(&[1, 0, 1], 2);
        let path = StormPaths::assignment("wc");
        s.create(&path, &payload, crate::tree::CreateMode::Persistent)
            .unwrap();
        let (data, stat) = s.get_data(&path).unwrap();
        assert_eq!(decode_assignment(&data).unwrap().0, vec![1, 0, 1]);
        assert_eq!(stat.version, 0);
    }
}
