//! Thread-safe, session-aware coordination service.
//!
//! [`CoordService`] wraps the [`ZnodeTree`] with a lock, a watch registry,
//! and session lifecycle: clients [`CoordService::connect`] to obtain a
//! [`Session`], keep it alive with [`Session::heartbeat`], and lose their
//! ephemeral nodes when the embedding's logical clock
//! ([`CoordService::advance_to`]) passes their expiry deadline. This is the
//! mechanism the Nimbus substitute uses to detect dead workers, mirroring
//! the paper's §2.1 heartbeat monitoring.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::CoordError;
use crate::stat::Stat;
use crate::tree::{Change, CreateMode, Op, OpResult, ZnodeTree};
use crate::watch::{WatchKind, WatchRegistry, Watcher};

/// Identifier of a client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CoordConfig {
    /// A session expires when no heartbeat arrives for this long.
    pub session_timeout_ms: u64,
}

impl Default for CoordConfig {
    fn default() -> Self {
        // Storm's default nimbus.task.timeout is 30 s.
        CoordConfig {
            session_timeout_ms: 30_000,
        }
    }
}

#[derive(Debug)]
struct SessionState {
    id: SessionId,
    last_heartbeat_ms: u64,
    expired: bool,
}

#[derive(Debug)]
struct Inner {
    tree: ZnodeTree,
    watches: WatchRegistry,
    sessions: Vec<SessionState>,
    next_session: u64,
    now_ms: u64,
}

impl Inner {
    fn session_mut(&mut self, id: SessionId) -> Option<&mut SessionState> {
        self.sessions.iter_mut().find(|s| s.id == id)
    }

    fn check_live(&mut self, id: SessionId) -> Result<(), CoordError> {
        match self.session_mut(id) {
            Some(s) if !s.expired => Ok(()),
            _ => Err(CoordError::SessionExpired),
        }
    }

    fn commit(&mut self, changes: Vec<Change>) {
        self.watches.dispatch(&changes);
    }

    /// Expire one session: mark it dead and delete its ephemerals,
    /// firing watches for each deletion.
    fn expire(&mut self, id: SessionId) {
        if let Some(s) = self.session_mut(id) {
            if s.expired {
                return;
            }
            s.expired = true;
        } else {
            return;
        }
        for path in self.tree.ephemerals_of(id) {
            if let Ok(changes) = self.tree.delete(&path, None) {
                self.commit(changes);
            }
        }
    }
}

/// The coordination service; cheap to clone (shared state).
#[derive(Debug, Clone)]
pub struct CoordService {
    inner: Arc<Mutex<Inner>>,
    config: CoordConfig,
}

impl CoordService {
    /// New service with an empty tree at logical time 0.
    pub fn new(config: CoordConfig) -> Self {
        CoordService {
            inner: Arc::new(Mutex::new(Inner {
                tree: ZnodeTree::new(),
                watches: WatchRegistry::default(),
                sessions: Vec::new(),
                next_session: 1,
                now_ms: 0,
            })),
            config,
        }
    }

    /// Open a new session stamped at the current logical time.
    pub fn connect(&self) -> Session {
        let mut inner = self.inner.lock();
        let id = SessionId(inner.next_session);
        inner.next_session += 1;
        let now = inner.now_ms;
        inner.sessions.push(SessionState {
            id,
            last_heartbeat_ms: now,
            expired: false,
        });
        Session {
            svc: self.clone(),
            id,
        }
    }

    /// Advance the logical clock, expiring sessions whose last heartbeat is
    /// older than the configured timeout. Returns the ids expired now.
    pub fn advance_to(&self, now_ms: u64) -> Vec<SessionId> {
        let mut inner = self.inner.lock();
        let now = inner.now_ms.max(now_ms);
        inner.now_ms = now;
        inner.tree.set_now_ms(now);
        let deadline_ms = self.config.session_timeout_ms;
        let now = inner.now_ms;
        let stale: Vec<SessionId> = inner
            .sessions
            .iter()
            .filter(|s| !s.expired && now.saturating_sub(s.last_heartbeat_ms) >= deadline_ms)
            .map(|s| s.id)
            .collect();
        for id in &stale {
            inner.expire(*id);
        }
        stale
    }

    /// Current logical time.
    pub fn now_ms(&self) -> u64 {
        self.inner.lock().now_ms
    }

    /// The configured session timeout: how long a session survives without
    /// a heartbeat (failover logic needs it to wait out a dead leader).
    pub fn session_timeout_ms(&self) -> u64 {
        self.config.session_timeout_ms
    }

    /// Number of znodes, including the root.
    pub fn node_count(&self) -> usize {
        self.inner.lock().tree.len()
    }

    /// Number of live (non-expired) sessions.
    pub fn live_sessions(&self) -> usize {
        self.inner
            .lock()
            .sessions
            .iter()
            .filter(|s| !s.expired)
            .count()
    }

    /// Number of armed (registered, unfired) watches.
    pub fn armed_watches(&self) -> usize {
        self.inner.lock().watches.pending_len()
    }

    /// Last committed write-transaction id.
    pub fn last_zxid(&self) -> u64 {
        self.inner.lock().tree.last_zxid()
    }
}

/// A client session; all namespace operations go through one of these.
#[derive(Debug, Clone)]
pub struct Session {
    svc: CoordService,
    id: SessionId,
}

impl Session {
    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Refresh the session's liveness deadline.
    pub fn heartbeat(&self) -> Result<(), CoordError> {
        let mut inner = self.svc.inner.lock();
        let now = inner.now_ms;
        match inner.session_mut(self.id) {
            Some(s) if !s.expired => {
                s.last_heartbeat_ms = now;
                Ok(())
            }
            _ => Err(CoordError::SessionExpired),
        }
    }

    /// True until the session expires or is closed.
    pub fn is_live(&self) -> bool {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id).is_ok()
    }

    /// Close the session explicitly, deleting its ephemerals immediately.
    pub fn close(&self) {
        let mut inner = self.svc.inner.lock();
        inner.expire(self.id);
    }

    /// Create a znode. Returns its stat; for `-Sequential` modes use
    /// [`Session::create_seq`] to obtain the assigned path.
    pub fn create(&self, path: &str, data: &[u8], mode: CreateMode) -> Result<Stat, CoordError> {
        self.create_seq(path, data, mode).map(|(_, stat)| stat)
    }

    /// Create a znode and return the actual path (with sequence suffix).
    pub fn create_seq(
        &self,
        path: &str,
        data: &[u8],
        mode: CreateMode,
    ) -> Result<(String, Stat), CoordError> {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id)?;
        let (actual, stat, changes) = inner.tree.create(path, data, mode, Some(self.id))?;
        inner.commit(changes);
        Ok((actual, stat))
    }

    /// Create every missing ancestor of `path` (persistent, empty data)
    /// and then `path` itself with `data`. Idempotent like `mkdir -p`; if
    /// the leaf already exists its data is left untouched.
    pub fn ensure_path(&self, path: &str, data: &[u8]) -> Result<Stat, CoordError> {
        let comps = crate::path::parse_path(path)?;
        let mut cur = String::new();
        let mut last_stat = None;
        for (i, comp) in comps.iter().enumerate() {
            cur.push('/');
            cur.push_str(comp);
            let payload: &[u8] = if i + 1 == comps.len() { data } else { b"" };
            match self.create(&cur, payload, CreateMode::Persistent) {
                Ok(stat) => last_stat = Some(stat),
                Err(CoordError::NodeExists(_)) => {
                    last_stat = Some(self.stat(&cur)?);
                }
                Err(e) => return Err(e),
            }
        }
        last_stat.ok_or_else(|| CoordError::InvalidPath(path.to_string()))
    }

    /// Read data and stat.
    pub fn get_data(&self, path: &str) -> Result<(Vec<u8>, Stat), CoordError> {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id)?;
        inner.tree.get(path)
    }

    /// Read data and stat, arming a one-shot data watch.
    pub fn get_data_watch(&self, path: &str) -> Result<(Vec<u8>, Stat, Watcher), CoordError> {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id)?;
        let (data, stat) = inner.tree.get(path)?;
        let watcher = inner.watches.register(path, WatchKind::Data);
        Ok((data, stat, watcher))
    }

    /// Stat without data.
    pub fn stat(&self, path: &str) -> Result<Stat, CoordError> {
        self.exists(path)?
            .ok_or_else(|| CoordError::NoNode(path.to_string()))
    }

    /// Stat if the node exists.
    pub fn exists(&self, path: &str) -> Result<Option<Stat>, CoordError> {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id)?;
        inner.tree.exists(path)
    }

    /// Existence check that also arms a one-shot exists watch (fires on
    /// creation, data change, or deletion of `path`).
    pub fn exists_watch(&self, path: &str) -> Result<(Option<Stat>, Watcher), CoordError> {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id)?;
        let stat = inner.tree.exists(path)?;
        let watcher = inner.watches.register(path, WatchKind::Exists);
        Ok((stat, watcher))
    }

    /// Conditional (or unconditional, with `None`) data overwrite.
    pub fn set_data(
        &self,
        path: &str,
        data: &[u8],
        expected_version: Option<u64>,
    ) -> Result<Stat, CoordError> {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id)?;
        let (stat, changes) = inner.tree.set_data(path, data, expected_version)?;
        inner.commit(changes);
        Ok(stat)
    }

    /// Conditional delete.
    pub fn delete(&self, path: &str, expected_version: Option<u64>) -> Result<(), CoordError> {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id)?;
        let changes = inner.tree.delete(path, expected_version)?;
        inner.commit(changes);
        Ok(())
    }

    /// Sorted child names.
    pub fn get_children(&self, path: &str) -> Result<Vec<String>, CoordError> {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id)?;
        inner.tree.children(path)
    }

    /// Sorted child names, arming a one-shot children watch.
    pub fn get_children_watch(&self, path: &str) -> Result<(Vec<String>, Watcher), CoordError> {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id)?;
        let names = inner.tree.children(path)?;
        let watcher = inner.watches.register(path, WatchKind::Children);
        Ok((names, watcher))
    }

    /// Atomic transaction (all operations applied, or none).
    pub fn multi(&self, ops: &[Op]) -> Result<Vec<OpResult>, CoordError> {
        let mut inner = self.svc.inner.lock();
        inner.check_live(self.id)?;
        let (results, changes) = inner.tree.multi(ops)?;
        inner.commit(changes);
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watch::WatchEvent;

    fn svc_with_timeout(ms: u64) -> CoordService {
        CoordService::new(CoordConfig {
            session_timeout_ms: ms,
        })
    }

    #[test]
    fn connect_create_get_roundtrip() {
        let svc = CoordService::new(Default::default());
        let s = svc.connect();
        s.create("/a", b"x", CreateMode::Persistent).unwrap();
        assert_eq!(s.get_data("/a").unwrap().0, b"x");
        assert_eq!(svc.node_count(), 2);
    }

    #[test]
    fn ensure_path_creates_all_ancestors_and_is_idempotent() {
        let svc = CoordService::new(Default::default());
        let s = svc.connect();
        s.ensure_path("/storm/assignments/wc", b"v").unwrap();
        assert_eq!(s.get_data("/storm/assignments/wc").unwrap().0, b"v");
        // Second call must not error and must not clobber data.
        s.ensure_path("/storm/assignments/wc", b"other").unwrap();
        assert_eq!(s.get_data("/storm/assignments/wc").unwrap().0, b"v");
    }

    #[test]
    fn session_expiry_deletes_ephemerals_and_fires_watches() {
        let svc = svc_with_timeout(1_000);
        let worker = svc.connect();
        let master = svc.connect();
        master.ensure_path("/beats", b"").unwrap();
        worker
            .create("/beats/w1", b"", CreateMode::Ephemeral)
            .unwrap();

        let (kids, watcher) = master.get_children_watch("/beats").unwrap();
        assert_eq!(kids, vec!["w1"]);

        // Master heartbeats; the worker goes silent. (Expiry is `>=` the
        // timeout, so the master heartbeat at t=500 survives t=1400.)
        svc.advance_to(500);
        master.heartbeat().unwrap();
        let expired = svc.advance_to(1_400);
        assert_eq!(expired, vec![worker.id()]);

        assert!(!worker.is_live());
        assert!(worker.heartbeat().is_err());
        assert_eq!(master.get_children("/beats").unwrap(), Vec::<String>::new());
        assert_eq!(
            watcher.drain(),
            vec![WatchEvent::NodeChildrenChanged("/beats".into())]
        );
    }

    #[test]
    fn heartbeat_keeps_session_alive() {
        let svc = svc_with_timeout(1_000);
        let s = svc.connect();
        for t in [400, 800, 1_200, 1_600] {
            svc.advance_to(t);
            s.heartbeat().unwrap();
        }
        assert!(s.is_live());
        assert_eq!(svc.live_sessions(), 1);
    }

    #[test]
    fn expired_session_cannot_operate() {
        let svc = svc_with_timeout(10);
        let s = svc.connect();
        svc.advance_to(100);
        assert_eq!(
            s.create("/x", b"", CreateMode::Persistent).unwrap_err(),
            CoordError::SessionExpired
        );
        assert_eq!(s.get_data("/").unwrap_err(), CoordError::SessionExpired);
    }

    #[test]
    fn close_releases_ephemerals_immediately() {
        let svc = CoordService::new(Default::default());
        let a = svc.connect();
        let b = svc.connect();
        a.ensure_path("/locks", b"").unwrap();
        a.create("/locks/holder", b"", CreateMode::Ephemeral)
            .unwrap();
        assert!(b.exists("/locks/holder").unwrap().is_some());
        a.close();
        assert!(b.exists("/locks/holder").unwrap().is_none());
        assert_eq!(svc.live_sessions(), 1);
    }

    #[test]
    fn data_watch_fires_once_on_write_from_other_session() {
        let svc = CoordService::new(Default::default());
        let writer = svc.connect();
        let reader = svc.connect();
        writer
            .create("/cfg", b"v0", CreateMode::Persistent)
            .unwrap();
        let (_, _, watcher) = reader.get_data_watch("/cfg").unwrap();
        assert_eq!(svc.armed_watches(), 1);
        writer.set_data("/cfg", b"v1", None).unwrap();
        writer.set_data("/cfg", b"v2", None).unwrap();
        assert_eq!(
            watcher.drain(),
            vec![WatchEvent::NodeDataChanged("/cfg".into())]
        );
        assert_eq!(svc.armed_watches(), 0);
    }

    #[test]
    fn exists_watch_fires_on_creation() {
        let svc = CoordService::new(Default::default());
        let s = svc.connect();
        let (stat, watcher) = s.exists_watch("/pending").unwrap();
        assert!(stat.is_none());
        s.create("/pending", b"", CreateMode::Persistent).unwrap();
        assert_eq!(
            watcher.drain(),
            vec![WatchEvent::NodeCreated("/pending".into())]
        );
    }

    #[test]
    fn multi_through_session_is_atomic() {
        let svc = CoordService::new(Default::default());
        let s = svc.connect();
        s.create("/a", b"v0", CreateMode::Persistent).unwrap();
        let err = s
            .multi(&[
                Op::SetData("/a".into(), b"v1".to_vec(), Some(0)),
                Op::Delete("/missing".into(), None),
            ])
            .unwrap_err();
        assert!(matches!(err, CoordError::MultiFailed { op_index: 1, .. }));
        assert_eq!(s.get_data("/a").unwrap().0, b"v0");
    }

    #[test]
    fn sequential_create_via_session_returns_path() {
        let svc = CoordService::new(Default::default());
        let s = svc.connect();
        s.create("/q", b"", CreateMode::Persistent).unwrap();
        let (p, _) = s
            .create_seq("/q/n-", b"", CreateMode::EphemeralSequential)
            .unwrap();
        assert_eq!(p, "/q/n-0000000000");
        s.close();
        let s2 = svc.connect();
        assert!(
            s2.exists(&p).unwrap().is_none(),
            "ephemeral gone after close"
        );
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let svc = CoordService::new(Default::default());
        svc.advance_to(100);
        svc.advance_to(50);
        assert_eq!(svc.now_ms(), 100);
    }

    #[test]
    fn service_is_shareable_across_threads() {
        let svc = CoordService::new(Default::default());
        let root = svc.connect();
        root.create("/t", b"", CreateMode::Persistent).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let svc = svc.clone();
                std::thread::spawn(move || {
                    let s = svc.connect();
                    for j in 0..25 {
                        s.create(&format!("/t/n{i}-{j}"), b"", CreateMode::Persistent)
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(svc.connect().get_children("/t").unwrap().len(), 100);
    }
}
