//! One-shot watches, matching ZooKeeper's notification model.
//!
//! A watch is registered by a read (`get_data` / `exists` / `get_children`
//! with a watch flag), fires **at most once** on the next matching write,
//! and must be re-registered by the client after delivery. Events carry the
//! path and what happened, not the new data — clients re-read, exactly as
//! ZooKeeper clients do.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use crate::path::parent_of;
use crate::tree::Change;

/// What a registered watch is interested in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    /// Data writes and deletion of the node (`get_data` watch).
    Data,
    /// Creation, data writes and deletion (`exists` watch).
    Exists,
    /// Child creation/deletion under the node, and deletion of the node
    /// itself (`get_children` watch).
    Children,
}

/// A delivered notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchEvent {
    /// The watched path was created.
    NodeCreated(String),
    /// The watched path's data changed.
    NodeDataChanged(String),
    /// The watched path was deleted.
    NodeDeleted(String),
    /// The watched path's child list changed.
    NodeChildrenChanged(String),
}

impl WatchEvent {
    /// Path the event refers to.
    pub fn path(&self) -> &str {
        match self {
            WatchEvent::NodeCreated(p)
            | WatchEvent::NodeDataChanged(p)
            | WatchEvent::NodeDeleted(p)
            | WatchEvent::NodeChildrenChanged(p) => p,
        }
    }
}

/// Client handle on which fired events are received.
///
/// Backed by an unbounded channel: the service never blocks on slow
/// watchers, mirroring ZooKeeper's server-side queueing.
#[derive(Debug)]
pub struct Watcher {
    rx: Receiver<WatchEvent>,
}

impl Watcher {
    /// Next event if one has fired.
    pub fn try_next(&self) -> Option<WatchEvent> {
        match self.rx.try_recv() {
            Ok(e) => Some(e),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drain all fired events.
    pub fn drain(&self) -> Vec<WatchEvent> {
        let mut out = Vec::new();
        while let Some(e) = self.try_next() {
            out.push(e);
        }
        out
    }
}

/// One registered, not-yet-fired watch.
#[derive(Debug)]
struct Registration {
    path: String,
    kind: WatchKind,
    tx: Sender<WatchEvent>,
}

/// Registry of pending watches; owned by the service, protected by its lock.
#[derive(Debug, Default)]
pub(crate) struct WatchRegistry {
    pending: Vec<Registration>,
}

impl WatchRegistry {
    /// Register a watch; returns the receiver handle.
    pub(crate) fn register(&mut self, path: &str, kind: WatchKind) -> Watcher {
        let (tx, rx) = unbounded();
        self.pending.push(Registration {
            path: path.to_string(),
            kind,
            tx,
        });
        Watcher { rx }
    }

    /// Number of watches still armed.
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Fire every watch matching any of `changes`, removing fired watches
    /// (one-shot). Events are delivered in commit order.
    pub(crate) fn dispatch(&mut self, changes: &[Change]) {
        if self.pending.is_empty() {
            return;
        }
        for change in changes {
            // A registration can fire for at most one event per change;
            // retain the ones that did not match.
            self.pending.retain(|reg| {
                if let Some(event) = event_for(reg, change) {
                    // A dropped Watcher just means nobody is listening.
                    let _ = reg.tx.send(event);
                    false
                } else {
                    true
                }
            });
        }
    }
}

/// The event `reg` receives for `change`, if it matches.
fn event_for(reg: &Registration, change: &Change) -> Option<WatchEvent> {
    let (changed, is_create, is_delete, is_data) = match change {
        Change::Created(p) => (p.as_str(), true, false, false),
        Change::Deleted(p) => (p.as_str(), false, true, false),
        Change::DataChanged(p) => (p.as_str(), false, false, true),
    };
    match reg.kind {
        WatchKind::Data => {
            if reg.path == changed && (is_data || is_delete) {
                return Some(if is_delete {
                    WatchEvent::NodeDeleted(changed.to_string())
                } else {
                    WatchEvent::NodeDataChanged(changed.to_string())
                });
            }
        }
        WatchKind::Exists => {
            if reg.path == changed {
                return Some(if is_create {
                    WatchEvent::NodeCreated(changed.to_string())
                } else if is_delete {
                    WatchEvent::NodeDeleted(changed.to_string())
                } else {
                    WatchEvent::NodeDataChanged(changed.to_string())
                });
            }
        }
        WatchKind::Children => {
            if reg.path == changed && is_delete {
                return Some(WatchEvent::NodeDeleted(changed.to_string()));
            }
            if (is_create || is_delete) && parent_of(changed) == reg.path {
                return Some(WatchEvent::NodeChildrenChanged(reg.path.clone()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire(reg_path: &str, kind: WatchKind, changes: &[Change]) -> Vec<WatchEvent> {
        let mut r = WatchRegistry::default();
        let w = r.register(reg_path, kind);
        r.dispatch(changes);
        w.drain()
    }

    #[test]
    fn data_watch_fires_on_change_and_delete_not_create() {
        assert_eq!(
            fire("/a", WatchKind::Data, &[Change::DataChanged("/a".into())]),
            vec![WatchEvent::NodeDataChanged("/a".into())]
        );
        assert_eq!(
            fire("/a", WatchKind::Data, &[Change::Deleted("/a".into())]),
            vec![WatchEvent::NodeDeleted("/a".into())]
        );
        assert!(fire("/a", WatchKind::Data, &[Change::Created("/a".into())]).is_empty());
    }

    #[test]
    fn exists_watch_fires_on_create() {
        assert_eq!(
            fire("/a", WatchKind::Exists, &[Change::Created("/a".into())]),
            vec![WatchEvent::NodeCreated("/a".into())]
        );
    }

    #[test]
    fn children_watch_fires_on_direct_children_only() {
        assert_eq!(
            fire("/p", WatchKind::Children, &[Change::Created("/p/c".into())]),
            vec![WatchEvent::NodeChildrenChanged("/p".into())]
        );
        assert!(
            fire(
                "/p",
                WatchKind::Children,
                &[Change::Created("/p/c/grandchild".into())]
            )
            .is_empty(),
            "grandchild changes must not fire a children watch"
        );
        assert!(
            fire(
                "/p",
                WatchKind::Children,
                &[Change::DataChanged("/p/c".into())]
            )
            .is_empty(),
            "child data changes must not fire a children watch"
        );
    }

    #[test]
    fn watches_are_one_shot() {
        let mut r = WatchRegistry::default();
        let w = r.register("/a", WatchKind::Data);
        r.dispatch(&[Change::DataChanged("/a".into())]);
        r.dispatch(&[Change::DataChanged("/a".into())]);
        assert_eq!(w.drain().len(), 1, "a watch fires at most once");
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn unrelated_paths_do_not_fire() {
        assert!(fire("/a", WatchKind::Data, &[Change::DataChanged("/b".into())]).is_empty());
        assert_eq!(
            fire("/a", WatchKind::Data, &[Change::DataChanged("/b".into())]),
            vec![]
        );
    }

    #[test]
    fn dropped_watcher_does_not_poison_dispatch() {
        let mut r = WatchRegistry::default();
        let w = r.register("/a", WatchKind::Data);
        drop(w);
        r.dispatch(&[Change::DataChanged("/a".into())]);
        assert_eq!(r.pending_len(), 0);
    }
}
