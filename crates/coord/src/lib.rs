//! A ZooKeeper-like coordination service — the substrate Storm (and hence
//! the reproduced paper's framework) relies on for mutable configuration.
//!
//! Paper §2.2: *"Storm uses ZooKeeper as a coordination service to maintain
//! its own mutable configuration (such as scheduling solution), naming, and
//! distributed synchronization among machines. All configurations stored in
//! ZooKeeper are organized in a tree structure. Nimbus provides interfaces
//! to fetch or update Storm's mutable configurations."*
//!
//! This crate implements the subset of ZooKeeper semantics that Storm's
//! control plane exercises, faithfully enough that the Nimbus substitute
//! (`dss-nimbus`) can be written against it exactly as Storm is written
//! against ZooKeeper:
//!
//! * a hierarchical **znode tree** with per-node byte payloads and
//!   [`Stat`] metadata (create/modify zxids, data version, child count);
//! * **conditional updates**: `set_data` / `delete` take an expected
//!   version and fail with [`CoordError::BadVersion`] on mismatch, giving
//!   the optimistic concurrency Storm uses for assignment updates;
//! * **create modes**: persistent, ephemeral, and their `-Sequential`
//!   variants (monotonic suffix counters per parent);
//! * **sessions with expiry**: ephemerals are owned by a session and are
//!   deleted (firing watches) when the session times out — this is how
//!   worker heartbeat liveness is modelled, mirroring §2.1's *"The master
//!   monitors heartbeat signals from all worker processes periodically"*;
//! * **one-shot watches** on data, existence, and children, delivered over
//!   crossbeam channels in the order the triggering writes committed;
//! * **multi** (atomic transaction) so a scheduling solution and its
//!   metadata commit together or not at all.
//!
//! Time is logical: the embedding (simulator or tests) drives expiry via
//! [`CoordService::advance_to`], keeping the whole stack deterministic.
//!
//! ```
//! use dss_coord::{CoordService, CreateMode};
//!
//! let svc = CoordService::new(Default::default());
//! let session = svc.connect();
//! session.create("/storm", b"", CreateMode::Persistent).unwrap();
//! session.create("/storm/assignments", b"", CreateMode::Persistent).unwrap();
//! let stat = session
//!     .create("/storm/assignments/wordcount", b"v0", CreateMode::Persistent)
//!     .unwrap();
//! // Optimistic concurrency: the expected version must match.
//! session.set_data("/storm/assignments/wordcount", b"v1", Some(stat.version)).unwrap();
//! assert_eq!(session.get_data("/storm/assignments/wordcount").unwrap().0, b"v1");
//! ```

pub mod error;
pub mod path;
pub mod recipes;
pub mod service;
pub mod stat;
pub mod storm;
pub mod tree;
pub mod watch;

pub use error::CoordError;
pub use path::{parse_path, validate_path};
pub use recipes::{ElectionState, LeaderElection};
pub use service::{CoordConfig, CoordService, Session, SessionId};
pub use stat::Stat;
pub use storm::StormPaths;
pub use tree::{CreateMode, ZnodeTree};
pub use watch::{WatchEvent, WatchKind, Watcher};
