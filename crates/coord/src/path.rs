//! Znode path validation and manipulation (ZooKeeper path rules).

use crate::error::CoordError;

/// Validate a znode path and return its components.
///
/// Rules (the subset of ZooKeeper's that matter here): the path must be
/// absolute (`/`-prefixed); the root is `"/"`; components must be non-empty
/// and must not be `.` or `..`; no trailing slash except for the root
/// itself; no embedded NUL.
pub fn parse_path(path: &str) -> Result<Vec<&str>, CoordError> {
    validate_path(path)?;
    if path == "/" {
        return Ok(Vec::new());
    }
    Ok(path[1..].split('/').collect())
}

/// Validate a znode path without splitting it.
pub fn validate_path(path: &str) -> Result<(), CoordError> {
    let invalid = || CoordError::InvalidPath(path.to_string());
    if !path.starts_with('/') || path.contains('\0') {
        return Err(invalid());
    }
    if path == "/" {
        return Ok(());
    }
    if path.ends_with('/') {
        return Err(invalid());
    }
    for comp in path[1..].split('/') {
        if comp.is_empty() || comp == "." || comp == ".." {
            return Err(invalid());
        }
    }
    Ok(())
}

/// Parent path of a validated non-root path (`/a/b` -> `/a`, `/a` -> `/`).
pub fn parent_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) => "/",
        Some(i) => &path[..i],
        None => "/",
    }
}

/// Final component of a validated non-root path (`/a/b` -> `b`).
pub fn basename_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(i) => &path[i + 1..],
        None => path,
    }
}

/// Join a parent path and a child component.
pub fn join(parent: &str, child: &str) -> String {
    if parent == "/" {
        format!("/{child}")
    } else {
        format!("{parent}/{child}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_valid_and_empty() {
        assert!(parse_path("/").unwrap().is_empty());
    }

    #[test]
    fn nested_path_splits_into_components() {
        assert_eq!(
            parse_path("/storm/assignments/wc").unwrap(),
            vec!["storm", "assignments", "wc"]
        );
    }

    #[test]
    fn rejects_relative_empty_and_dot_components() {
        for bad in ["", "a/b", "/a//b", "/a/", "/a/./b", "/a/../b", "/\0"] {
            assert!(validate_path(bad).is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn parent_and_basename_roundtrip() {
        assert_eq!(parent_of("/a/b/c"), "/a/b");
        assert_eq!(parent_of("/a"), "/");
        assert_eq!(basename_of("/a/b/c"), "c");
        assert_eq!(join("/", "a"), "/a");
        assert_eq!(join("/a", "b"), "/a/b");
        assert_eq!(join(parent_of("/a/b"), basename_of("/a/b")), "/a/b");
    }
}
