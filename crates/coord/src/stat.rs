//! Per-znode metadata, mirroring ZooKeeper's `Stat`.

use crate::service::SessionId;

/// Metadata attached to every znode.
///
/// `zxid`s are global, monotonically increasing write-transaction ids — the
/// total order coordination clients reason about. `version` counts data
/// writes to this node only, and is what conditional `set_data`/`delete`
/// check against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// zxid of the transaction that created the node.
    pub czxid: u64,
    /// zxid of the transaction that last modified the node's data.
    pub mzxid: u64,
    /// Logical time at creation (the embedding's clock, in milliseconds).
    pub ctime_ms: u64,
    /// Logical time of the last data modification.
    pub mtime_ms: u64,
    /// Number of data writes since creation.
    pub version: u64,
    /// Number of child-list changes since creation.
    pub cversion: u64,
    /// Owning session if the node is ephemeral.
    pub ephemeral_owner: Option<SessionId>,
    /// Length of the payload in bytes.
    pub data_length: usize,
    /// Number of direct children.
    pub num_children: usize,
}

impl Stat {
    /// Stat of a freshly created node.
    pub(crate) fn created(zxid: u64, now_ms: u64, owner: Option<SessionId>, len: usize) -> Self {
        Stat {
            czxid: zxid,
            mzxid: zxid,
            ctime_ms: now_ms,
            mtime_ms: now_ms,
            version: 0,
            cversion: 0,
            ephemeral_owner: owner,
            data_length: len,
            num_children: 0,
        }
    }

    /// True if the node is ephemeral (owned by a live session).
    pub fn is_ephemeral(&self) -> bool {
        self.ephemeral_owner.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn created_stat_has_zero_versions_and_matching_zxids() {
        let s = Stat::created(7, 100, None, 3);
        assert_eq!(s.czxid, 7);
        assert_eq!(s.mzxid, 7);
        assert_eq!(s.version, 0);
        assert_eq!(s.cversion, 0);
        assert_eq!(s.data_length, 3);
        assert!(!s.is_ephemeral());
    }

    #[test]
    fn ephemeral_owner_marks_node_ephemeral() {
        let s = Stat::created(1, 0, Some(SessionId(42)), 0);
        assert!(s.is_ephemeral());
        assert_eq!(s.ephemeral_owner, Some(SessionId(42)));
    }
}
