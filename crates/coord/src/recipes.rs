//! Coordination recipes: leader election (Nimbus HA).
//!
//! Storm runs multiple Nimbus instances and elects a leader through
//! ZooKeeper so the master itself is not a single point of failure. The
//! standard recipe, reproduced here: each candidate creates an
//! ephemeral-sequential znode under an election parent; the candidate
//! owning the *lowest* sequence number is the leader; every other
//! candidate watches its immediate predecessor (not the leader — that
//! would stampede the whole herd on every change) and re-checks when the
//! predecessor disappears.

use crate::error::CoordError;
use crate::path::{basename_of, join};
use crate::service::Session;
use crate::tree::CreateMode;
use crate::watch::Watcher;

/// A participant in a leader election.
///
/// The candidate's znode lives exactly as long as its session: a crashed
/// candidate (session expiry) silently leaves the election, promoting its
/// successor.
#[derive(Debug)]
pub struct LeaderElection {
    session: Session,
    parent: String,
    /// This candidate's ephemeral-sequential znode path.
    me: String,
}

/// The outcome of an election check.
#[derive(Debug)]
pub enum ElectionState {
    /// This candidate owns the lowest sequence number.
    Leader,
    /// Not the leader; the watcher fires when the watched predecessor
    /// changes (deletion being the interesting case), after which the
    /// candidate must call [`LeaderElection::check`] again.
    Following {
        /// Name of the predecessor being watched.
        predecessor: String,
        /// One-shot watch on the predecessor.
        watch: Watcher,
    },
}

impl LeaderElection {
    /// Join the election under `parent` (created if missing), identified
    /// by `ident` (stored as the znode payload, e.g. a host:port).
    pub fn join(session: Session, parent: &str, ident: &[u8]) -> Result<Self, CoordError> {
        session.ensure_path(parent, b"")?;
        let (me, _) = session.create_seq(
            &join(parent, "candidate-"),
            ident,
            CreateMode::EphemeralSequential,
        )?;
        Ok(LeaderElection {
            session,
            parent: parent.to_string(),
            me,
        })
    }

    /// This candidate's znode path.
    pub fn candidate_path(&self) -> &str {
        &self.me
    }

    /// The session this candidacy lives on (heartbeat it to stay in the
    /// race; drop it un-closed to simulate a crashed candidate).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Determine the current state: leader, or following a predecessor.
    pub fn check(&self) -> Result<ElectionState, CoordError> {
        let mut children = self.session.get_children(&self.parent)?;
        children.sort();
        let my_name = basename_of(&self.me);
        let my_pos = children
            .iter()
            .position(|c| c == my_name)
            .ok_or_else(|| CoordError::NoNode(self.me.clone()))?;
        if my_pos == 0 {
            return Ok(ElectionState::Leader);
        }
        // Watch only the immediate predecessor: when it dies, either we
        // lead or we watch the next-lowest survivor.
        let predecessor = children[my_pos - 1].clone();
        let pred_path = join(&self.parent, &predecessor);
        let (stat, watch) = self.session.exists_watch(&pred_path)?;
        if stat.is_none() {
            // Predecessor vanished between listing and watching; re-check.
            return self.check();
        }
        Ok(ElectionState::Following { predecessor, watch })
    }

    /// Read the current leader's identification payload, if any candidate
    /// is registered.
    pub fn leader_ident(&self) -> Result<Option<Vec<u8>>, CoordError> {
        let mut children = self.session.get_children(&self.parent)?;
        children.sort();
        match children.first() {
            Some(first) => {
                let (data, _) = self.session.get_data(&join(&self.parent, first))?;
                Ok(Some(data))
            }
            None => Ok(None),
        }
    }

    /// Withdraw from the election (deletes the candidate znode).
    pub fn resign(&self) -> Result<(), CoordError> {
        match self.session.delete(&self.me, None) {
            Ok(()) | Err(CoordError::NoNode(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{CoordConfig, CoordService};

    fn svc(timeout_ms: u64) -> CoordService {
        CoordService::new(CoordConfig {
            session_timeout_ms: timeout_ms,
        })
    }

    #[test]
    fn first_candidate_leads() {
        let svc = svc(30_000);
        let e = LeaderElection::join(svc.connect(), "/election", b"nimbus-a").unwrap();
        assert!(matches!(e.check().unwrap(), ElectionState::Leader));
        assert_eq!(e.leader_ident().unwrap().unwrap(), b"nimbus-a");
    }

    #[test]
    fn followers_watch_their_immediate_predecessor() {
        let svc = svc(30_000);
        let a = LeaderElection::join(svc.connect(), "/election", b"a").unwrap();
        let b = LeaderElection::join(svc.connect(), "/election", b"b").unwrap();
        let c = LeaderElection::join(svc.connect(), "/election", b"c").unwrap();
        assert!(matches!(a.check().unwrap(), ElectionState::Leader));
        match b.check().unwrap() {
            ElectionState::Following { predecessor, .. } => {
                assert_eq!(join("/election", &predecessor), a.candidate_path());
            }
            other => panic!("b should follow a, got {other:?}"),
        }
        match c.check().unwrap() {
            ElectionState::Following { predecessor, .. } => {
                assert_eq!(join("/election", &predecessor), b.candidate_path());
            }
            other => panic!("c should follow b, got {other:?}"),
        }
    }

    #[test]
    fn resignation_promotes_the_successor() {
        let svc = svc(30_000);
        let a = LeaderElection::join(svc.connect(), "/election", b"a").unwrap();
        let b = LeaderElection::join(svc.connect(), "/election", b"b").unwrap();
        let ElectionState::Following { watch, .. } = b.check().unwrap() else {
            panic!("b must start as follower");
        };
        a.resign().unwrap();
        // The predecessor watch fires...
        assert_eq!(watch.drain().len(), 1);
        // ...and re-checking shows b leading.
        assert!(matches!(b.check().unwrap(), ElectionState::Leader));
        assert_eq!(b.leader_ident().unwrap().unwrap(), b"b");
    }

    #[test]
    fn leader_crash_promotes_via_session_expiry() {
        let svc = svc(1_000);
        let leader_session = svc.connect();
        let _a = LeaderElection::join(leader_session, "/election", b"a").unwrap();
        let b_session = svc.connect();
        let b = LeaderElection::join(b_session.clone(), "/election", b"b").unwrap();
        assert!(matches!(
            b.check().unwrap(),
            ElectionState::Following { .. }
        ));

        // The leader's process dies: no heartbeats; b stays alive.
        for t in [400, 800, 1_200] {
            svc.advance_to(t);
            b_session.heartbeat().unwrap();
        }
        assert!(matches!(b.check().unwrap(), ElectionState::Leader));
    }

    #[test]
    fn middle_crash_does_not_disturb_the_leader() {
        let svc = svc(1_000);
        let a = LeaderElection::join(svc.connect(), "/election", b"a").unwrap();
        let b = LeaderElection::join(svc.connect(), "/election", b"b").unwrap();
        let c = LeaderElection::join(svc.connect(), "/election", b"c").unwrap();
        b.resign().unwrap();
        assert!(matches!(a.check().unwrap(), ElectionState::Leader));
        // c now follows a directly.
        match c.check().unwrap() {
            ElectionState::Following { predecessor, .. } => {
                assert_eq!(join("/election", &predecessor), a.candidate_path());
            }
            other => panic!("c should follow a, got {other:?}"),
        }
    }

    #[test]
    fn leader_expiry_in_a_pool_promotes_exactly_one_successor() {
        // N candidates; the leader's process dies (session silently
        // expires); after expiry EXACTLY one survivor sees itself leading
        // and it is the lowest surviving sequence number.
        let svc = svc(1_000);
        let leader = LeaderElection::join(svc.connect(), "/election", b"m0").unwrap();
        let pool: Vec<LeaderElection> = (1..5)
            .map(|i| {
                LeaderElection::join(svc.connect(), "/election", format!("m{i}").as_bytes())
                    .unwrap()
            })
            .collect();
        assert!(matches!(leader.check().unwrap(), ElectionState::Leader));
        drop(leader); // crash: the session is never closed

        for t in [400, 800, 1_200] {
            svc.advance_to(t);
            for e in &pool {
                e.session().heartbeat().unwrap();
            }
        }
        let leaders: Vec<usize> = pool
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.check().unwrap(), ElectionState::Leader))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(leaders, vec![0], "only the lowest survivor leads");
        assert_eq!(pool[0].leader_ident().unwrap().unwrap(), b"m1");
    }

    #[test]
    fn mid_pool_expiry_rewires_the_watch_chain_without_stampede() {
        // When a middle candidate dies, only its immediate successor's
        // watch fires; the successor then watches the next survivor UP
        // the chain, never the leader directly (no thundering herd).
        let svc = svc(1_000);
        let a = LeaderElection::join(svc.connect(), "/election", b"a").unwrap();
        let b = LeaderElection::join(svc.connect(), "/election", b"b").unwrap();
        let c = LeaderElection::join(svc.connect(), "/election", b"c").unwrap();
        let ElectionState::Following { watch: c_watch, .. } = c.check().unwrap() else {
            panic!("c must follow");
        };
        drop(b); // b crashes

        for t in [400, 800, 1_200] {
            svc.advance_to(t);
            a.session().heartbeat().unwrap();
            c.session().heartbeat().unwrap();
        }
        // c's predecessor watch fired; re-checking, c now follows a.
        assert_eq!(c_watch.drain().len(), 1);
        match c.check().unwrap() {
            ElectionState::Following { predecessor, .. } => {
                assert_eq!(join("/election", &predecessor), a.candidate_path());
            }
            other => panic!("c should follow a, got {other:?}"),
        }
        // The leader never noticed: it holds no watch and still leads.
        assert!(matches!(a.check().unwrap(), ElectionState::Leader));
    }

    #[test]
    fn rejoining_after_resign_gets_a_fresh_sequence() {
        let svc = svc(30_000);
        let session = svc.connect();
        let e1 = LeaderElection::join(session.clone(), "/election", b"x").unwrap();
        let p1 = e1.candidate_path().to_string();
        e1.resign().unwrap();
        let e2 = LeaderElection::join(session, "/election", b"x").unwrap();
        assert!(
            e2.candidate_path() > p1.as_str(),
            "sequence numbers never reuse"
        );
        assert!(matches!(e2.check().unwrap(), ElectionState::Leader));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// For any pool size and any crash pattern leaving at least
            /// one survivor: after expiry, exactly one survivor leads,
            /// and it is the earliest-joined survivor (election order is
            /// sequential-znode order).
            #[test]
            fn earliest_surviving_candidate_leads(
                n in 2usize..8,
                mask in prop::collection::vec(any::<bool>(), 8),
            ) {
                let dead: Vec<bool> = mask.into_iter().take(n).collect();
                prop_assume!(dead.iter().any(|&d| !d));
                let svc = svc(1_000);
                let mut pool = Vec::new();
                for i in 0..n {
                    let ident = format!("m{i}");
                    pool.push(Some(
                        LeaderElection::join(svc.connect(), "/election", ident.as_bytes())
                            .unwrap(),
                    ));
                }
                // Crash the masked candidates: sessions dropped un-closed.
                for (slot, &d) in pool.iter_mut().zip(&dead) {
                    if d {
                        *slot = None;
                    }
                }
                for t in [400, 800, 1_200] {
                    svc.advance_to(t);
                    for e in pool.iter().flatten() {
                        e.session().heartbeat().unwrap();
                    }
                }
                let leaders: Vec<usize> = pool
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
                    .filter(|(_, e)| matches!(e.check().unwrap(), ElectionState::Leader))
                    .map(|(i, _)| i)
                    .collect();
                let first_survivor = dead.iter().position(|&d| !d).unwrap();
                prop_assert_eq!(leaders, vec![first_survivor]);
                let any = pool.iter().flatten().next().unwrap();
                prop_assert_eq!(
                    any.leader_ident().unwrap().unwrap(),
                    format!("m{first_survivor}").into_bytes()
                );
            }
        }
    }
}
