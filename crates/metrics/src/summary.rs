//! Paper-versus-measured experiment records.
//!
//! `EXPERIMENTS.md` is generated from these records: each figure run
//! produces one or more [`ExperimentRecord`]s plus the [`ShapeCheck`]s the
//! reproduction asserts (who wins, by roughly what factor).

use serde::{Deserialize, Serialize};

/// One paper-vs-measured data point.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ExperimentRecord {
    /// Figure or table identifier, e.g. `"fig6a"`.
    pub experiment: String,
    /// What is measured, e.g. `"stable avg tuple time, default (ms)"`.
    pub quantity: String,
    /// The value the paper reports, if it reports one.
    pub paper: Option<f64>,
    /// The value this reproduction measured.
    pub measured: f64,
}

impl ExperimentRecord {
    /// Convenience constructor.
    pub fn new(
        experiment: impl Into<String>,
        quantity: impl Into<String>,
        paper: Option<f64>,
        measured: f64,
    ) -> Self {
        Self {
            experiment: experiment.into(),
            quantity: quantity.into(),
            paper,
            measured,
        }
    }

    /// Markdown table row (`| experiment | quantity | paper | measured |`).
    pub fn markdown_row(&self) -> String {
        let paper = self
            .paper
            .map_or_else(|| "—".to_string(), |p| format!("{p:.3}"));
        format!(
            "| {} | {} | {} | {:.3} |",
            self.experiment, self.quantity, paper, self.measured
        )
    }
}

/// A qualitative claim the reproduction checks (e.g. "actor-critic beats
/// default by ≥ 20%"). Collected per figure and summarized at the end of a
/// reproduction run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ShapeCheck {
    /// Figure the claim belongs to.
    pub experiment: String,
    /// Human-readable statement of the claim.
    pub claim: String,
    /// Whether the measured data satisfies it.
    pub passed: bool,
}

impl ShapeCheck {
    /// Records the outcome of a claim.
    pub fn new(experiment: impl Into<String>, claim: impl Into<String>, passed: bool) -> Self {
        Self {
            experiment: experiment.into(),
            claim: claim.into(),
            passed,
        }
    }

    /// Markdown table row.
    pub fn markdown_row(&self) -> String {
        format!(
            "| {} | {} | {} |",
            self.experiment,
            self.claim,
            if self.passed { "PASS" } else { "FAIL" }
        )
    }
}

/// Renders records and checks as the Markdown fragment EXPERIMENTS.md embeds.
pub fn markdown_report(records: &[ExperimentRecord], checks: &[ShapeCheck]) -> String {
    let mut out = String::new();
    out.push_str("| experiment | quantity | paper | measured |\n|---|---|---|---|\n");
    for r in records {
        out.push_str(&r.markdown_row());
        out.push('\n');
    }
    if !checks.is_empty() {
        out.push_str("\n| experiment | shape claim | result |\n|---|---|---|\n");
        for c in checks {
            out.push_str(&c.markdown_row());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_row_formats() {
        let r = ExperimentRecord::new("fig6a", "default (ms)", Some(1.96), 2.01);
        assert_eq!(r.markdown_row(), "| fig6a | default (ms) | 1.960 | 2.010 |");
        let r2 = ExperimentRecord::new("fig7", "final reward", None, 0.62);
        assert!(r2.markdown_row().contains("| — |"));
    }

    #[test]
    fn report_contains_all_rows() {
        let recs = vec![
            ExperimentRecord::new("fig6a", "x", Some(1.0), 1.1),
            ExperimentRecord::new("fig6b", "y", None, 2.2),
        ];
        let checks = vec![ShapeCheck::new("fig6a", "ac < default", true)];
        let md = markdown_report(&recs, &checks);
        assert!(md.contains("fig6a"));
        assert!(md.contains("fig6b"));
        assert!(md.contains("PASS"));
    }
}
