//! Timestamped sample series with resampling and windowed aggregation.

use std::fmt;

/// A series of `(time, value)` samples ordered by time.
///
/// Times are in arbitrary units (the simulator uses seconds); values are
/// typically milliseconds of average tuple processing time or rewards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series from parallel `times`/`values` vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths or times are not
    /// non-decreasing.
    pub fn from_parts(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "times must be non-decreasing"
        );
        Self { times, values }
    }

    /// Creates a series from values sampled at a fixed interval starting at
    /// `start`.
    pub fn from_sampled(start: f64, interval: f64, values: Vec<f64>) -> Self {
        let times = (0..values.len())
            .map(|i| start + interval * i as f64)
            .collect();
        Self { times, values }
    }

    /// Appends a sample. Times must be non-decreasing.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the last recorded time.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "push out of order: {t} < {last}");
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Returns the last sample, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        match (self.times.last(), self.values.last()) {
            (Some(&t), Some(&v)) => Some((t, v)),
            _ => None,
        }
    }

    /// Mean of the values within the half-open time window `[from, to)`.
    ///
    /// Returns `None` when the window contains no samples.
    pub fn window_mean(&self, from: f64, to: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in self.iter() {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Mean of the final `n` values (or all values if fewer exist).
    ///
    /// The paper reports "stable" latencies as the level a curve settles at;
    /// the figure harness uses the tail mean for that purpose.
    pub fn tail_mean(&self, n: usize) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let k = n.min(self.values.len());
        let tail = &self.values[self.values.len() - k..];
        Some(tail.iter().sum::<f64>() / k as f64)
    }

    /// Resamples onto a fixed grid `[start, end]` with step `dt` using
    /// zero-order hold (last observed value carries forward).
    ///
    /// Grid points before the first sample take the first sample's value.
    /// Returns an empty series when the input is empty or the grid is empty.
    pub fn resample(&self, start: f64, end: f64, dt: f64) -> TimeSeries {
        assert!(dt > 0.0, "resample step must be positive");
        let mut out = TimeSeries::new();
        if self.is_empty() || end < start {
            return out;
        }
        let mut idx = 0usize;
        let mut t = start;
        // Tolerance keeps the final grid point when `end` is an exact
        // multiple of `dt` despite floating-point accumulation.
        while t <= end + dt * 1e-9 {
            while idx + 1 < self.times.len() && self.times[idx + 1] <= t {
                idx += 1;
            }
            let v = if self.times[idx] > t && idx == 0 {
                self.values[0]
            } else {
                self.values[idx]
            };
            out.push(t, v);
            t += dt;
        }
        out
    }

    /// Applies `f` to every value, keeping timestamps.
    pub fn map_values(&self, mut f: impl FnMut(f64) -> f64) -> TimeSeries {
        TimeSeries {
            times: self.times.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Minimum value, ignoring NaNs. `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// Maximum value, ignoring NaNs. `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "t,value")?;
        for (t, v) in self.iter() {
            writeln!(f, "{t},{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut s = TimeSeries::new();
        s.push(0.0, 1.0);
        s.push(1.0, 2.0);
        s.push(1.0, 3.0); // equal times allowed
        assert_eq!(s.len(), 3);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(0.0, 1.0), (1.0, 2.0), (1.0, 3.0)]);
        assert_eq!(s.last(), Some((1.0, 3.0)));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn push_out_of_order_panics() {
        let mut s = TimeSeries::new();
        s.push(1.0, 1.0);
        s.push(0.5, 2.0);
    }

    #[test]
    fn window_mean_half_open() {
        let s = TimeSeries::from_sampled(0.0, 1.0, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.window_mean(1.0, 3.0), Some(2.5));
        assert_eq!(s.window_mean(10.0, 20.0), None);
        // `to` is exclusive.
        assert_eq!(s.window_mean(0.0, 1.0), Some(1.0));
    }

    #[test]
    fn tail_mean_clamps() {
        let s = TimeSeries::from_sampled(0.0, 1.0, vec![1.0, 3.0]);
        assert_eq!(s.tail_mean(1), Some(3.0));
        assert_eq!(s.tail_mean(10), Some(2.0));
        assert_eq!(TimeSeries::new().tail_mean(3), None);
    }

    #[test]
    fn resample_zero_order_hold() {
        let s = TimeSeries::from_parts(vec![0.0, 2.0, 5.0], vec![10.0, 20.0, 30.0]);
        let r = s.resample(0.0, 6.0, 1.0);
        assert_eq!(r.values(), &[10.0, 10.0, 20.0, 20.0, 20.0, 30.0, 30.0]);
        assert_eq!(r.times().len(), 7);
    }

    #[test]
    fn resample_before_first_sample_uses_first_value() {
        let s = TimeSeries::from_parts(vec![5.0], vec![42.0]);
        let r = s.resample(0.0, 10.0, 5.0);
        assert_eq!(r.values(), &[42.0, 42.0, 42.0]);
    }

    #[test]
    fn min_max_ignore_nan() {
        let s = TimeSeries::from_sampled(0.0, 1.0, vec![3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(TimeSeries::new().min(), None);
    }

    #[test]
    fn from_parts_validates() {
        let s = TimeSeries::from_parts(vec![0.0, 1.0], vec![5.0, 6.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_parts_rejects_unordered() {
        let _ = TimeSeries::from_parts(vec![1.0, 0.0], vec![5.0, 6.0]);
    }

    #[test]
    fn map_values_keeps_times() {
        let s = TimeSeries::from_sampled(0.0, 2.0, vec![1.0, 2.0]);
        let m = s.map_values(|v| v * 10.0);
        assert_eq!(m.times(), s.times());
        assert_eq!(m.values(), &[10.0, 20.0]);
    }
}
