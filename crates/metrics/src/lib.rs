//! Measurement post-processing utilities shared across the workspace.
//!
//! The paper reports two kinds of series:
//!
//! * **deployment curves** — average end-to-end tuple processing time sampled
//!   over wall-clock minutes after a scheduling solution is deployed
//!   (Figures 6, 8, 10 and 12), and
//! * **reward curves** — per-epoch rewards during online learning, min-max
//!   normalized and smoothed with a forward-backward filter
//!   (Figures 7, 9 and 11; the paper cites Gustafsson's forward-backward
//!   filtering, i.e. `filtfilt`).
//!
//! This crate provides the [`TimeSeries`] container, the
//! [`filter::forward_backward`] smoother, [`normalize`] helpers, summary
//! statistics, and a dependency-free CSV writer used by the figure binaries.

pub mod csv;
pub mod filter;
pub mod normalize;
pub mod series;
pub mod stats;
pub mod summary;

pub use csv::CsvWriter;
pub use series::TimeSeries;
pub use stats::Summary;
pub use summary::{ExperimentRecord, ShapeCheck};
