//! Summary statistics over samples.

/// Descriptive statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
    /// 99th percentile (linear interpolation).
    pub p99: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / n;
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Some(Self {
            count: values.len(),
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        })
    }

    /// Half-width of an approximate 95% confidence interval on the mean
    /// (normal approximation; fine for the sample counts used here).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

/// Linear-interpolation percentile of an already-sorted slice.
///
/// `p` is in percent (0–100).
///
/// # Panics
/// Panics when the slice is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Relative improvement of `new` over `baseline`, as a fraction.
///
/// The paper quotes e.g. "reduces average tuple processing time by 33.5%":
/// `improvement(baseline, new) = (baseline - new) / baseline`.
pub fn improvement(baseline: f64, new: f64) -> f64 {
    assert!(baseline.abs() > f64::EPSILON, "baseline must be non-zero");
    (baseline - new) / baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p99, 5.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 50.0) - 5.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    fn improvement_matches_paper_convention() {
        // Default 1.96 ms -> actor-critic 1.33 ms is a 32% reduction.
        let imp = improvement(1.96, 1.33);
        assert!((imp - 0.3214).abs() < 1e-3, "{imp}");
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let many = Summary::of(&[1.0, 2.0, 3.0].repeat(100)).unwrap();
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }
}
