//! Forward-backward (zero-phase) smoothing.
//!
//! The paper smooths reward curves with "the well-known forward-backward
//! filtering algorithm" (Gustafsson, IEEE TSP 1996 — the algorithm behind
//! MATLAB/SciPy `filtfilt`). We implement `filtfilt` for a single-pole IIR
//! low-pass filter: running it forward and then backward doubles the
//! attenuation and cancels the phase shift, so smoothed curves stay aligned
//! with the raw epochs — exactly the property needed when overlaying two
//! learning curves as in Figures 7, 9 and 11.

/// Single exponential (one-pole IIR) smoothing pass:
/// `y[n] = alpha * x[n] + (1 - alpha) * y[n-1]`, with `y[0] = x[0]`.
///
/// `alpha` must lie in `(0, 1]`; `alpha = 1` is the identity.
pub fn ewma(x: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let mut y = Vec::with_capacity(x.len());
    let mut state = match x.first() {
        Some(&v) => v,
        None => return y,
    };
    for &v in x {
        state = alpha * v + (1.0 - alpha) * state;
        y.push(state);
    }
    y
}

/// Zero-phase forward-backward filtering with a one-pole low-pass filter.
///
/// Applies [`ewma`] forward, reverses, applies it again, and reverses back.
/// Initializing each pass at the first sample of that pass approximates
/// Gustafsson's initial-state matching well enough for plotting purposes and
/// keeps the ends from swinging toward zero.
pub fn forward_backward(x: &[f64], alpha: f64) -> Vec<f64> {
    let mut y = ewma(x, alpha);
    y.reverse();
    let mut z = ewma(&y, alpha);
    z.reverse();
    z
}

/// Chooses a smoothing coefficient so a curve of `n` points keeps roughly
/// `n / window` independent wiggles — the heuristic the figure binaries use
/// to mimic the paper's visibly smoothed reward curves.
pub fn alpha_for_window(window: usize) -> f64 {
    assert!(window > 0, "window must be positive");
    2.0 / (window as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_identity_at_alpha_one() {
        let x = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(ewma(&x, 1.0), x.to_vec());
    }

    #[test]
    fn ewma_empty() {
        assert!(ewma(&[], 0.5).is_empty());
        assert!(forward_backward(&[], 0.5).is_empty());
    }

    #[test]
    fn ewma_converges_to_constant() {
        let x = vec![5.0; 100];
        let y = ewma(&x, 0.3);
        assert!(y.iter().all(|&v| (v - 5.0).abs() < 1e-12));
    }

    #[test]
    fn forward_backward_preserves_constant() {
        let x = vec![2.5; 50];
        let y = forward_backward(&x, 0.2);
        assert!(y.iter().all(|&v| (v - 2.5).abs() < 1e-12));
    }

    #[test]
    fn forward_backward_reduces_variance() {
        // Alternating signal: smoothing must reduce the spread around the mean.
        let x: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y = forward_backward(&x, 0.2);
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&y) < 0.1 * var(&x), "var {} vs {}", var(&y), var(&x));
    }

    #[test]
    fn forward_backward_stays_within_input_range() {
        // Each EWMA output is a convex combination of inputs, so both passes
        // keep values inside [min, max] of the raw signal.
        let x = [0.0, 1.0, 4.0, 9.0, 4.0, 1.0, 0.0];
        let y = forward_backward(&x, 0.4);
        for &v in &y {
            assert!((0.0..=9.0).contains(&v), "{y:?}");
        }
    }

    #[test]
    fn forward_backward_tracks_trend() {
        // A smoothed ramp must stay monotone and close to the ramp.
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y = forward_backward(&x, 0.3);
        assert!(y.windows(2).all(|w| w[1] >= w[0]));
        // Interior points stay within a couple of samples of the ramp.
        for i in 10..90 {
            assert!((y[i] - x[i]).abs() < 5.0, "i={i} y={} x={}", y[i], x[i]);
        }
    }

    #[test]
    fn alpha_for_window_bounds() {
        assert!((alpha_for_window(1) - 1.0).abs() < 1e-12);
        let a = alpha_for_window(99);
        assert!(a > 0.0 && a < 0.03);
    }
}
