//! Minimal CSV writing (no external csv crate; fields here never need
//! quoting beyond commas in free-text labels, which are escaped).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::series::TimeSeries;

/// Buffered CSV builder.
///
/// ```
/// use dss_metrics::CsvWriter;
/// let mut w = CsvWriter::new(vec!["t".into(), "value".into()]);
/// w.row(&[0.0, 1.5]);
/// assert_eq!(w.to_string(), "t,value\n0,1.5\n");
/// ```
#[derive(Debug, Clone)]
pub struct CsvWriter {
    header: Vec<String>,
    buf: String,
    rows: usize,
}

impl CsvWriter {
    /// Starts a CSV document with the given column names.
    pub fn new(header: Vec<String>) -> Self {
        let mut buf = String::new();
        for (i, h) in header.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push_str(&escape(h));
        }
        buf.push('\n');
        Self {
            header,
            buf,
            rows: 0,
        }
    }

    /// Appends a numeric row.
    ///
    /// # Panics
    /// Panics when the arity does not match the header.
    pub fn row(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.header.len(), "row arity mismatch");
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push('\n');
        self.rows += 1;
    }

    /// Appends a row of free-text fields (escaped).
    ///
    /// # Panics
    /// Panics when the arity does not match the header.
    pub fn text_row(&mut self, values: &[&str]) {
        assert_eq!(values.len(), self.header.len(), "row arity mismatch");
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&escape(v));
        }
        self.buf.push('\n');
        self.rows += 1;
    }

    /// Number of data rows written so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Writes the document to `path`, creating parent directories.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, &self.buf)
    }
}

impl std::fmt::Display for CsvWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.buf)
    }
}

/// Writes several labelled series sharing a time axis as one CSV
/// (`t,label1,label2,...`), resampling nothing: series must already share
/// their time grid (the figure runners guarantee this).
///
/// # Panics
/// Panics when series lengths or time axes disagree.
pub fn write_series_table(
    path: impl AsRef<Path>,
    labelled: &[(&str, &TimeSeries)],
) -> io::Result<()> {
    assert!(!labelled.is_empty(), "no series to write");
    let n = labelled[0].1.len();
    for (label, s) in labelled {
        assert_eq!(s.len(), n, "series `{label}` length mismatch");
        for (a, b) in s.times().iter().zip(labelled[0].1.times()) {
            assert!((a - b).abs() < 1e-9, "series `{label}` time-grid mismatch");
        }
    }
    let mut header = vec!["t".to_string()];
    header.extend(labelled.iter().map(|(l, _)| l.to_string()));
    let mut w = CsvWriter::new(header);
    for i in 0..n {
        let mut row = Vec::with_capacity(labelled.len() + 1);
        row.push(labelled[0].1.times()[i]);
        row.extend(labelled.iter().map(|(_, s)| s.values()[i]));
        w.row(&row);
    }
    w.save(path)
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut w = CsvWriter::new(vec!["a".into(), "b".into()]);
        w.row(&[1.0, 2.5]);
        w.row(&[-3.0, 0.0]);
        assert_eq!(w.to_string(), "a,b\n1,2.5\n-3,0\n");
        assert_eq!(w.rows(), 2);
    }

    #[test]
    fn escapes_commas_and_quotes() {
        let mut w = CsvWriter::new(vec!["label".into()]);
        w.text_row(&["hello, \"world\""]);
        assert_eq!(w.to_string(), "label\n\"hello, \"\"world\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut w = CsvWriter::new(vec!["a".into()]);
        w.row(&[1.0, 2.0]);
    }

    #[test]
    fn series_table_roundtrip() {
        let dir = std::env::temp_dir().join("dss_metrics_csv_test");
        let path = dir.join("out.csv");
        let s1 = TimeSeries::from_sampled(0.0, 1.0, vec![1.0, 2.0]);
        let s2 = TimeSeries::from_sampled(0.0, 1.0, vec![3.0, 4.0]);
        write_series_table(&path, &[("a", &s1), ("b", &s2)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "t,a,b\n0,1,3\n1,2,4\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
