//! Reward normalization helpers.
//!
//! The paper normalizes rewards for plotting with
//! `(r - r_min) / (r_max - r_min)` where `r_min`/`r_max` are the extreme
//! rewards observed during online learning.

/// Min-max normalization onto `[0, 1]`.
///
/// A constant (or empty) input maps to all `0.5`, matching the convention
/// that a flat curve sits mid-axis rather than dividing by zero.
pub fn min_max(values: &[f64]) -> Vec<f64> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_nan() {
            continue;
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() || (hi - lo).abs() < f64::EPSILON {
        return vec![0.5; values.len()];
    }
    let span = hi - lo;
    values.iter().map(|&v| (v - lo) / span).collect()
}

/// Standard (z-score) normalization: zero mean, unit variance.
///
/// A constant input maps to all zeros.
pub fn z_score(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd < f64::EPSILON {
        return vec![0.0; values.len()];
    }
    values.iter().map(|&v| (v - mean) / sd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_spans_unit_interval() {
        let y = min_max(&[2.0, 4.0, 6.0]);
        assert_eq!(y, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn min_max_constant_input() {
        assert_eq!(min_max(&[3.0, 3.0]), vec![0.5, 0.5]);
        assert!(min_max(&[]).is_empty());
    }

    #[test]
    fn min_max_ignores_nan_for_bounds() {
        let y = min_max(&[0.0, f64::NAN, 10.0]);
        assert_eq!(y[0], 0.0);
        assert_eq!(y[2], 1.0);
        assert!(y[1].is_nan());
    }

    #[test]
    fn z_score_moments() {
        let y = z_score(&[1.0, 2.0, 3.0, 4.0]);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / y.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_score_constant() {
        assert_eq!(z_score(&[7.0; 5]), vec![0.0; 5]);
    }
}
