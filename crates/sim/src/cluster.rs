//! Cluster and network models — the physical layer.
//!
//! The paper's testbed: 10 worker machines (plus Nimbus), each an Intel
//! Xeon quad-core with 10 slots, on a 1 Gbps network. Transfer cost is
//! three-tier, as in the paper and its baseline \[52\]: threads in the same
//! worker process exchange tuples essentially for free, separate processes
//! on one machine pay an IPC cost, and machine-to-machine transfers pay
//! serialization + network latency + a bandwidth share.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// One worker machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Physical cores shared by the executors on this machine.
    pub cores: usize,
    /// Worker-process slots (Storm: configured per machine; the paper
    /// uses 10).
    pub slots: usize,
}

impl Default for MachineSpec {
    fn default() -> Self {
        // The paper's worker nodes: quad-core Xeon, 10 slots.
        Self {
            cores: 4,
            slots: 10,
        }
    }
}

/// Tuple transfer cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// Thread-to-thread transfer within one worker process (ms). Storm:
    /// an in-memory queue hop.
    pub intra_process_ms: f64,
    /// Process-to-process on one machine (ms). Unused for tuple traffic
    /// under the paper's one-worker-per-machine rule but kept in the model
    /// (control messages, ablations with multiple workers).
    pub inter_process_ms: f64,
    /// Base machine-to-machine latency (ms): serialization + NIC + switch.
    pub inter_machine_ms: f64,
    /// Added machine-to-machine cost per KiB of tuple payload (ms). 1 Gbps
    /// ≈ 0.008 ms/KiB; real Storm pays more due to framing and kryo.
    pub per_kib_ms: f64,
    /// Congestion sensitivity: multiplies the machine-to-machine cost by
    /// `1 + congestion * (nic_utilization)` where utilization is the
    /// machine's cross-traffic share of `nic_kib_per_s`.
    pub congestion: f64,
    /// NIC capacity per machine in KiB/s.
    pub nic_kib_per_s: f64,
    /// Sender-side CPU time (ms) to serialize one tuple leaving the
    /// machine. In Storm this — kryo serialization plus the transfer
    /// thread — dominates the cost of inter-machine traffic and is why
    /// traffic-aware schedulers (\[52\]) win; local deliveries skip it.
    pub serialize_ms: f64,
    /// Receiver-side CPU time (ms) to deserialize one tuple that arrived
    /// from another machine.
    pub deserialize_ms: f64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        Self {
            intra_process_ms: 0.02,
            inter_process_ms: 0.12,
            inter_machine_ms: 0.6,
            per_kib_ms: 0.03,
            congestion: 2.0,
            nic_kib_per_s: 120_000.0, // ~1 Gbps in KiB/s
            serialize_ms: 0.35,
            deserialize_ms: 0.35,
        }
    }
}

/// The whole cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Worker machines (the paper's `M`). Nimbus is not modeled — it only
    /// hosts the scheduler, which is this workspace itself.
    pub machines: Vec<MachineSpec>,
    /// Transfer cost model.
    pub network: NetworkParams,
}

impl ClusterSpec {
    /// A homogeneous cluster of `n` default machines (the paper's setup is
    /// `ClusterSpec::homogeneous(10)`).
    pub fn homogeneous(n: usize) -> Self {
        Self {
            machines: vec![MachineSpec::default(); n],
            network: NetworkParams::default(),
        }
    }

    /// A fleet-scale homogeneous cluster: `n` machines of `cores` cores
    /// and `slots` slots each (the registry's fleet scenarios use
    /// `ClusterSpec::fleet(128, 8, 12)`).
    pub fn fleet(n: usize, cores: usize, slots: usize) -> Self {
        Self {
            machines: vec![MachineSpec { cores, slots }; n],
            network: NetworkParams::default(),
        }
    }

    /// Number of machines (the paper's `M`).
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Partitions the machines into at most `max_groups` groups for
    /// two-level action mapping: machines are first grouped into maximal
    /// contiguous runs of equal core count (core classes), then each run
    /// is split into near-equal contiguous chunks so the total group count
    /// approaches `max_groups` (never below one group per core class,
    /// never above one group per machine). With `max_groups ≥ M` every
    /// machine gets its own group, which makes hierarchical mapping
    /// coincide with the flat enumeration.
    ///
    /// # Panics
    /// Panics when `max_groups == 0` or the cluster is empty.
    pub fn machine_groups(&self, max_groups: usize) -> Vec<Vec<usize>> {
        assert!(max_groups > 0, "need at least one group");
        assert!(!self.machines.is_empty(), "empty cluster");
        // Maximal contiguous runs of equal core count.
        let mut runs: Vec<(usize, usize)> = Vec::new(); // (start, len)
        for (i, m) in self.machines.iter().enumerate() {
            match runs.last_mut() {
                Some((start, len)) if self.machines[*start].cores == m.cores => *len += 1,
                _ => runs.push((i, 1)),
            }
        }
        // Split the budget over runs proportionally to their length.
        let total = self.machines.len();
        let budget = max_groups.min(total).max(runs.len());
        let mut groups = Vec::new();
        let mut spent = 0usize;
        let mut covered = 0usize;
        for (ri, &(start, len)) in runs.iter().enumerate() {
            covered += len;
            // Largest-remainder style split keeps Σ chunks == budget.
            let remaining_runs = runs.len() - ri - 1;
            let chunks = ((budget * covered) / total)
                .saturating_sub(spent)
                .clamp(1, len)
                .min(budget - spent - remaining_runs);
            spent += chunks;
            let (base, rem) = (len / chunks, len % chunks);
            let mut at = start;
            for c in 0..chunks {
                let clen = base + usize::from(c < rem);
                groups.push((at..at + clen).collect());
                at += clen;
            }
        }
        groups
    }

    /// Validates the specification.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.machines.is_empty() {
            return Err(SimError::InvalidCluster("no machines".into()));
        }
        for (i, m) in self.machines.iter().enumerate() {
            if m.cores == 0 {
                return Err(SimError::InvalidCluster(format!("machine {i} has 0 cores")));
            }
            if m.slots == 0 {
                return Err(SimError::InvalidCluster(format!("machine {i} has 0 slots")));
            }
        }
        let n = &self.network;
        if n.intra_process_ms < 0.0
            || n.inter_process_ms < 0.0
            || n.inter_machine_ms < 0.0
            || n.per_kib_ms < 0.0
            || n.congestion < 0.0
            || n.nic_kib_per_s <= 0.0
            || n.serialize_ms < 0.0
            || n.deserialize_ms < 0.0
        {
            return Err(SimError::InvalidCluster(
                "negative network parameter".into(),
            ));
        }
        Ok(())
    }

    /// Base transfer delay in ms for a tuple of `bytes` from machine `a` to
    /// machine `b` (no congestion term; the engine and analytic model add
    /// congestion from their own traffic accounting).
    ///
    /// Same machine means same worker process under the paper's merged
    /// mapping, so it costs the intra-process hop.
    pub fn base_transfer_ms(&self, a: usize, b: usize, bytes: usize) -> f64 {
        if a == b {
            self.network.intra_process_ms
        } else {
            self.network.inter_machine_ms + self.network.per_kib_ms * (bytes as f64 / 1024.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_matches_paper_defaults() {
        let c = ClusterSpec::homogeneous(10);
        assert_eq!(c.n_machines(), 10);
        assert_eq!(c.machines[0].cores, 4);
        assert_eq!(c.machines[0].slots, 10);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn transfer_cost_tiers() {
        let c = ClusterSpec::homogeneous(2);
        let local = c.base_transfer_ms(0, 0, 1024);
        let remote = c.base_transfer_ms(0, 1, 1024);
        assert!(local < remote);
        assert!((remote - (0.6 + 0.03)).abs() < 1e-12);
    }

    #[test]
    fn payload_size_matters_remotely_only() {
        let c = ClusterSpec::homogeneous(2);
        assert_eq!(
            c.base_transfer_ms(0, 0, 10),
            c.base_transfer_ms(0, 0, 10_000)
        );
        assert!(c.base_transfer_ms(0, 1, 10_240) > c.base_transfer_ms(0, 1, 1024));
    }

    #[test]
    fn fleet_builds_large_uniform_clusters() {
        let c = ClusterSpec::fleet(128, 8, 12);
        assert_eq!(c.n_machines(), 128);
        assert!(c.machines.iter().all(|m| m.cores == 8 && m.slots == 12));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn machine_groups_partition_and_respect_core_classes() {
        // Heterogeneous: 4 quad-core then 4 octa-core machines.
        let mut c = ClusterSpec::homogeneous(8);
        for m in &mut c.machines[4..] {
            m.cores = 8;
        }
        let groups = c.machine_groups(4);
        assert_eq!(groups.len(), 4);
        // Partition of 0..8, order-preserving.
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        assert_eq!(flat, (0..8).collect::<Vec<_>>());
        // No group mixes core classes.
        for g in &groups {
            let cores = c.machines[g[0]].cores;
            assert!(g.iter().all(|&j| c.machines[j].cores == cores));
        }
        // max_groups >= M degenerates to singletons.
        let singles = c.machine_groups(100);
        assert_eq!(singles.len(), 8);
        assert!(singles.iter().all(|g| g.len() == 1));
        // Budget below the class count is raised to one group per class.
        let coarse = c.machine_groups(1);
        assert_eq!(coarse.len(), 2);
        assert_eq!(coarse[0], vec![0, 1, 2, 3]);
        assert_eq!(coarse[1], vec![4, 5, 6, 7]);
        // Homogeneous fleet splits near-equally.
        let fleet = ClusterSpec::fleet(128, 8, 12);
        let g16 = fleet.machine_groups(16);
        assert_eq!(g16.len(), 16);
        assert!(g16.iter().all(|g| g.len() == 8));
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut c = ClusterSpec::homogeneous(1);
        c.machines[0].cores = 0;
        assert!(c.validate().is_err());
        let empty = ClusterSpec {
            machines: vec![],
            network: NetworkParams::default(),
        };
        assert!(empty.validate().is_err());
        let mut bad_net = ClusterSpec::homogeneous(1);
        bad_net.network.per_kib_ms = -1.0;
        assert!(bad_net.validate().is_err());
    }
}
