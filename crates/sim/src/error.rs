//! Simulator error types.

use std::fmt;

/// Errors raised when building or driving a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The topology failed validation (cycle, dangling edge, zero
    /// parallelism, ...).
    InvalidTopology(String),
    /// An assignment is inconsistent with the topology/cluster it is
    /// deployed on.
    InvalidAssignment(String),
    /// A workload referenced a component that is not a spout.
    InvalidWorkload(String),
    /// A cluster specification is unusable (no machines, zero cores, ...).
    InvalidCluster(String),
    /// An engine state snapshot failed to decode or does not match the
    /// topology/cluster of the engine it is being restored into.
    InvalidSnapshot(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            SimError::InvalidAssignment(msg) => write!(f, "invalid assignment: {msg}"),
            SimError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            SimError::InvalidCluster(msg) => write!(f, "invalid cluster: {msg}"),
            SimError::InvalidSnapshot(msg) => write!(f, "invalid snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_context() {
        let e = SimError::InvalidTopology("cycle detected".into());
        assert_eq!(e.to_string(), "invalid topology: cycle detected");
    }
}
