//! Scheduling solutions: the `N -> M` executor-to-machine mapping.
//!
//! Following the paper (§3.2), the two Storm-level mappings
//! (threads -> processes, processes -> machines) are merged into one —
//! every machine runs at most one worker process per topology, and all of a
//! topology's threads on that machine live in it.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use crate::error::SimError;
use crate::topology::Topology;

/// A scheduling solution: `machine_of[e]` is the machine executor `e` runs
/// on. Equivalent to the paper's binary matrix `X = <x_ij>` with
/// `x_ij = 1 ⇔ machine_of[i] == j`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    machine_of: Vec<usize>,
    n_machines: usize,
}

impl Assignment {
    /// Builds from an explicit mapping.
    ///
    /// # Errors
    /// Rejects out-of-range machine indices or an empty mapping.
    pub fn new(machine_of: Vec<usize>, n_machines: usize) -> Result<Self, SimError> {
        if machine_of.is_empty() {
            return Err(SimError::InvalidAssignment("no executors".into()));
        }
        if n_machines == 0 {
            return Err(SimError::InvalidAssignment("no machines".into()));
        }
        if let Some(&bad) = machine_of.iter().find(|&&m| m >= n_machines) {
            return Err(SimError::InvalidAssignment(format!(
                "machine index {bad} out of range (M = {n_machines})"
            )));
        }
        Ok(Self {
            machine_of,
            n_machines,
        })
    }

    /// Storm's default scheduling: executors dealt to machines round-robin,
    /// yielding the near-even spread the paper calls "the current practice".
    pub fn round_robin(topology: &Topology, cluster: &ClusterSpec) -> Self {
        let m = cluster.n_machines();
        let machine_of = (0..topology.n_executors()).map(|e| e % m).collect();
        Self {
            machine_of,
            n_machines: m,
        }
    }

    /// Uniformly random assignment — the paper's offline-training data
    /// collector ("deploys a randomly-generated scheduling solution").
    pub fn random(topology: &Topology, cluster: &ClusterSpec, rng: &mut StdRng) -> Self {
        let m = cluster.n_machines();
        let machine_of = (0..topology.n_executors())
            .map(|_| rng.random_range(0..m))
            .collect();
        Self {
            machine_of,
            n_machines: m,
        }
    }

    /// Number of executors `N`.
    pub fn n_executors(&self) -> usize {
        self.machine_of.len()
    }

    /// Number of machines `M`.
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    /// Machine of executor `e`.
    pub fn machine_of(&self, executor: usize) -> usize {
        self.machine_of[executor]
    }

    /// The raw mapping.
    pub fn as_slice(&self) -> &[usize] {
        &self.machine_of
    }

    /// Returns a copy with executor `e` moved to `machine` (the DQN method's
    /// single-thread action).
    ///
    /// # Panics
    /// Panics on out-of-range arguments.
    pub fn with_move(&self, executor: usize, machine: usize) -> Self {
        assert!(executor < self.n_executors(), "executor out of range");
        assert!(machine < self.n_machines, "machine out of range");
        let mut next = self.clone();
        next.machine_of[executor] = machine;
        next
    }

    /// Executors whose machine differs from `other` — the set the custom
    /// scheduler actually re-assigns (the paper's minimal-impact deployment
    /// frees and re-adds only these).
    ///
    /// # Panics
    /// Panics when executor counts differ.
    pub fn diff(&self, other: &Assignment) -> Vec<usize> {
        assert_eq!(
            self.n_executors(),
            other.n_executors(),
            "diff requires same executor count"
        );
        (0..self.n_executors())
            .filter(|&e| self.machine_of[e] != other.machine_of[e])
            .collect()
    }

    /// Executors per machine.
    pub fn machine_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.n_machines];
        for &m in &self.machine_of {
            loads[m] += 1;
        }
        loads
    }

    /// Number of machines hosting at least one executor.
    pub fn machines_used(&self) -> usize {
        self.machine_loads().iter().filter(|&&l| l > 0).count()
    }

    /// Flattened one-hot encoding `x_ij` (row-major `N × M`) — the `X` part
    /// of the paper's state `s = (X, w)` and of its action encoding.
    pub fn to_onehot(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n_executors() * self.n_machines];
        for (e, &m) in self.machine_of.iter().enumerate() {
            x[e * self.n_machines + m] = 1.0;
        }
        x
    }

    /// Decodes a one-hot (or argmax-able) encoding back to an assignment.
    ///
    /// # Errors
    /// Rejects size mismatches.
    pub fn from_onehot(x: &[f64], n: usize, m: usize) -> Result<Self, SimError> {
        if x.len() != n * m {
            return Err(SimError::InvalidAssignment(format!(
                "one-hot size {} != {n} x {m}",
                x.len()
            )));
        }
        let machine_of = (0..n)
            .map(|e| {
                let row = &x[e * m..(e + 1) * m];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in one-hot"))
                    .map(|(j, _)| j)
                    .expect("non-empty row")
            })
            .collect();
        Self::new(machine_of, m)
    }

    /// Checks compatibility with a topology/cluster pair.
    pub fn validate_for(&self, topology: &Topology, cluster: &ClusterSpec) -> Result<(), SimError> {
        if self.n_executors() != topology.n_executors() {
            return Err(SimError::InvalidAssignment(format!(
                "assignment has {} executors, topology has {}",
                self.n_executors(),
                topology.n_executors()
            )));
        }
        if self.n_machines != cluster.n_machines() {
            return Err(SimError::InvalidAssignment(format!(
                "assignment spans {} machines, cluster has {}",
                self.n_machines,
                cluster.n_machines()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Grouping, TopologyBuilder};
    use rand::SeedableRng;

    fn small_topology() -> Topology {
        let mut b = TopologyBuilder::new("t");
        let s = b.spout("s", 2, 0.05);
        let x = b.bolt("x", 3, 0.2);
        b.edge(s, x, Grouping::Shuffle, 1.0, 100);
        b.build().unwrap()
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let t = small_topology();
        let c = ClusterSpec::homogeneous(2);
        let a = Assignment::round_robin(&t, &c);
        assert_eq!(a.as_slice(), &[0, 1, 0, 1, 0]);
        assert_eq!(a.machine_loads(), vec![3, 2]);
        assert_eq!(a.machines_used(), 2);
    }

    #[test]
    fn onehot_round_trip() {
        let t = small_topology();
        let c = ClusterSpec::homogeneous(3);
        let mut rng = StdRng::seed_from_u64(1);
        let a = Assignment::random(&t, &c, &mut rng);
        let x = a.to_onehot();
        assert_eq!(x.len(), 15);
        assert_eq!(x.iter().sum::<f64>(), 5.0);
        let b = Assignment::from_onehot(&x, 5, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn diff_and_move() {
        let a = Assignment::new(vec![0, 0, 1], 2).unwrap();
        let b = a.with_move(0, 1);
        assert_eq!(a.diff(&b), vec![0]);
        assert_eq!(b.machine_of(0), 1);
        assert_eq!(a.diff(&a), Vec::<usize>::new());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Assignment::new(vec![0, 3], 2).is_err());
        assert!(Assignment::new(vec![], 2).is_err());
        assert!(Assignment::new(vec![0], 0).is_err());
    }

    #[test]
    fn validate_for_checks_sizes() {
        let t = small_topology();
        let c = ClusterSpec::homogeneous(2);
        let a = Assignment::round_robin(&t, &c);
        assert!(a.validate_for(&t, &c).is_ok());
        let wrong_cluster = ClusterSpec::homogeneous(5);
        assert!(a.validate_for(&t, &wrong_cluster).is_err());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let t = small_topology();
        let c = ClusterSpec::homogeneous(4);
        let a = Assignment::random(&t, &c, &mut StdRng::seed_from_u64(9));
        let b = Assignment::random(&t, &c, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
