//! Application topologies: directed graphs of spouts and bolts.
//!
//! Mirrors Storm's logical layer (§2.1/2.2 of the paper): a *component* is
//! a spout (data source) or bolt (processing unit); each runs as
//! `parallelism` executor threads; directed edges carry tuples between
//! components under a grouping policy.

use crate::error::SimError;
use crate::rng::Zipf;

/// Spout (data source) or bolt (processing unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// Emits root tuples into the topology.
    Spout,
    /// Consumes tuples, optionally emitting derived tuples downstream.
    Bolt,
}

/// How tuples are distributed among a downstream component's executors
/// (§2.1: "Typical grouping policies include ...").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Grouping {
    /// Random (uniform) choice of destination executor.
    Shuffle,
    /// Key-based: destination = hash(key) mod parallelism. Keys are drawn
    /// from a Zipf distribution over `n_keys` ranks with exponent `skew`,
    /// so popular keys concentrate load on a few executors.
    Fields {
        /// Size of the key universe.
        n_keys: usize,
        /// Zipf exponent of key popularity (0 = uniform).
        skew: f64,
    },
    /// One-to-all: every downstream executor receives a copy.
    All,
    /// All-to-one: everything goes to executor 0 of the destination.
    Global,
}

/// A component declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSpec {
    /// Human-readable name (unique within a topology).
    pub name: String,
    /// Spout or bolt.
    pub kind: ComponentKind,
    /// Number of executor threads.
    pub parallelism: usize,
    /// Mean tuple service time in milliseconds.
    pub service_mean_ms: f64,
    /// Coefficient of variation of the service time (0 = deterministic).
    pub service_cv: f64,
}

/// A directed edge between components.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSpec {
    /// Source component index.
    pub from: usize,
    /// Destination component index.
    pub to: usize,
    /// Tuple routing policy.
    pub grouping: Grouping,
    /// Average tuples emitted downstream per tuple processed (may be
    /// fractional — e.g. a filter with 10% hit rate has selectivity 0.1 —
    /// or greater than one — e.g. a sentence splitter).
    pub selectivity: f64,
    /// Bytes per transferred tuple (drives network transfer cost).
    pub tuple_bytes: usize,
}

/// A validated application topology.
///
/// Executors are numbered globally `0..n_executors()`, component by
/// component in declaration order — executor `e` belongs to
/// [`Topology::component_of`]`(e)`.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    components: Vec<ComponentSpec>,
    edges: Vec<EdgeSpec>,
    executor_component: Vec<usize>,
    component_executor_base: Vec<usize>,
    out_edges: Vec<Vec<usize>>,
    /// Per fields-grouped edge: destination-executor routing shares
    /// (precomputed from the Zipf key popularity so the discrete-event
    /// engine and the analytic model route identically).
    fields_shares: Vec<Option<Vec<f64>>>,
}

impl Topology {
    /// Topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Component declarations.
    pub fn components(&self) -> &[ComponentSpec] {
        &self.components
    }

    /// Edge declarations.
    pub fn edges(&self) -> &[EdgeSpec] {
        &self.edges
    }

    /// Total number of executors (the paper's `N`).
    pub fn n_executors(&self) -> usize {
        self.executor_component.len()
    }

    /// The component executor `e` belongs to.
    pub fn component_of(&self, executor: usize) -> usize {
        self.executor_component[executor]
    }

    /// Global index of the first executor of component `c`.
    pub fn executor_base(&self, component: usize) -> usize {
        self.component_executor_base[component]
    }

    /// Global executor indices of component `c`.
    pub fn executors_of(&self, component: usize) -> std::ops::Range<usize> {
        let base = self.component_executor_base[component];
        base..base + self.components[component].parallelism
    }

    /// Indices (into [`Topology::edges`]) of edges leaving component `c`.
    pub fn out_edges_of(&self, component: usize) -> &[usize] {
        &self.out_edges[component]
    }

    /// Spout component indices.
    pub fn spouts(&self) -> Vec<usize> {
        self.components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == ComponentKind::Spout)
            .map(|(i, _)| i)
            .collect()
    }

    /// For a fields-grouped edge, the per-destination-executor routing
    /// shares (summing to 1); `None` for other groupings.
    pub fn fields_shares(&self, edge: usize) -> Option<&[f64]> {
        self.fields_shares[edge].as_deref()
    }

    /// Expected routing share of destination executor `d` (local index
    /// within the destination component) for edge `e`. Shuffle: `1/P`;
    /// fields: precomputed Zipf share; all: `1`; global: `1` for executor 0.
    pub fn routing_share(&self, edge: usize, dst_local: usize) -> f64 {
        let e = &self.edges[edge];
        let p = self.components[e.to].parallelism;
        debug_assert!(dst_local < p);
        match e.grouping {
            Grouping::Shuffle => 1.0 / p as f64,
            Grouping::Fields { .. } => self.fields_shares[edge]
                .as_ref()
                .map(|s| s[dst_local])
                .unwrap_or(0.0),
            Grouping::All => 1.0,
            Grouping::Global => {
                if dst_local == 0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Components in topological order (spouts first).
    pub fn topo_order(&self) -> Vec<usize> {
        let n = self.components.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(c) = stack.pop() {
            order.push(c);
            for &ei in &self.out_edges[c] {
                let to = self.edges[ei].to;
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    stack.push(to);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "validated topology must be acyclic");
        order
    }

    /// Per-component expected input rate (tuples/s) given per-spout
    /// *component* emission rates, propagated through edge selectivities.
    /// `spout_rates` maps spout component index -> rate.
    pub fn component_rates(&self, spout_rates: &[(usize, f64)]) -> Vec<f64> {
        let mut rates = vec![0.0; self.components.len()];
        for &(c, r) in spout_rates {
            rates[c] += r;
        }
        for c in self.topo_order() {
            let out = rates[c];
            for &ei in &self.out_edges[c] {
                let e = &self.edges[ei];
                // `All` grouping replicates the tuple to every destination
                // executor, multiplying the downstream tuple count.
                let fanout = match e.grouping {
                    Grouping::All => self.components[e.to].parallelism as f64,
                    _ => 1.0,
                };
                rates[e.to] += out * e.selectivity * fanout;
            }
        }
        rates
    }
}

/// Builder for [`Topology`].
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    name: String,
    components: Vec<ComponentSpec>,
    edges: Vec<EdgeSpec>,
}

impl TopologyBuilder {
    /// Starts a topology with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            components: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a spout; returns its component index.
    pub fn spout(
        &mut self,
        name: impl Into<String>,
        parallelism: usize,
        service_mean_ms: f64,
    ) -> usize {
        self.components.push(ComponentSpec {
            name: name.into(),
            kind: ComponentKind::Spout,
            parallelism,
            service_mean_ms,
            service_cv: 0.5,
        });
        self.components.len() - 1
    }

    /// Adds a bolt; returns its component index.
    pub fn bolt(
        &mut self,
        name: impl Into<String>,
        parallelism: usize,
        service_mean_ms: f64,
    ) -> usize {
        self.components.push(ComponentSpec {
            name: name.into(),
            kind: ComponentKind::Bolt,
            parallelism,
            service_mean_ms,
            service_cv: 0.5,
        });
        self.components.len() - 1
    }

    /// Overrides the service-time coefficient of variation of a component.
    pub fn service_cv(&mut self, component: usize, cv: f64) -> &mut Self {
        self.components[component].service_cv = cv;
        self
    }

    /// Connects two components.
    pub fn edge(
        &mut self,
        from: usize,
        to: usize,
        grouping: Grouping,
        selectivity: f64,
        tuple_bytes: usize,
    ) -> &mut Self {
        self.edges.push(EdgeSpec {
            from,
            to,
            grouping,
            selectivity,
            tuple_bytes,
        });
        self
    }

    /// Validates and builds the topology.
    pub fn build(self) -> Result<Topology, SimError> {
        let n = self.components.len();
        if n == 0 {
            return Err(SimError::InvalidTopology("no components".into()));
        }
        let mut names = std::collections::HashSet::new();
        for c in &self.components {
            if c.parallelism == 0 {
                return Err(SimError::InvalidTopology(format!(
                    "component `{}` has zero parallelism",
                    c.name
                )));
            }
            if c.service_mean_ms <= 0.0 {
                return Err(SimError::InvalidTopology(format!(
                    "component `{}` has non-positive service time",
                    c.name
                )));
            }
            if c.service_cv < 0.0 {
                return Err(SimError::InvalidTopology(format!(
                    "component `{}` has negative service cv",
                    c.name
                )));
            }
            if !names.insert(c.name.clone()) {
                return Err(SimError::InvalidTopology(format!(
                    "duplicate component name `{}`",
                    c.name
                )));
            }
        }
        let mut has_spout = false;
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            if e.from >= n || e.to >= n {
                return Err(SimError::InvalidTopology(format!(
                    "edge {} -> {} out of range",
                    e.from, e.to
                )));
            }
            if e.selectivity < 0.0 {
                return Err(SimError::InvalidTopology("negative selectivity".into()));
            }
            if self.components[e.to].kind == ComponentKind::Spout {
                return Err(SimError::InvalidTopology(format!(
                    "edge into spout `{}`",
                    self.components[e.to].name
                )));
            }
            if let Grouping::Fields { n_keys, skew } = e.grouping {
                if n_keys == 0 || skew < 0.0 {
                    return Err(SimError::InvalidTopology(
                        "fields grouping needs n_keys > 0 and skew >= 0".into(),
                    ));
                }
            }
            indegree[e.to] += 1;
        }
        for (i, c) in self.components.iter().enumerate() {
            match c.kind {
                ComponentKind::Spout => has_spout = true,
                ComponentKind::Bolt => {
                    if indegree[i] == 0 {
                        return Err(SimError::InvalidTopology(format!(
                            "bolt `{}` has no input edge",
                            c.name
                        )));
                    }
                }
            }
        }
        if !has_spout {
            return Err(SimError::InvalidTopology("no spout".into()));
        }

        // Cycle check (Kahn).
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ei, e) in self.edges.iter().enumerate() {
            out_edges[e.from].push(ei);
        }
        {
            let mut indeg = indegree.clone();
            let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
            let mut visited = 0usize;
            while let Some(c) = stack.pop() {
                visited += 1;
                for &ei in &out_edges[c] {
                    let to = self.edges[ei].to;
                    indeg[to] -= 1;
                    if indeg[to] == 0 {
                        stack.push(to);
                    }
                }
            }
            if visited != n {
                return Err(SimError::InvalidTopology("cycle detected".into()));
            }
        }

        // Executor numbering.
        let mut executor_component = Vec::new();
        let mut component_executor_base = Vec::with_capacity(n);
        for (ci, c) in self.components.iter().enumerate() {
            component_executor_base.push(executor_component.len());
            executor_component.extend(std::iter::repeat_n(ci, c.parallelism));
        }

        // Precompute fields-grouping routing shares.
        let fields_shares = self
            .edges
            .iter()
            .map(|e| match e.grouping {
                Grouping::Fields { n_keys, skew } => {
                    let p = self.components[e.to].parallelism;
                    let zipf = Zipf::new(n_keys, skew);
                    let mut shares = vec![0.0; p];
                    for k in 0..n_keys {
                        shares[key_to_executor(k, p)] += zipf.pmf(k);
                    }
                    Some(shares)
                }
                _ => None,
            })
            .collect();

        Ok(Topology {
            name: self.name,
            components: self.components,
            edges: self.edges,
            executor_component,
            component_executor_base,
            out_edges,
            fields_shares,
        })
    }
}

/// The deterministic key-to-executor hash used by fields grouping
/// (Fibonacci hashing of the key rank; shared by the engine and the
/// analytic model so they route identically).
pub fn key_to_executor(key: usize, parallelism: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % parallelism
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Topology {
        let mut b = TopologyBuilder::new("chain");
        let s = b.spout("spout", 2, 0.05);
        let x = b.bolt("x", 3, 0.2);
        let y = b.bolt("y", 4, 0.1);
        b.edge(s, x, Grouping::Shuffle, 1.0, 100);
        b.edge(x, y, Grouping::Shuffle, 0.5, 50);
        b.build().unwrap()
    }

    #[test]
    fn executor_numbering() {
        let t = chain();
        assert_eq!(t.n_executors(), 9);
        assert_eq!(t.component_of(0), 0);
        assert_eq!(t.component_of(1), 0);
        assert_eq!(t.component_of(2), 1);
        assert_eq!(t.component_of(8), 2);
        assert_eq!(t.executors_of(1), 2..5);
        assert_eq!(t.executor_base(2), 5);
    }

    #[test]
    fn rates_propagate_through_selectivity() {
        let t = chain();
        let rates = t.component_rates(&[(0, 100.0)]);
        assert_eq!(rates, vec![100.0, 100.0, 50.0]);
    }

    #[test]
    fn all_grouping_multiplies_rate_by_parallelism() {
        let mut b = TopologyBuilder::new("fan");
        let s = b.spout("s", 1, 0.05);
        let x = b.bolt("x", 4, 0.1);
        b.edge(s, x, Grouping::All, 1.0, 10);
        let t = b.build().unwrap();
        let rates = t.component_rates(&[(0, 10.0)]);
        assert_eq!(rates[1], 40.0);
    }

    #[test]
    fn routing_shares_sum_to_one() {
        let mut b = TopologyBuilder::new("fields");
        let s = b.spout("s", 1, 0.05);
        let x = b.bolt("x", 5, 0.1);
        b.edge(
            s,
            x,
            Grouping::Fields {
                n_keys: 1000,
                skew: 1.0,
            },
            1.0,
            10,
        );
        let t = b.build().unwrap();
        let total: f64 = (0..5).map(|d| t.routing_share(0, d)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Skewed keys mean shares are not uniform.
        let shares: Vec<f64> = (0..5).map(|d| t.routing_share(0, d)).collect();
        let spread = shares.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - shares.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(spread > 0.01, "{shares:?}");
    }

    #[test]
    fn shuffle_share_uniform() {
        let t = chain();
        assert!((t.routing_share(0, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn topo_order_respects_edges() {
        let t = chain();
        let order = t.topo_order();
        let pos = |c: usize| order.iter().position(|&x| x == c).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TopologyBuilder::new("bad");
        let s = b.spout("s", 1, 0.1);
        let x = b.bolt("x", 1, 0.1);
        let y = b.bolt("y", 1, 0.1);
        b.edge(s, x, Grouping::Shuffle, 1.0, 10);
        b.edge(x, y, Grouping::Shuffle, 1.0, 10);
        b.edge(y, x, Grouping::Shuffle, 1.0, 10);
        assert!(matches!(b.build(), Err(SimError::InvalidTopology(_))));
    }

    #[test]
    fn rejects_orphan_bolt_and_edge_into_spout() {
        let mut b = TopologyBuilder::new("bad");
        b.spout("s", 1, 0.1);
        b.bolt("x", 1, 0.1);
        assert!(b.clone().build().is_err()); // orphan bolt

        let mut b2 = TopologyBuilder::new("bad2");
        let s = b2.spout("s", 1, 0.1);
        let x = b2.bolt("x", 1, 0.1);
        b2.edge(s, x, Grouping::Shuffle, 1.0, 10);
        b2.edge(x, s, Grouping::Shuffle, 1.0, 10);
        assert!(b2.build().is_err());
    }

    #[test]
    fn rejects_zero_parallelism_and_duplicates() {
        let mut b = TopologyBuilder::new("bad");
        b.spout("s", 0, 0.1);
        assert!(b.build().is_err());

        let mut b2 = TopologyBuilder::new("bad2");
        b2.spout("s", 1, 0.1);
        b2.spout("s", 1, 0.1);
        assert!(b2.build().is_err());
    }

    #[test]
    fn global_routes_to_executor_zero() {
        let mut b = TopologyBuilder::new("g");
        let s = b.spout("s", 1, 0.05);
        let x = b.bolt("x", 3, 0.1);
        b.edge(s, x, Grouping::Global, 1.0, 10);
        let t = b.build().unwrap();
        assert_eq!(t.routing_share(0, 0), 1.0);
        assert_eq!(t.routing_share(0, 1), 0.0);
    }

    #[test]
    fn key_to_executor_stable_and_in_range() {
        for k in 0..100 {
            let e = key_to_executor(k, 7);
            assert!(e < 7);
            assert_eq!(e, key_to_executor(k, 7));
        }
    }
}
