//! Simulation configuration knobs.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the tuple-level engine's behavioural model.
///
/// Defaults are calibrated so the paper's topologies land in the paper's
/// latency range (§4.2): a freshly (re)deployed system starts high and
/// stabilizes within ~8–10 simulated minutes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master RNG seed; every stochastic stream in the engine derives from
    /// it, so runs are exactly reproducible.
    pub seed: u64,
    /// Post-(re)start service-time inflation: a just-(re)started executor
    /// serves at `(1 + warmup_amplitude · exp(−age/warmup_tau_s))` times its
    /// nominal service time (JIT warm-up, cold caches, connection setup).
    pub warmup_amplitude: f64,
    /// Warm-up decay time constant in seconds.
    pub warmup_tau_s: f64,
    /// Pause imposed on an executor that is migrated by a re-deployment
    /// (state hand-off); its queue buffers meanwhile.
    pub migration_pause_s: f64,
    /// Sliding window (seconds) for the measured average tuple processing
    /// time.
    pub latency_window_s: f64,
    /// Constant acker round-trip added to every complete latency (ms).
    pub ack_overhead_ms: f64,
    /// Cap on tuples an executor queue holds before new arrivals are
    /// dropped and replayed (fault-tolerance timeout path). Keeps overload
    /// from consuming unbounded memory.
    pub max_queue_len: usize,
    /// Measurement-protocol parameters (§3.1: "takes the average of 5
    /// consecutive measurements with a 10-second interval").
    pub measure_samples: usize,
    /// Interval between measurement samples, seconds.
    pub measure_interval_s: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0xD5D9_5EED,
            warmup_amplitude: 1.6,
            warmup_tau_s: 150.0,
            migration_pause_s: 8.0,
            latency_window_s: 30.0,
            ack_overhead_ms: 0.25,
            max_queue_len: 20_000,
            measure_samples: 5,
            measure_interval_s: 10.0,
        }
    }
}

impl SimConfig {
    /// A configuration with warm-up and migration transients disabled —
    /// useful for steady-state tests that should not wait out the ramp.
    pub fn steady_state(seed: u64) -> Self {
        Self {
            seed,
            warmup_amplitude: 0.0,
            warmup_tau_s: 1.0,
            migration_pause_s: 0.0,
            ..Self::default()
        }
    }

    /// Warm-up service multiplier for an executor (re)started `age_s` ago.
    pub fn warmup_multiplier(&self, age_s: f64) -> f64 {
        if self.warmup_amplitude == 0.0 || age_s < 0.0 {
            return 1.0;
        }
        1.0 + self.warmup_amplitude * (-age_s / self.warmup_tau_s).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_decays_to_one() {
        let c = SimConfig::default();
        let early = c.warmup_multiplier(0.0);
        let later = c.warmup_multiplier(c.warmup_tau_s * 3.0);
        assert!((early - (1.0 + c.warmup_amplitude)).abs() < 1e-12);
        assert!(later < 1.1);
        assert!(c.warmup_multiplier(1e9) - 1.0 < 1e-9);
    }

    #[test]
    fn steady_state_disables_transients() {
        let c = SimConfig::steady_state(1);
        assert_eq!(c.warmup_multiplier(0.0), 1.0);
        assert_eq!(c.migration_pause_s, 0.0);
    }
}
