//! Fast analytic steady-state evaluator.
//!
//! Estimates the stable average end-to-end tuple processing time of an
//! assignment without running the tuple-level engine, using the same
//! structural parameters (service times, selectivities, routing shares,
//! transfer tiers, CPU contention). Three stages:
//!
//! 1. **Flows** — per-executor arrival rates from the workload, propagated
//!    through edge selectivities and grouping routing shares (fields
//!    grouping uses the same precomputed Zipf key shares as the engine, so
//!    skew-induced hot executors match).
//! 2. **Delays** — per-executor sojourn from an M/G/1
//!    (Pollaczek–Khinchine) approximation with machine CPU contention
//!    inflating service times, smoothly penalized past saturation; per-edge
//!    expected transfer delay from the co-location pattern plus a NIC
//!    congestion term.
//! 3. **Composition** — tree-completion latency in reverse topological
//!    order: a component's remaining latency is its sojourn plus the
//!    slowest downstream branch (weighted by the probability the branch is
//!    taken), matching the acker semantics that a tuple finishes when its
//!    whole tree finishes.
//!
//! Optional multiplicative measurement noise makes it a drop-in stochastic
//! environment for RL training. Consistency with the tuple-level engine is
//! asserted by integration tests (`tests/sim_consistency.rs`).

use rand::rngs::StdRng;

use crate::assignment::Assignment;
use crate::cluster::ClusterSpec;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::rng::{sample_lognormal_noise, stream};
use crate::stats::RuntimeStats;
use crate::topology::{ComponentKind, Topology};
use crate::workload::Workload;

/// Utilization beyond which the P-K term is linearized (keeps the estimate
/// finite and strongly increasing instead of exploding at ρ → 1).
const RHO_CAP: f64 = 0.95;
/// Extra penalty slope per unit of over-saturation.
const OVERLOAD_SLOPE: f64 = 60.0;

/// The analytic evaluator. Create once per (topology, cluster) pair and
/// evaluate many assignments cheaply.
pub struct AnalyticModel {
    topology: Topology,
    cluster: ClusterSpec,
    config: SimConfig,
    noise_sigma: f64,
    noise_rng: StdRng,
}

impl AnalyticModel {
    /// Builds a noiseless evaluator.
    pub fn new(
        topology: Topology,
        cluster: ClusterSpec,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        cluster.validate()?;
        let noise_rng = stream(config.seed, 0xA11A);
        Ok(Self {
            topology,
            cluster,
            config,
            noise_sigma: 0.0,
            noise_rng,
        })
    }

    /// Enables multiplicative lognormal measurement noise (log-std sigma).
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        self.noise_sigma = sigma;
        self
    }

    /// The topology being modeled.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The cluster being modeled.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Estimated stable average tuple processing time (ms) for an
    /// assignment under a workload. Stochastic when noise is enabled.
    pub fn evaluate(&mut self, assignment: &Assignment, workload: &Workload) -> f64 {
        self.evaluate_with_stats(assignment, workload).0
    }

    /// Like [`AnalyticModel::evaluate`] but also returns the full stats
    /// snapshot (the model-based baseline trains its SVRs on these).
    pub fn evaluate_with_stats(
        &mut self,
        assignment: &Assignment,
        workload: &Workload,
    ) -> (f64, RuntimeStats) {
        assignment
            .validate_for(&self.topology, &self.cluster)
            .expect("assignment consistent with model");

        let n = self.topology.n_executors();
        let m = self.cluster.n_machines();

        // --- Stage 1: flows ------------------------------------------
        let comp_rates = self.topology.component_rates(workload.rates());
        let mut exec_rate = vec![0.0; n];
        for &(c, r) in workload.rates() {
            let p = self.topology.components()[c].parallelism as f64;
            for e in self.topology.executors_of(c) {
                exec_rate[e] += r / p;
            }
        }
        for (ei, edge) in self.topology.edges().iter().enumerate() {
            let flow = comp_rates[edge.from] * edge.selectivity;
            let base = self.topology.executor_base(edge.to);
            let p = self.topology.components()[edge.to].parallelism;
            for d in 0..p {
                exec_rate[base + d] += flow * self.topology.routing_share(ei, d);
            }
        }

        // --- Stage 2a: remote traffic per executor -------------------
        // Remote arrivals pay deserialization CPU; remote sends pay
        // serialization CPU at the source executor. Both depend on the
        // assignment's co-location pattern.
        let mut remote_in_rate = vec![0.0; n];
        let mut remote_out_rate = vec![0.0; n];
        for (ei, edge) in self.topology.edges().iter().enumerate() {
            let flow = comp_rates[edge.from] * edge.selectivity;
            let src_base = self.topology.executor_base(edge.from);
            let src_p = self.topology.components()[edge.from].parallelism;
            let dst_base = self.topology.executor_base(edge.to);
            let dst_p = self.topology.components()[edge.to].parallelism;
            let src_total: f64 = (0..src_p).map(|u| exec_rate[src_base + u]).sum();
            for u in 0..src_p {
                let u_share = if src_total > 0.0 {
                    exec_rate[src_base + u] / src_total
                } else {
                    1.0 / src_p as f64
                };
                let mu = assignment.machine_of(src_base + u);
                for d in 0..dst_p {
                    let share = self.topology.routing_share(ei, d);
                    if share == 0.0 {
                        continue;
                    }
                    let md = assignment.machine_of(dst_base + d);
                    if mu != md {
                        let rate = flow * u_share * share;
                        remote_out_rate[src_base + u] += rate;
                        remote_in_rate[dst_base + d] += rate;
                    }
                }
            }
        }

        // --- Stage 2b: machine contention ----------------------------
        // Effective per-tuple service includes deserialization of remote
        // inputs and serialization of remote outputs.
        let ser = self.cluster.network.serialize_ms;
        let deser = self.cluster.network.deserialize_ms;
        let mut service_eff = vec![0.0; n];
        for e in 0..n {
            let comp = &self.topology.components()[self.topology.component_of(e)];
            let rate = exec_rate[e].max(1e-12);
            service_eff[e] = comp.service_mean_ms
                + deser * (remote_in_rate[e] / rate).min(1.0)
                + ser * remote_out_rate[e] / rate;
        }
        let mut machine_cpu = vec![0.0; m];
        for e in 0..n {
            machine_cpu[assignment.machine_of(e)] += exec_rate[e] * service_eff[e] / 1000.0;
        }
        let slowdown: Vec<f64> = (0..m)
            .map(|j| {
                let cores = self.cluster.machines[j].cores as f64;
                let u = machine_cpu[j] / cores;
                // Past ~85% machine utilization the processor-sharing tail
                // blows up; the convex penalty mirrors the tuple-level
                // engine's queue explosion without going infinite.
                let base = u.max(1.0);
                // Near u = 1 the machine diverges in the tuple-level
                // engine; ramp hard past 95% and explosively past 100%.
                let penalty = if u > 0.95 {
                    30.0 * (u - 0.95) + 400.0 * (u - 1.0).max(0.0).powi(2)
                } else {
                    0.0
                };
                base + penalty
            })
            .collect();

        // --- Stage 2c: per-executor sojourn (M/G/1 P-K) --------------
        let mut sojourn = vec![0.0; n];
        for e in 0..n {
            let comp = &self.topology.components()[self.topology.component_of(e)];
            let s_eff = service_eff[e] * slowdown[assignment.machine_of(e)];
            let rho = exec_rate[e] * s_eff / 1000.0;
            let cv2 = comp.service_cv * comp.service_cv;
            sojourn[e] = if rho < RHO_CAP {
                s_eff * (1.0 + rho * (1.0 + cv2) / (2.0 * (1.0 - rho)))
            } else {
                let at_cap = 1.0 + RHO_CAP * (1.0 + cv2) / (2.0 * (1.0 - RHO_CAP));
                s_eff * (at_cap + OVERLOAD_SLOPE * (rho - RHO_CAP))
            };
        }

        // --- Stage 2c: per-edge expected transfer delay --------------
        // Cross-machine traffic for the congestion term.
        let mut cross_kib = vec![0.0; m];
        for (ei, edge) in self.topology.edges().iter().enumerate() {
            let flow = comp_rates[edge.from] * edge.selectivity;
            let src_base = self.topology.executor_base(edge.from);
            let src_p = self.topology.components()[edge.from].parallelism;
            let dst_base = self.topology.executor_base(edge.to);
            let dst_p = self.topology.components()[edge.to].parallelism;
            let src_total: f64 = (0..src_p).map(|u| exec_rate[src_base + u]).sum();
            for u in 0..src_p {
                let u_share = if src_total > 0.0 {
                    exec_rate[src_base + u] / src_total
                } else {
                    1.0 / src_p as f64
                };
                let mu = assignment.machine_of(src_base + u);
                for d in 0..dst_p {
                    let share = self.topology.routing_share(ei, d);
                    let md = assignment.machine_of(dst_base + d);
                    if mu != md {
                        cross_kib[mu] += flow * u_share * share * edge.tuple_bytes as f64 / 1024.0;
                    }
                }
            }
        }
        let congestion_mult: Vec<f64> = (0..m)
            .map(|j| {
                let util = (cross_kib[j] / self.cluster.network.nic_kib_per_s).min(3.0);
                1.0 + self.cluster.network.congestion * util
            })
            .collect();

        let mut edge_transfer = vec![0.0; self.topology.edges().len()];
        for (ei, edge) in self.topology.edges().iter().enumerate() {
            let src_base = self.topology.executor_base(edge.from);
            let src_p = self.topology.components()[edge.from].parallelism;
            let dst_base = self.topology.executor_base(edge.to);
            let dst_p = self.topology.components()[edge.to].parallelism;
            let src_total: f64 = (0..src_p).map(|u| exec_rate[src_base + u]).sum();
            let mut expected = 0.0;
            for u in 0..src_p {
                let u_share = if src_total > 0.0 {
                    exec_rate[src_base + u] / src_total
                } else {
                    1.0 / src_p as f64
                };
                let mu = assignment.machine_of(src_base + u);
                for d in 0..dst_p {
                    let share = self.topology.routing_share(ei, d);
                    if share == 0.0 {
                        continue;
                    }
                    let md = assignment.machine_of(dst_base + d);
                    let mut delay = self.cluster.base_transfer_ms(mu, md, edge.tuple_bytes);
                    if mu != md {
                        delay *= congestion_mult[mu];
                    }
                    // `All` grouping replicates to every executor: the share
                    // sums to dst_p; normalize to a per-copy average.
                    expected += u_share * share * delay;
                }
            }
            if matches!(edge.grouping, crate::topology::Grouping::All) {
                expected /= dst_p as f64;
            }
            edge_transfer[ei] = expected;
        }

        // --- Stage 3: tree-completion composition --------------------
        // Weighted per-component sojourn (hot executors dominate).
        let n_comps = self.topology.components().len();
        let mut comp_sojourn = vec![0.0; n_comps];
        for (c, slot) in comp_sojourn.iter_mut().enumerate() {
            let mut num = 0.0;
            let mut den = 0.0;
            for e in self.topology.executors_of(c) {
                num += exec_rate[e] * sojourn[e];
                den += exec_rate[e];
            }
            *slot = if den > 0.0 {
                num / den
            } else {
                self.topology.components()[c].service_mean_ms
            };
        }
        let mut remaining = vec![0.0; n_comps];
        for &c in self.topology.topo_order().iter().rev() {
            let mut downstream: f64 = 0.0;
            for &ei in self.topology.out_edges_of(c) {
                let edge = &self.topology.edges()[ei];
                let branch_prob = edge.selectivity.min(1.0);
                downstream = downstream.max(branch_prob * (edge_transfer[ei] + remaining[edge.to]));
            }
            remaining[c] = comp_sojourn[c] + downstream;
        }
        let mut total = 0.0;
        let mut total_rate = 0.0;
        for &(c, r) in workload.rates() {
            debug_assert_eq!(self.topology.components()[c].kind, ComponentKind::Spout);
            total += r * remaining[c];
            total_rate += r;
        }
        let mut latency = if total_rate > 0.0 {
            total / total_rate
        } else {
            0.0
        } + self.config.ack_overhead_ms;

        if self.noise_sigma > 0.0 {
            latency *= sample_lognormal_noise(&mut self.noise_rng, self.noise_sigma);
        }

        let stats = RuntimeStats {
            avg_latency_ms: latency,
            executor_rates: exec_rate,
            executor_sojourn_ms: sojourn,
            machine_cpu_cores: machine_cpu,
            machine_cross_kib_s: cross_kib,
            edge_transfer_ms: edge_transfer,
            completed: 0,
            failed: 0,
        };
        (latency, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Grouping, TopologyBuilder};

    fn chain() -> Topology {
        let mut b = TopologyBuilder::new("chain");
        let s = b.spout("s", 2, 0.05);
        let x = b.bolt("x", 4, 0.3);
        let y = b.bolt("y", 2, 0.1);
        b.edge(s, x, Grouping::Shuffle, 1.0, 256);
        b.edge(x, y, Grouping::Shuffle, 0.5, 128);
        b.build().unwrap()
    }

    fn model() -> AnalyticModel {
        AnalyticModel::new(
            chain(),
            ClusterSpec::homogeneous(4),
            SimConfig::steady_state(1),
        )
        .unwrap()
    }

    #[test]
    fn latency_positive_and_deterministic() {
        let mut m = model();
        let w = Workload::uniform(m.topology(), 200.0);
        let a = Assignment::round_robin(m.topology(), m.cluster());
        let l1 = m.evaluate(&a, &w);
        let l2 = m.evaluate(&a, &w);
        assert!(l1 > 0.0);
        assert_eq!(l1, l2);
    }

    #[test]
    fn higher_workload_higher_latency() {
        let mut m = model();
        let a = Assignment::round_robin(m.topology(), m.cluster());
        let low = m.evaluate(&a, &Workload::uniform(m.topology(), 100.0));
        let high = m.evaluate(&a, &Workload::uniform(m.topology(), 2000.0));
        assert!(high > low, "{high} vs {low}");
    }

    #[test]
    fn colocated_beats_scattered_at_light_load() {
        let mut m = model();
        let w = Workload::uniform(m.topology(), 100.0);
        let packed = Assignment::new(vec![0, 0, 0, 0, 1, 1, 0, 1], 4).unwrap();
        let scattered = Assignment::round_robin(m.topology(), m.cluster());
        let lp = m.evaluate(&packed, &w);
        let ls = m.evaluate(&scattered, &w);
        assert!(lp < ls, "packed {lp} vs scattered {ls}");
    }

    #[test]
    fn single_machine_overload_is_penalized() {
        // 12k tuples/s => ~4.8 cores of demand on the packed machine
        // (4 cores), while round-robin spreads ~1.2 cores per machine.
        let mut m = model();
        let w = Workload::uniform(m.topology(), 12_000.0);
        let all_one = Assignment::new(vec![0; 8], 4).unwrap();
        let spread = Assignment::round_robin(m.topology(), m.cluster());
        let packed = m.evaluate(&all_one, &w);
        let balanced = m.evaluate(&spread, &w);
        assert!(
            packed > balanced,
            "overloading one machine must hurt: {packed} vs {balanced}"
        );
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let mut m = model().with_noise(0.05);
        let w = Workload::uniform(m.topology(), 200.0);
        let a = Assignment::round_robin(m.topology(), m.cluster());
        let vals: Vec<f64> = (0..50).map(|_| m.evaluate(&a, &w)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(vals.iter().any(|&v| (v - vals[0]).abs() > 1e-12));
        for v in &vals {
            assert!((v / mean - 1.0).abs() < 0.3);
        }
    }

    #[test]
    fn stats_flows_conserve_rates() {
        let mut m = model();
        let w = Workload::uniform(m.topology(), 200.0);
        let a = Assignment::round_robin(m.topology(), m.cluster());
        let (_, stats) = m.evaluate_with_stats(&a, &w);
        // Spout executors: 100 each; x: 50 each; y: 50 each (selectivity .5).
        let topo = chain();
        let spout_sum: f64 = topo.executors_of(0).map(|e| stats.executor_rates[e]).sum();
        let x_sum: f64 = topo.executors_of(1).map(|e| stats.executor_rates[e]).sum();
        let y_sum: f64 = topo.executors_of(2).map(|e| stats.executor_rates[e]).sum();
        assert!((spout_sum - 200.0).abs() < 1e-9);
        assert!((x_sum - 200.0).abs() < 1e-9);
        assert!((y_sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fields_skew_creates_hot_executors() {
        let mut b = TopologyBuilder::new("skew");
        let s = b.spout("s", 1, 0.05);
        let x = b.bolt("x", 8, 0.2);
        b.edge(
            s,
            x,
            Grouping::Fields {
                n_keys: 500,
                skew: 1.2,
            },
            1.0,
            64,
        );
        let topo = b.build().unwrap();
        let mut m = AnalyticModel::new(
            topo,
            ClusterSpec::homogeneous(4),
            SimConfig::steady_state(2),
        )
        .unwrap();
        let w = Workload::uniform(m.topology(), 400.0);
        let a = Assignment::round_robin(m.topology(), m.cluster());
        let (_, stats) = m.evaluate_with_stats(&a, &w);
        let rates = &stats.executor_rates[1..9];
        let max = rates.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let min = rates.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(max > 1.5 * min, "skew expected: {rates:?}");
    }
}
