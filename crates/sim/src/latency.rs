//! Complete-latency measurement.
//!
//! Implements the paper's measurement protocol: a sliding-window average of
//! end-to-end tuple processing times, sampled as "the average of 5
//! consecutive measurements with a 10-second interval" after stabilization.

use std::collections::VecDeque;

/// Sliding-window recorder of `(ack time, latency ms)` samples.
#[derive(Debug, Clone)]
pub struct LatencyTracker {
    window_s: f64,
    samples: VecDeque<(f64, f64)>,
    window_sum: f64,
    total_count: u64,
    total_sum: f64,
}

impl LatencyTracker {
    /// A tracker averaging over the trailing `window_s` seconds.
    ///
    /// # Panics
    /// Panics on non-positive window.
    pub fn new(window_s: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        Self {
            window_s,
            samples: VecDeque::new(),
            window_sum: 0.0,
            total_count: 0,
            total_sum: 0.0,
        }
    }

    /// Records a completed tuple: acked at `now` (s) with end-to-end
    /// latency `latency_ms`.
    ///
    /// # Panics
    /// Panics on negative latency (a simulator bug, not a data condition).
    pub fn record(&mut self, now: f64, latency_ms: f64) {
        assert!(latency_ms >= 0.0, "negative latency {latency_ms}");
        self.samples.push_back((now, latency_ms));
        self.window_sum += latency_ms;
        self.total_count += 1;
        self.total_sum += latency_ms;
        self.evict(now);
    }

    /// Average latency over the trailing window ending at `now`; `None`
    /// when no tuple completed in the window.
    pub fn window_avg_ms(&mut self, now: f64) -> Option<f64> {
        self.evict(now);
        if self.samples.is_empty() {
            None
        } else {
            Some(self.window_sum / self.samples.len() as f64)
        }
    }

    /// Lifetime average latency.
    pub fn lifetime_avg_ms(&self) -> Option<f64> {
        (self.total_count > 0).then(|| self.total_sum / self.total_count as f64)
    }

    /// Tuples acked in the current window.
    pub fn window_count(&self) -> usize {
        self.samples.len()
    }

    /// Tuples acked over the tracker's lifetime.
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// `(samples, window_sum, total_count, total_sum)` — the accumulators
    /// are captured verbatim (not recomputed) so a restored tracker's
    /// float-summation state matches the original bit-for-bit.
    pub(crate) fn snapshot(&self) -> (Vec<(f64, f64)>, f64, u64, f64) {
        (
            self.samples.iter().copied().collect(),
            self.window_sum,
            self.total_count,
            self.total_sum,
        )
    }

    /// Rebuilds a tracker from a snapshot.
    pub(crate) fn restore(
        window_s: f64,
        samples: Vec<(f64, f64)>,
        window_sum: f64,
        total_count: u64,
        total_sum: f64,
    ) -> Self {
        Self {
            window_s,
            samples: samples.into(),
            window_sum,
            total_count,
            total_sum,
        }
    }

    fn evict(&mut self, now: f64) {
        while let Some(&(t, v)) = self.samples.front() {
            if now - t > self.window_s {
                self.window_sum -= v;
                self.samples.pop_front();
            } else {
                break;
            }
        }
        // Guard against drift from float accumulation on long runs.
        if self.samples.is_empty() {
            self.window_sum = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_average_tracks_recent_only() {
        let mut t = LatencyTracker::new(10.0);
        t.record(0.0, 100.0);
        t.record(5.0, 50.0);
        assert_eq!(t.window_avg_ms(5.0), Some(75.0));
        // At t = 12 the first sample (age 12) falls out.
        assert_eq!(t.window_avg_ms(12.0), Some(50.0));
        // At t = 20 everything is gone.
        assert_eq!(t.window_avg_ms(20.0), None);
    }

    #[test]
    fn lifetime_average_is_cumulative() {
        let mut t = LatencyTracker::new(1.0);
        t.record(0.0, 10.0);
        t.record(100.0, 20.0);
        assert_eq!(t.lifetime_avg_ms(), Some(15.0));
        assert_eq!(t.total_count(), 2);
    }

    #[test]
    fn empty_tracker() {
        let mut t = LatencyTracker::new(5.0);
        assert_eq!(t.window_avg_ms(0.0), None);
        assert_eq!(t.lifetime_avg_ms(), None);
        assert_eq!(t.window_count(), 0);
    }

    #[test]
    #[should_panic(expected = "negative latency")]
    fn rejects_negative_latency() {
        let mut t = LatencyTracker::new(5.0);
        t.record(0.0, -1.0);
    }
}
