//! A Storm-like Distributed Stream Data Processing System (DSDPS) —
//! the substrate the reproduced paper runs on.
//!
//! The paper evaluates its scheduler on an 11-node Apache Storm cluster.
//! This crate substitutes that cluster with two consistent models of the
//! same system:
//!
//! * [`engine::SimEngine`] — a **tuple-level discrete-event simulator**:
//!   spouts emit root tuples; bolts consume, process (with per-component
//!   service-time distributions, machine CPU contention, and post-deploy
//!   warm-up), and route children along topology edges under Storm's
//!   grouping policies (shuffle / fields / all / global); tuple trees are
//!   acked exactly like Storm's acker, and the *average end-to-end tuple
//!   processing time* (complete latency) is measured over sliding windows.
//!   Re-deployments pause only the moved executors (mirroring the paper's
//!   minimal-impact custom scheduler) and cause the transient latency spikes
//!   visible in the paper's Figure 12.
//!
//! * [`analytic::AnalyticModel`] — a **fast steady-state evaluator** of the
//!   same cluster (queueing delay per executor + expected transfer delay per
//!   edge + tree-completion composition). It ranks assignments consistently
//!   with the tuple-level engine at a tiny fraction of the cost, which makes
//!   the paper's 10,000-sample offline training phase and 1,500–2,000-epoch
//!   online phase tractable; figure-generating runs always use the
//!   tuple-level engine.
//!
//! The scheduling problem only interacts with this crate through
//! [`assignment::Assignment`] (the `N -> M` thread-to-machine map of the
//! paper, with all of an application's threads on one machine sharing one
//! worker process) and the measured average tuple processing time.
//!
//! # Driving either model as a training backend
//!
//! Both models plug into `dss-core`'s `Environment` seam (the abstraction
//! every training/evaluation layer is generic over). The engine's side of
//! that contract is three calls, all safe mid-run:
//!
//! * [`engine::SimEngine::deploy`] — minimal-impact re-deployment (only
//!   moved executors pause and re-warm; the first call starts the
//!   topology);
//! * [`engine::SimEngine::step_epoch`] — incremental run-to-epoch
//!   stepping: advance the event loop one decision epoch and read the
//!   sliding-window average tuple processing time;
//! * [`engine::SimEngine::set_workload`] /
//!   [`engine::SimEngine::set_rate_schedule`] — mid-run workload
//!   mutation; spout emissions re-read both within one inter-arrival gap.
//!
//! [`workload::RateSchedule`] models the offered-load evolution: the
//! paper's Figure-12 step, plus diurnal sinusoid and periodic-burst
//! shapes used by the scenario registry for training diversity. All
//! schedules are pure functions of simulated time, so determinism is
//! independent of when the multiplier is sampled.
//!
//! # Event-driven scaling: cost follows the active set, not the cluster
//!
//! Fleet-scale scenarios (hundreds of machines, thousands of executors,
//! most of them idle) must not pay per-epoch cost proportional to cluster
//! size. The engine is organised around an **event calendar** (a binary
//! heap of next-activity times, [`event::EventQueue`]) so each epoch only
//! touches executors with pending work: idle machines schedule nothing and
//! cost nothing. Spout executors whose emission rate is zero are **parked**
//! — they hold no pending event at all. A spout silenced by its
//! [`workload::RateSchedule`] (positive base rate, zero multiplier) sleeps
//! until [`workload::RateSchedule::next_change_after`] says its rate can
//! next become non-zero; a spout with a zero *base* rate parks outright and
//! is re-kicked by [`engine::SimEngine::set_workload`] /
//! [`engine::SimEngine::set_rate_schedule`], the only calls that can raise
//! its rate.
//!
//! ## The dense-oracle escape hatch
//!
//! The pre-fleet dense behaviour — a `Vec`-backed queue that rescans every
//! pending event per pop (O(pending) per event) and keeps a permanent 1 Hz
//! poll per idle spout — is preserved as a correctness oracle and bench
//! baseline. Select it per engine with
//! [`engine::SimEngine::set_dense_events`] (before the first deploy) or
//! process-wide with the `DSS_DENSE_EVENTS` env var. Both backends share
//! one `(time, seq)` event order and polls consume no randomness, so dense
//! and calendar runs produce **bit-identical latency trajectories** on
//! every registry scenario — asserted by tests and the CI fleet-smoke job,
//! and exploited by the `fleet_engine_step` bench pair that gates the
//! dense-vs-event speedup under mostly-idle load.

pub mod analytic;
pub mod assignment;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod error;
pub mod event;
pub mod latency;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod topology;
pub mod tuple;
pub mod workload;

pub use analytic::AnalyticModel;
pub use assignment::Assignment;
pub use cluster::{ClusterSpec, MachineSpec, NetworkParams};
pub use config::SimConfig;
pub use engine::SimEngine;
pub use error::SimError;
pub use stats::RuntimeStats;
pub use topology::{ComponentKind, ComponentSpec, Grouping, Topology, TopologyBuilder};
pub use workload::{RateSchedule, Workload};
