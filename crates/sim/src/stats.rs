//! Runtime statistics snapshots.
//!
//! The paper's framework deliberately collects "very limited statistics
//! data, i.e., just the average tuple processing time" for the DRL agent;
//! the *model-based baseline* it compares against needs much richer
//! per-component statistics (\[25\]). Both kinds are exposed here so each
//! scheduler can consume exactly what its paper version used.

use serde::{Deserialize, Serialize};

/// A snapshot of system runtime state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Average end-to-end tuple processing time (ms) — the only statistic
    /// the DRL agent sees (its negative is the reward).
    pub avg_latency_ms: f64,
    /// Per-executor input rate, tuples/s.
    pub executor_rates: Vec<f64>,
    /// Per-executor mean sojourn time (queueing + service), ms.
    pub executor_sojourn_ms: Vec<f64>,
    /// Per-machine CPU demand in cores (Σ rate × service).
    pub machine_cpu_cores: Vec<f64>,
    /// Per-machine outbound cross-machine traffic, KiB/s.
    pub machine_cross_kib_s: Vec<f64>,
    /// Per-edge expected transfer delay, ms.
    pub edge_transfer_ms: Vec<f64>,
    /// Tuples fully acked during the observation.
    pub completed: u64,
    /// Tuple trees dropped (overflow / timeout path).
    pub failed: u64,
}

impl RuntimeStats {
    /// Fraction of emitted trees that failed.
    pub fn failure_rate(&self) -> f64 {
        let total = self.completed + self.failed;
        if total == 0 {
            0.0
        } else {
            self.failed as f64 / total as f64
        }
    }

    /// The most loaded machine's CPU demand divided by the least loaded
    /// (∞ when some machine is idle) — a quick skew diagnostic.
    pub fn cpu_imbalance(&self) -> f64 {
        let max = self
            .machine_cpu_cores
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let min = self
            .machine_cpu_cores
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RuntimeStats {
        RuntimeStats {
            avg_latency_ms: 2.0,
            executor_rates: vec![10.0, 20.0],
            executor_sojourn_ms: vec![0.5, 0.7],
            machine_cpu_cores: vec![1.0, 2.0],
            machine_cross_kib_s: vec![100.0, 50.0],
            edge_transfer_ms: vec![0.3],
            completed: 90,
            failed: 10,
        }
    }

    #[test]
    fn failure_rate_and_imbalance() {
        let s = sample();
        assert!((s.failure_rate() - 0.1).abs() < 1e-12);
        assert!((s.cpu_imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let mut s = sample();
        s.completed = 0;
        s.failed = 0;
        assert_eq!(s.failure_rate(), 0.0);
        s.machine_cpu_cores = vec![0.0, 1.0];
        assert!(s.cpu_imbalance().is_infinite());
    }
}
