//! Bit-exact engine state snapshots — the master-recovery primitive.
//!
//! A Storm master keeps its authoritative state in ZooKeeper so a crashed
//! nimbus can be replaced without losing the topology. The simulated
//! control plane needs the same property for the *engine*: a standby
//! master that takes over mid-run must continue the discrete-event
//! trajectory exactly where the dead leader left it — same pending event
//! calendar, same RNG streams, same latency-window accumulators — or the
//! repo-wide bit-reproducibility invariant breaks the moment a failover
//! happens.
//!
//! [`SimEngine::save_state`] serializes every mutable field of the engine
//! into a little-endian, versioned byte image (floats travel as raw
//! `to_bits` words, never through text). [`SimEngine::restore_state`]
//! rebuilds that state onto a freshly constructed engine with the *same*
//! topology, cluster and config; immutable, derivable structures (the
//! topology, the per-edge Zipf tables) are not serialized. The restored
//! engine's future trajectory is bit-identical to the original's — the
//! round-trip tests below run both side by side and compare every epoch.

use crate::assignment::Assignment;
use crate::engine::SimEngine;
use crate::error::SimError;
use crate::event::{Event, EventKind, EventQueue};
use crate::latency::LatencyTracker;
use crate::tuple::TupleTracker;
use crate::workload::{RateSchedule, Workload};
use rand::rngs::StdRng;

/// Image magic: "DSS" + snapshot.
const MAGIC: &[u8; 4] = b"DSSS";
/// Image format version.
const VERSION: u32 = 1;

// ----- little-endian writer ------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
}

// ----- checked reader ------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SimError::InvalidSnapshot("truncated image".into()))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, SimError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SimError::InvalidSnapshot(format!("bad bool byte {b}"))),
        }
    }
    fn u32(&mut self) -> Result<u32, SimError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SimError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, SimError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn usize(&mut self) -> Result<usize, SimError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SimError::InvalidSnapshot("length overflows usize".into()))
    }
    /// A collection length; bounded so a corrupt image cannot force an
    /// absurd allocation before the data runs out.
    fn len(&mut self) -> Result<usize, SimError> {
        let n = self.usize()?;
        if n > self.buf.len().saturating_sub(self.at) {
            return Err(SimError::InvalidSnapshot(format!(
                "length {n} exceeds remaining image"
            )));
        }
        Ok(n)
    }
    fn done(&self) -> Result<(), SimError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(SimError::InvalidSnapshot("trailing bytes".into()))
        }
    }
}

// ----- field codecs --------------------------------------------------

fn put_rng(w: &mut Writer, rng: &StdRng) {
    for word in rng.state() {
        w.u64(word);
    }
}

fn get_rng(r: &mut Reader<'_>) -> Result<StdRng, SimError> {
    Ok(StdRng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]))
}

fn put_schedule(w: &mut Writer, s: &RateSchedule) {
    match s {
        RateSchedule::Steps { steps } => {
            w.u8(0);
            w.usize(steps.len());
            for &(t, m) in steps {
                w.f64(t);
                w.f64(m);
            }
        }
        RateSchedule::Sinusoid {
            mean,
            amplitude,
            period_s,
        } => {
            w.u8(1);
            w.f64(*mean);
            w.f64(*amplitude);
            w.f64(*period_s);
        }
        RateSchedule::Bursty {
            base,
            burst,
            period_s,
            burst_len_s,
        } => {
            w.u8(2);
            w.f64(*base);
            w.f64(*burst);
            w.f64(*period_s);
            w.f64(*burst_len_s);
        }
    }
}

fn get_schedule(r: &mut Reader<'_>) -> Result<RateSchedule, SimError> {
    match r.u8()? {
        0 => {
            let n = r.len()?;
            let mut steps = Vec::with_capacity(n);
            for _ in 0..n {
                steps.push((r.f64()?, r.f64()?));
            }
            Ok(RateSchedule::Steps { steps })
        }
        1 => Ok(RateSchedule::Sinusoid {
            mean: r.f64()?,
            amplitude: r.f64()?,
            period_s: r.f64()?,
        }),
        2 => Ok(RateSchedule::Bursty {
            base: r.f64()?,
            burst: r.f64()?,
            period_s: r.f64()?,
            burst_len_s: r.f64()?,
        }),
        t => Err(SimError::InvalidSnapshot(format!("bad schedule tag {t}"))),
    }
}

fn put_event(w: &mut Writer, ev: &Event) {
    w.f64(ev.time);
    w.u64(ev.seq);
    match ev.kind {
        EventKind::SpoutEmit { executor } => {
            w.u8(0);
            w.usize(executor);
        }
        EventKind::TupleArrival {
            executor,
            root,
            remote,
        } => {
            w.u8(1);
            w.usize(executor);
            w.u64(root);
            w.bool(remote);
        }
        EventKind::ServiceComplete { executor, root } => {
            w.u8(2);
            w.usize(executor);
            w.u64(root);
        }
        EventKind::MigrationDone { executor } => {
            w.u8(3);
            w.usize(executor);
        }
    }
}

fn get_event(r: &mut Reader<'_>, n_executors: usize) -> Result<Event, SimError> {
    let time = r.f64()?;
    let seq = r.u64()?;
    if !time.is_finite() || time < 0.0 {
        return Err(SimError::InvalidSnapshot(format!("bad event time {time}")));
    }
    let kind = match r.u8()? {
        0 => EventKind::SpoutEmit {
            executor: r.usize()?,
        },
        1 => EventKind::TupleArrival {
            executor: r.usize()?,
            root: r.u64()?,
            remote: r.bool()?,
        },
        2 => EventKind::ServiceComplete {
            executor: r.usize()?,
            root: r.u64()?,
        },
        3 => EventKind::MigrationDone {
            executor: r.usize()?,
        },
        t => return Err(SimError::InvalidSnapshot(format!("bad event tag {t}"))),
    };
    let executor = match kind {
        EventKind::SpoutEmit { executor }
        | EventKind::TupleArrival { executor, .. }
        | EventKind::ServiceComplete { executor, .. }
        | EventKind::MigrationDone { executor } => executor,
    };
    if executor >= n_executors {
        return Err(SimError::InvalidSnapshot(format!(
            "event executor {executor} out of range"
        )));
    }
    Ok(Event { time, seq, kind })
}

impl SimEngine {
    /// Serializes every mutable field of the engine into a versioned byte
    /// image. Floats are captured as raw bits, so a restore is bit-exact.
    /// The topology, cluster and config are *not* serialized — a restore
    /// target must be constructed with the same ones (the image records
    /// the executor/machine counts and refuses a mismatched target).
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.buf.extend_from_slice(MAGIC);
        w.u32(VERSION);
        w.usize(self.topology.n_executors());
        w.usize(self.cluster.n_machines());
        w.bool(self.started);
        w.f64(self.clock);
        w.u64(self.events_processed);

        let rates = self.workload.rates();
        w.usize(rates.len());
        for &(c, r) in rates {
            w.usize(c);
            w.f64(r);
        }
        put_schedule(&mut w, &self.schedule);

        let assign = self.assignment.as_slice();
        w.usize(assign.len());
        for &m in assign {
            w.usize(m);
        }

        put_rng(&mut w, &self.arrival_rng);
        put_rng(&mut w, &self.service_rng);
        put_rng(&mut w, &self.routing_rng);

        let (events, next_seq) = self.events.snapshot();
        w.u64(next_seq);
        w.usize(events.len());
        for ev in &events {
            put_event(&mut w, ev);
        }

        for ex in &self.executors {
            w.usize(ex.queue.len());
            for &(root, remote) in &ex.queue {
                w.u64(root);
                w.bool(remote);
            }
            match ex.in_service {
                None => w.u8(0),
                Some((root, machine)) => {
                    w.u8(1);
                    w.u64(root);
                    w.usize(machine);
                }
            }
            w.f64(ex.started_at);
            w.f64(ex.paused_until);
            w.u64(ex.processed);
            w.u64(ex.arrived);
            w.bool(ex.parked);
        }

        for m in &self.machines {
            w.usize(m.busy_executors);
            w.f64(m.cross_kib_rate);
            w.f64(m.last_traffic_at);
            w.bool(m.failed);
        }

        let (pending, next_root, completed, failed) = self.tracker.snapshot();
        w.u64(next_root);
        w.u64(completed);
        w.u64(failed);
        w.usize(pending.len());
        for (root, emitted_at, outstanding) in pending {
            w.u64(root);
            w.f64(emitted_at);
            w.u64(outstanding);
        }

        let (samples, window_sum, total_count, total_sum) = self.latency.snapshot();
        w.f64(window_sum);
        w.u64(total_count);
        w.f64(total_sum);
        w.usize(samples.len());
        for (t, v) in samples {
            w.f64(t);
            w.f64(v);
        }

        w.buf
    }

    /// Restores a state image captured by [`SimEngine::save_state`] onto
    /// this engine, which must have been constructed with the same
    /// topology, cluster and config. After a successful restore the
    /// engine's future trajectory is bit-identical to what the snapshotted
    /// engine would have produced. The event-queue backend (calendar vs
    /// dense) is kept as configured on `self` — both pop in the same
    /// order, so the choice does not affect the trajectory.
    ///
    /// On error the engine is left untouched.
    pub fn restore_state(&mut self, image: &[u8]) -> Result<(), SimError> {
        let mut r = Reader::new(image);
        if r.take(4)? != MAGIC {
            return Err(SimError::InvalidSnapshot("bad magic".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(SimError::InvalidSnapshot(format!(
                "unsupported version {version}"
            )));
        }
        let n_executors = r.usize()?;
        let n_machines = r.usize()?;
        if n_executors != self.topology.n_executors() || n_machines != self.cluster.n_machines() {
            return Err(SimError::InvalidSnapshot(format!(
                "image is for {n_executors} executors / {n_machines} machines, engine has {} / {}",
                self.topology.n_executors(),
                self.cluster.n_machines()
            )));
        }
        let started = r.bool()?;
        let clock = r.f64()?;
        let events_processed = r.u64()?;

        let n_rates = r.len()?;
        let mut rates = Vec::with_capacity(n_rates);
        for _ in 0..n_rates {
            rates.push((r.usize()?, r.f64()?));
        }
        let workload = Workload::new(rates, &self.topology)?;
        let schedule = get_schedule(&mut r)?;

        let n_assign = r.len()?;
        let mut machine_of = Vec::with_capacity(n_assign);
        for _ in 0..n_assign {
            machine_of.push(r.usize()?);
        }
        let assignment = Assignment::new(machine_of, n_machines)?;
        assignment.validate_for(&self.topology, &self.cluster)?;

        let arrival_rng = get_rng(&mut r)?;
        let service_rng = get_rng(&mut r)?;
        let routing_rng = get_rng(&mut r)?;

        let next_seq = r.u64()?;
        let n_events = r.len()?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            events.push(get_event(&mut r, n_executors)?);
        }

        let mut executors = Vec::with_capacity(n_executors);
        for _ in 0..n_executors {
            let n_queue = r.len()?;
            let mut queue = std::collections::VecDeque::with_capacity(n_queue);
            for _ in 0..n_queue {
                queue.push_back((r.u64()?, r.bool()?));
            }
            let in_service = match r.u8()? {
                0 => None,
                1 => {
                    let root = r.u64()?;
                    let machine = r.usize()?;
                    if machine >= n_machines {
                        return Err(SimError::InvalidSnapshot(
                            "in-service machine out of range".into(),
                        ));
                    }
                    Some((root, machine))
                }
                b => return Err(SimError::InvalidSnapshot(format!("bad in-service tag {b}"))),
            };
            executors.push(crate::engine::ExecutorState {
                queue,
                in_service,
                started_at: r.f64()?,
                paused_until: r.f64()?,
                processed: r.u64()?,
                arrived: r.u64()?,
                parked: r.bool()?,
            });
        }

        let mut machines = Vec::with_capacity(n_machines);
        for _ in 0..n_machines {
            machines.push(crate::engine::MachineState {
                busy_executors: r.usize()?,
                cross_kib_rate: r.f64()?,
                last_traffic_at: r.f64()?,
                failed: r.bool()?,
            });
        }

        let next_root = r.u64()?;
        let completed = r.u64()?;
        let failed = r.u64()?;
        let n_pending = r.len()?;
        let mut pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            pending.push((r.u64()?, r.f64()?, r.u64()?));
        }

        let window_sum = r.f64()?;
        let total_count = r.u64()?;
        let total_sum = r.f64()?;
        let n_samples = r.len()?;
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            samples.push((r.f64()?, r.f64()?));
        }
        r.done()?;

        // All parsed and validated: commit.
        self.started = started;
        self.clock = clock;
        self.events_processed = events_processed;
        self.workload = workload;
        self.schedule = schedule;
        self.assignment = assignment;
        self.arrival_rng = arrival_rng;
        self.service_rng = service_rng;
        self.routing_rng = routing_rng;
        self.events = EventQueue::restore(self.events.is_dense(), events, next_seq);
        self.executors = executors;
        self.machines = machines;
        self.tracker = TupleTracker::restore(pending, next_root, completed, failed);
        self.latency = LatencyTracker::restore(
            self.config.latency_window_s,
            samples,
            window_sum,
            total_count,
            total_sum,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::ClusterSpec;
    use crate::config::SimConfig;
    use crate::engine::SimEngine;
    use crate::error::SimError;
    use crate::topology::{Grouping, Topology, TopologyBuilder};
    use crate::workload::{RateSchedule, Workload};
    use crate::Assignment;

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new("snap");
        let s = b.spout("spout", 2, 0.05);
        let x = b.bolt("worker", 4, 0.3);
        let y = b.bolt("sink", 2, 0.1);
        b.edge(s, x, Grouping::Shuffle, 1.0, 256);
        b.edge(
            x,
            y,
            Grouping::Fields {
                n_keys: 64,
                skew: 1.1,
            },
            0.5,
            128,
        );
        b.build().unwrap()
    }

    fn engine(seed: u64) -> SimEngine {
        let t = topo();
        let cluster = ClusterSpec::homogeneous(4);
        let workload = Workload::uniform(&t, 200.0);
        let config = SimConfig {
            seed,
            ..SimConfig::default()
        };
        SimEngine::new(t, cluster, workload, config).unwrap()
    }

    /// Step both engines in lockstep and assert every observable matches.
    fn assert_lockstep(a: &mut SimEngine, b: &mut SimEngine, epochs: usize) {
        for i in 0..epochs {
            let la = a.step_epoch(2.0);
            let lb = b.step_epoch(2.0);
            assert_eq!(la, lb, "latency diverged at epoch {i}");
            assert_eq!(a.tuple_counts(), b.tuple_counts(), "counts at epoch {i}");
            assert_eq!(a.events_processed(), b.events_processed());
            assert_eq!(a.now(), b.now());
        }
    }

    #[test]
    fn round_trip_mid_run_is_bit_identical() {
        let mut original = engine(41);
        let rr = Assignment::round_robin(original.topology(), original.cluster());
        original.deploy(rr).unwrap();
        original.set_rate_schedule(RateSchedule::step_at(8.0, 1.5));
        original.run_until(5.0);

        let image = original.save_state();
        let mut restored = engine(41);
        restored.restore_state(&image).unwrap();

        assert_lockstep(&mut original, &mut restored, 10);
    }

    #[test]
    fn restore_survives_redeploy_and_faults_in_flight() {
        let mut original = engine(42);
        let rr = Assignment::round_robin(original.topology(), original.cluster());
        original.deploy(rr.clone()).unwrap();
        original.run_until(4.0);
        // A migration pause and a dead machine are both live state.
        original
            .deploy(rr.with_move(0, (rr.machine_of(0) + 1) % 4))
            .unwrap();
        original.fail_machine(2);
        original.run_until(6.0);

        let image = original.save_state();
        let mut restored = engine(42);
        restored.restore_state(&image).unwrap();
        assert!(restored.machine_failed(2));

        original.recover_machine(2);
        restored.recover_machine(2);
        assert_lockstep(&mut original, &mut restored, 8);
    }

    #[test]
    fn restore_crosses_event_backends() {
        // A calendar-engine snapshot restored into a dense-backend engine
        // continues the identical trajectory (shared (time, seq) order).
        let mut original = engine(43);
        let rr = Assignment::round_robin(original.topology(), original.cluster());
        original.deploy(rr).unwrap();
        original.run_until(5.0);
        let image = original.save_state();

        let mut dense = engine(43);
        dense.set_dense_events(true);
        dense.restore_state(&image).unwrap();
        assert!(dense.dense_events());
        assert_lockstep(&mut original, &mut dense, 6);
    }

    #[test]
    fn save_does_not_perturb_the_engine() {
        let run = |snapshot_each_epoch: bool| {
            let mut eng = engine(44);
            let rr = Assignment::round_robin(eng.topology(), eng.cluster());
            eng.deploy(rr).unwrap();
            let mut traj = Vec::new();
            for _ in 0..8 {
                if snapshot_each_epoch {
                    let _ = eng.save_state();
                }
                traj.push(eng.step_epoch(2.0));
            }
            (traj, eng.tuple_counts())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn mismatched_target_is_refused() {
        let mut original = engine(45);
        let rr = Assignment::round_robin(original.topology(), original.cluster());
        original.deploy(rr).unwrap();
        original.run_until(2.0);
        let image = original.save_state();

        let t = topo();
        let mut other = SimEngine::new(
            t.clone(),
            ClusterSpec::homogeneous(7),
            Workload::uniform(&t, 100.0),
            SimConfig::default(),
        )
        .unwrap();
        let err = other.restore_state(&image).unwrap_err();
        assert!(matches!(err, SimError::InvalidSnapshot(_)), "{err}");
        // The failed restore left the target untouched and usable.
        let rr = Assignment::round_robin(other.topology(), other.cluster());
        other.deploy(rr).unwrap();
        assert!(other.step_epoch(5.0).is_some());
    }

    #[test]
    fn corrupt_images_error_instead_of_panicking() {
        let mut eng = engine(46);
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(3.0);
        let image = eng.save_state();

        // Truncations at every prefix length.
        for cut in 0..image.len().min(64) {
            let mut target = engine(46);
            assert!(target.restore_state(&image[..cut]).is_err());
        }
        let mut target = engine(46);
        assert!(target.restore_state(&image[..image.len() - 1]).is_err());
        // Flipped magic.
        let mut bad = image.clone();
        bad[0] ^= 0xFF;
        assert!(target.restore_state(&bad).is_err());
        // Trailing garbage.
        let mut long = image.clone();
        long.push(0);
        assert!(target.restore_state(&long).is_err());
        // The pristine image still restores.
        assert!(target.restore_state(&image).is_ok());
    }
}
