//! The discrete-event core: timestamped events with deterministic ordering.
//!
//! Two interchangeable queue backends share one `(time, seq)` total order:
//! the production **calendar** (a binary heap — `O(log E)` per operation in
//! the number of *pending* events) and a **dense** linear-scan `Vec` that
//! re-finds the minimum on every access (`O(E)` per event). The dense
//! backend exists as the correctness oracle and performance baseline for
//! the event-driven engine: because both backends draw from the same
//! sequence counter and compare with the same ordering, swapping one for
//! the other cannot change which event fires next — trajectories are
//! bit-identical by construction, only the cost per event differs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A spout executor emits its next root tuple (and schedules the one
    /// after).
    SpoutEmit {
        /// Global executor index of the spout thread.
        executor: usize,
    },
    /// A tuple arrives at an executor's input queue.
    TupleArrival {
        /// Destination executor.
        executor: usize,
        /// Root id of the tuple's tree.
        root: u64,
        /// Whether the tuple crossed machines (and must be deserialized).
        remote: bool,
    },
    /// The tuple at the head of an executor's queue finishes service.
    ServiceComplete {
        /// Executor finishing service.
        executor: usize,
        /// Root id of the serviced tuple.
        root: u64,
    },
    /// A migrated executor finishes its pause and may resume.
    MigrationDone {
        /// Executor resuming.
        executor: usize,
    },
}

/// A scheduled event. Ordering: time ascending, then insertion sequence —
/// simultaneous events fire in the order they were scheduled, which makes
/// runs bit-for-bit reproducible.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Simulated time in seconds.
    pub time: f64,
    /// Tie-breaking sequence number (assigned by [`EventQueue::push`]).
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for BinaryHeap (max-heap) -> earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("NaN event time")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Storage behind an [`EventQueue`]: the production calendar heap or the
/// dense linear-scan oracle. Both pop in identical `(time, seq)` order.
#[derive(Debug)]
enum Backend {
    /// Binary heap — `O(log E)` push/pop, the event-driven production path.
    Calendar(BinaryHeap<Event>),
    /// Unordered vec — every peek/pop rescans all pending events (`O(E)`),
    /// mimicking a dense per-executor sweep. Oracle + bench baseline only.
    Dense(Vec<Event>),
}

/// Priority queue of events.
#[derive(Debug)]
pub struct EventQueue {
    backend: Backend,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty calendar-backed (binary heap) queue — the production path.
    pub fn new() -> Self {
        Self {
            backend: Backend::Calendar(BinaryHeap::new()),
            next_seq: 0,
        }
    }

    /// An empty dense-backed queue that rescans all pending events on every
    /// access. Same pop order as [`EventQueue::new`] by construction; used
    /// as the correctness oracle and the bench baseline.
    pub fn new_dense() -> Self {
        Self {
            backend: Backend::Dense(Vec::new()),
            next_seq: 0,
        }
    }

    /// Whether this queue uses the dense linear-scan backend.
    pub fn is_dense(&self) -> bool {
        matches!(self.backend, Backend::Dense(_))
    }

    /// Schedules `kind` at `time`.
    ///
    /// # Panics
    /// Panics on NaN or negative time.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event { time, seq, kind };
        match &mut self.backend {
            Backend::Calendar(heap) => heap.push(ev),
            Backend::Dense(vec) => vec.push(ev),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        match &mut self.backend {
            Backend::Calendar(heap) => heap.pop(),
            Backend::Dense(vec) => {
                // Event's Ord is reversed for the max-heap, so the maximal
                // element under it is the earliest (time, seq). Seqs are
                // unique, so there are no ties and max_by is deterministic.
                let idx = vec
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.cmp(b))
                    .map(|(i, _)| i)?;
                Some(vec.swap_remove(idx))
            }
        }
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        match &self.backend {
            Backend::Calendar(heap) => heap.peek().map(|e| e.time),
            Backend::Dense(vec) => vec.iter().max().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(heap) => heap.len(),
            Backend::Dense(vec) => vec.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All pending events in pop order plus the tie-break counter —
    /// everything a snapshot needs to rebuild an identical queue.
    pub(crate) fn snapshot(&self) -> (Vec<Event>, u64) {
        let mut evs: Vec<Event> = match &self.backend {
            Backend::Calendar(heap) => heap.iter().copied().collect(),
            Backend::Dense(vec) => vec.clone(),
        };
        // Event's Ord is reversed for the max-heap; reverse the comparison
        // again to sort ascending by (time, seq) — the pop order.
        evs.sort_by(|a, b| b.cmp(a));
        (evs, self.next_seq)
    }

    /// Rebuilds a queue from a snapshot. Seqs are preserved verbatim, so
    /// the restored queue pops — and tie-breaks against future pushes —
    /// exactly like the original.
    pub(crate) fn restore(dense: bool, events: Vec<Event>, next_seq: u64) -> Self {
        Self {
            backend: if dense {
                Backend::Dense(events)
            } else {
                Backend::Calendar(events.into_iter().collect())
            },
            next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::SpoutEmit { executor: 0 });
        q.push(1.0, EventKind::SpoutEmit { executor: 1 });
        q.push(3.0, EventKind::SpoutEmit { executor: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::SpoutEmit { executor: 7 });
        q.push(1.0, EventKind::SpoutEmit { executor: 8 });
        match (q.pop().unwrap().kind, q.pop().unwrap().kind) {
            (EventKind::SpoutEmit { executor: a }, EventKind::SpoutEmit { executor: b }) => {
                assert_eq!((a, b), (7, 8));
            }
            other => panic!("unexpected kinds {other:?}"),
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::MigrationDone { executor: 0 });
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "bad event time")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, EventKind::MigrationDone { executor: 0 });
    }

    #[test]
    fn dense_backend_pops_in_identical_order() {
        let mut cal = EventQueue::new();
        let mut dense = EventQueue::new_dense();
        assert!(!cal.is_dense());
        assert!(dense.is_dense());
        // Interleave pushes and pops with duplicate timestamps so both the
        // time order and the seq tie-break are exercised.
        let times = [3.0, 1.0, 1.0, 2.5, 0.5, 2.5, 2.5, 4.0, 0.5, 1.0];
        for (i, &t) in times.iter().enumerate() {
            cal.push(t, EventKind::SpoutEmit { executor: i });
            dense.push(t, EventKind::SpoutEmit { executor: i });
            if i % 3 == 2 {
                let (a, b) = (cal.pop().unwrap(), dense.pop().unwrap());
                assert_eq!((a.time, a.seq), (b.time, b.seq));
                assert_eq!(a.kind, b.kind);
            }
        }
        while let Some(a) = cal.pop() {
            assert_eq!(dense.peek_time(), Some(a.time));
            let b = dense.pop().unwrap();
            assert_eq!((a.time, a.seq), (b.time, b.seq));
            assert_eq!(a.kind, b.kind);
        }
        assert!(dense.is_empty());
    }
}
