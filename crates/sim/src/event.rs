//! The discrete-event core: timestamped events with deterministic ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A spout executor emits its next root tuple (and schedules the one
    /// after).
    SpoutEmit {
        /// Global executor index of the spout thread.
        executor: usize,
    },
    /// A tuple arrives at an executor's input queue.
    TupleArrival {
        /// Destination executor.
        executor: usize,
        /// Root id of the tuple's tree.
        root: u64,
        /// Whether the tuple crossed machines (and must be deserialized).
        remote: bool,
    },
    /// The tuple at the head of an executor's queue finishes service.
    ServiceComplete {
        /// Executor finishing service.
        executor: usize,
        /// Root id of the serviced tuple.
        root: u64,
    },
    /// A migrated executor finishes its pause and may resume.
    MigrationDone {
        /// Executor resuming.
        executor: usize,
    },
}

/// A scheduled event. Ordering: time ascending, then insertion sequence —
/// simultaneous events fire in the order they were scheduled, which makes
/// runs bit-for-bit reproducible.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Simulated time in seconds.
    pub time: f64,
    /// Tie-breaking sequence number (assigned by [`EventQueue::push`]).
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for BinaryHeap (max-heap) -> earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("NaN event time")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    ///
    /// # Panics
    /// Panics on NaN or negative time.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::SpoutEmit { executor: 0 });
        q.push(1.0, EventKind::SpoutEmit { executor: 1 });
        q.push(3.0, EventKind::SpoutEmit { executor: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::SpoutEmit { executor: 7 });
        q.push(1.0, EventKind::SpoutEmit { executor: 8 });
        match (q.pop().unwrap().kind, q.pop().unwrap().kind) {
            (EventKind::SpoutEmit { executor: a }, EventKind::SpoutEmit { executor: b }) => {
                assert_eq!((a, b), (7, 8));
            }
            other => panic!("unexpected kinds {other:?}"),
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::MigrationDone { executor: 0 });
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "bad event time")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, EventKind::MigrationDone { executor: 0 });
    }
}
