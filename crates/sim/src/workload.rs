//! Incoming workload: per-spout tuple arrival rates and their evolution.
//!
//! The paper's state includes "the workload `w`, which includes the tuple
//! arrival rate (i.e., the number of tuples per second) of each data
//! source"; its Figure 12 experiment steps the workload up by 50% at the
//! 20-minute mark.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::topology::{ComponentKind, Topology};

/// Per-spout-component arrival rates (tuples per second).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// `(spout component index, tuples/s)` pairs.
    rates: Vec<(usize, f64)>,
}

impl Workload {
    /// Builds a workload; every referenced component must be a spout.
    pub fn new(rates: Vec<(usize, f64)>, topology: &Topology) -> Result<Self, SimError> {
        if rates.is_empty() {
            return Err(SimError::InvalidWorkload("no spout rates".into()));
        }
        for &(c, r) in &rates {
            let Some(spec) = topology.components().get(c) else {
                return Err(SimError::InvalidWorkload(format!(
                    "component {c} out of range"
                )));
            };
            if spec.kind != ComponentKind::Spout {
                return Err(SimError::InvalidWorkload(format!(
                    "component `{}` is not a spout",
                    spec.name
                )));
            }
            if r < 0.0 {
                return Err(SimError::InvalidWorkload("negative rate".into()));
            }
        }
        Ok(Self { rates })
    }

    /// Uniform rate on every spout of the topology.
    pub fn uniform(topology: &Topology, rate: f64) -> Self {
        let rates = topology.spouts().into_iter().map(|c| (c, rate)).collect();
        Self { rates }
    }

    /// `(spout component, rate)` pairs.
    pub fn rates(&self) -> &[(usize, f64)] {
        &self.rates
    }

    /// Total tuples/s entering the system.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().map(|&(_, r)| r).sum()
    }

    /// This workload scaled by `factor` (the Figure 12 step uses 1.5).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            rates: self.rates.iter().map(|&(c, r)| (c, r * factor)).collect(),
        }
    }

    /// The paper's state-vector workload features: one rate per data
    /// source, normalized by `rate_scale` so NN inputs stay O(1).
    pub fn feature_vector(&self, rate_scale: f64) -> Vec<f64> {
        assert!(rate_scale > 0.0, "rate scale must be positive");
        self.rates.iter().map(|&(_, r)| r / rate_scale).collect()
    }
}

/// A piecewise-constant multiplier on a base workload over simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    /// `(start time in seconds, multiplier)` steps, sorted by time; the
    /// multiplier before the first step is 1.
    steps: Vec<(f64, f64)>,
}

impl RateSchedule {
    /// Constant workload (multiplier 1 forever).
    pub fn constant() -> Self {
        Self { steps: Vec::new() }
    }

    /// A single step to `multiplier` at time `at_s` — Figure 12's
    /// "+50% at 20 minutes" is `RateSchedule::step_at(1200.0, 1.5)`.
    ///
    /// # Panics
    /// Panics on negative time or multiplier.
    pub fn step_at(at_s: f64, multiplier: f64) -> Self {
        assert!(at_s >= 0.0 && multiplier >= 0.0);
        Self {
            steps: vec![(at_s, multiplier)],
        }
    }

    /// Adds a step, keeping the schedule sorted.
    ///
    /// # Panics
    /// Panics on negative time or multiplier.
    pub fn with_step(mut self, at_s: f64, multiplier: f64) -> Self {
        assert!(at_s >= 0.0 && multiplier >= 0.0);
        self.steps.push((at_s, multiplier));
        self.steps
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN time"));
        self
    }

    /// Multiplier in effect at time `t`.
    pub fn multiplier_at(&self, t: f64) -> f64 {
        self.steps
            .iter()
            .rev()
            .find(|&&(at, _)| t >= at)
            .map_or(1.0, |&(_, m)| m)
    }

    /// Times at which the multiplier changes.
    pub fn change_points(&self) -> Vec<f64> {
        self.steps.iter().map(|&(t, _)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Grouping, TopologyBuilder};

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new("t");
        let s = b.spout("s", 2, 0.05);
        let x = b.bolt("x", 2, 0.1);
        b.edge(s, x, Grouping::Shuffle, 1.0, 10);
        b.build().unwrap()
    }

    #[test]
    fn uniform_covers_all_spouts() {
        let t = topo();
        let w = Workload::uniform(&t, 100.0);
        assert_eq!(w.rates(), &[(0, 100.0)]);
        assert_eq!(w.total_rate(), 100.0);
    }

    #[test]
    fn rejects_bolt_rate() {
        let t = topo();
        assert!(Workload::new(vec![(1, 10.0)], &t).is_err());
        assert!(Workload::new(vec![(5, 10.0)], &t).is_err());
        assert!(Workload::new(vec![(0, -1.0)], &t).is_err());
    }

    #[test]
    fn scaled_multiplies() {
        let t = topo();
        let w = Workload::uniform(&t, 100.0).scaled(1.5);
        assert_eq!(w.total_rate(), 150.0);
    }

    #[test]
    fn features_normalized() {
        let t = topo();
        let w = Workload::uniform(&t, 500.0);
        assert_eq!(w.feature_vector(1000.0), vec![0.5]);
    }

    #[test]
    fn schedule_steps() {
        let s = RateSchedule::step_at(1200.0, 1.5);
        assert_eq!(s.multiplier_at(0.0), 1.0);
        assert_eq!(s.multiplier_at(1199.9), 1.0);
        assert_eq!(s.multiplier_at(1200.0), 1.5);
        assert_eq!(s.multiplier_at(5000.0), 1.5);
        assert_eq!(s.change_points(), vec![1200.0]);
    }

    #[test]
    fn multi_step_schedule_sorted() {
        let s = RateSchedule::constant()
            .with_step(100.0, 2.0)
            .with_step(50.0, 1.5);
        assert_eq!(s.multiplier_at(75.0), 1.5);
        assert_eq!(s.multiplier_at(150.0), 2.0);
    }
}
