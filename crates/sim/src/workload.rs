//! Incoming workload: per-spout tuple arrival rates and their evolution.
//!
//! The paper's state includes "the workload `w`, which includes the tuple
//! arrival rate (i.e., the number of tuples per second) of each data
//! source"; its Figure 12 experiment steps the workload up by 50% at the
//! 20-minute mark. Beyond the paper, [`RateSchedule`] also models diurnal
//! sinusoid and periodic-burst traffic so training can span the workload
//! diversity real stream systems see (the scenario registry in `dss-core`
//! composes these into named training/evaluation scenarios).

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::topology::{ComponentKind, Topology};

/// Per-spout-component arrival rates (tuples per second).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// `(spout component index, tuples/s)` pairs.
    rates: Vec<(usize, f64)>,
}

impl Workload {
    /// Builds a workload; every referenced component must be a spout.
    pub fn new(rates: Vec<(usize, f64)>, topology: &Topology) -> Result<Self, SimError> {
        if rates.is_empty() {
            return Err(SimError::InvalidWorkload("no spout rates".into()));
        }
        for &(c, r) in &rates {
            let Some(spec) = topology.components().get(c) else {
                return Err(SimError::InvalidWorkload(format!(
                    "component {c} out of range"
                )));
            };
            if spec.kind != ComponentKind::Spout {
                return Err(SimError::InvalidWorkload(format!(
                    "component `{}` is not a spout",
                    spec.name
                )));
            }
            if r < 0.0 {
                return Err(SimError::InvalidWorkload("negative rate".into()));
            }
        }
        Ok(Self { rates })
    }

    /// Uniform rate on every spout of the topology.
    pub fn uniform(topology: &Topology, rate: f64) -> Self {
        let rates = topology.spouts().into_iter().map(|c| (c, rate)).collect();
        Self { rates }
    }

    /// `(spout component, rate)` pairs.
    pub fn rates(&self) -> &[(usize, f64)] {
        &self.rates
    }

    /// Total tuples/s entering the system.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().map(|&(_, r)| r).sum()
    }

    /// This workload scaled by `factor` (the Figure 12 step uses 1.5).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            rates: self.rates.iter().map(|&(c, r)| (c, r * factor)).collect(),
        }
    }

    /// Overwrites this workload with `base` scaled by `factor`, reusing the
    /// existing rate buffer — the allocation-free counterpart of
    /// [`Workload::scaled`] used by schedule-aware training loops that
    /// refresh an actor's observed workload every decision epoch.
    pub fn copy_scaled_from(&mut self, base: &Workload, factor: f64) {
        self.rates.clear();
        self.rates
            .extend(base.rates.iter().map(|&(c, r)| (c, r * factor)));
    }

    /// The paper's state-vector workload features: one rate per data
    /// source, normalized by `rate_scale` so NN inputs stay O(1).
    pub fn feature_vector(&self, rate_scale: f64) -> Vec<f64> {
        assert!(rate_scale > 0.0, "rate scale must be positive");
        self.rates.iter().map(|&(_, r)| r / rate_scale).collect()
    }
}

/// A time-varying multiplier on a base workload over simulated time.
///
/// Three families cover the traffic shapes the scenario registry composes:
///
/// * [`Steps`](RateSchedule::Steps) — piecewise-constant (the paper's
///   Figure 12 "+50% at 20 minutes" step);
/// * [`Sinusoid`](RateSchedule::Sinusoid) — a diurnal-style smooth wave
///   `mean + amplitude · sin(2π t / period)`;
/// * [`Bursty`](RateSchedule::Bursty) — deterministic periodic bursts:
///   `burst` for the first `burst_len_s` of every `period_s`, `base`
///   otherwise.
///
/// All variants are pure functions of `t`, so simulation determinism is
/// unaffected by when or how often the multiplier is sampled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateSchedule {
    /// `(start time in seconds, multiplier)` steps, sorted by time; the
    /// multiplier before the first step is 1.
    Steps {
        /// Sorted `(at_s, multiplier)` change points.
        steps: Vec<(f64, f64)>,
    },
    /// `mean + amplitude · sin(2π t / period_s)`.
    Sinusoid {
        /// Mean multiplier (the level the wave oscillates around).
        mean: f64,
        /// Wave amplitude; the multiplier stays in `[mean − a, mean + a]`.
        amplitude: f64,
        /// Full wave period in seconds.
        period_s: f64,
    },
    /// `burst` during the first `burst_len_s` of every period, `base`
    /// otherwise (bursts start at t = 0, period boundaries thereafter).
    Bursty {
        /// Off-burst multiplier.
        base: f64,
        /// In-burst multiplier.
        burst: f64,
        /// Burst repetition period in seconds.
        period_s: f64,
        /// Burst duration in seconds (≤ `period_s`).
        burst_len_s: f64,
    },
}

impl RateSchedule {
    /// Constant workload (multiplier 1 forever).
    pub fn constant() -> Self {
        Self::Steps { steps: Vec::new() }
    }

    /// A single step to `multiplier` at time `at_s` — Figure 12's
    /// "+50% at 20 minutes" is `RateSchedule::step_at(1200.0, 1.5)`.
    ///
    /// # Panics
    /// Panics on negative time or multiplier.
    pub fn step_at(at_s: f64, multiplier: f64) -> Self {
        assert!(at_s >= 0.0 && multiplier >= 0.0);
        Self::Steps {
            steps: vec![(at_s, multiplier)],
        }
    }

    /// A diurnal-style sinusoid around `mean` with the given `amplitude`
    /// and `period_s` (e.g. `sinusoid(1.0, 0.4, 3600.0)` swings the
    /// workload ±40% over an hour).
    ///
    /// # Panics
    /// Panics unless `period_s > 0` and `0 ≤ amplitude ≤ mean` (so the
    /// multiplier can never go negative).
    pub fn sinusoid(mean: f64, amplitude: f64, period_s: f64) -> Self {
        assert!(period_s > 0.0, "sinusoid period must be positive");
        assert!(
            (0.0..=mean).contains(&amplitude),
            "need 0 <= amplitude <= mean so the rate multiplier stays non-negative"
        );
        Self::Sinusoid {
            mean,
            amplitude,
            period_s,
        }
    }

    /// Deterministic periodic bursts: `burst` for the first `burst_len_s`
    /// of every `period_s`, `base` otherwise (e.g.
    /// `bursty(0.8, 2.5, 300.0, 30.0)` is a 2.5× spike for 30 s of every
    /// 5 minutes over a 0.8× trough).
    ///
    /// # Panics
    /// Panics unless `0 < burst_len_s ≤ period_s` and both multipliers are
    /// non-negative.
    pub fn bursty(base: f64, burst: f64, period_s: f64, burst_len_s: f64) -> Self {
        assert!(base >= 0.0 && burst >= 0.0, "multipliers must be >= 0");
        assert!(
            burst_len_s > 0.0 && burst_len_s <= period_s,
            "need 0 < burst_len_s <= period_s"
        );
        Self::Bursty {
            base,
            burst,
            period_s,
            burst_len_s,
        }
    }

    /// Adds a step, keeping the schedule sorted.
    ///
    /// # Panics
    /// Panics on negative time or multiplier, or when called on a
    /// non-[`Steps`](RateSchedule::Steps) schedule (continuous schedules
    /// have no step list to extend).
    pub fn with_step(self, at_s: f64, multiplier: f64) -> Self {
        assert!(at_s >= 0.0 && multiplier >= 0.0);
        let Self::Steps { mut steps } = self else {
            panic!("with_step only applies to piecewise-constant schedules");
        };
        steps.push((at_s, multiplier));
        steps.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN time"));
        Self::Steps { steps }
    }

    /// Multiplier in effect at time `t`.
    pub fn multiplier_at(&self, t: f64) -> f64 {
        match self {
            Self::Steps { steps } => steps
                .iter()
                .rev()
                .find(|&&(at, _)| t >= at)
                .map_or(1.0, |&(_, m)| m),
            Self::Sinusoid {
                mean,
                amplitude,
                period_s,
            } => mean + amplitude * (std::f64::consts::TAU * t / period_s).sin(),
            Self::Bursty {
                base,
                burst,
                period_s,
                burst_len_s,
            } => {
                if t.rem_euclid(*period_s) < *burst_len_s {
                    *burst
                } else {
                    *base
                }
            }
        }
    }

    /// The `[min, max]` envelope of the multiplier over all times
    /// `t ≥ 0` — what a capacity planner (or a property test) needs to
    /// bound the offered load of a scenario. Only attainable values
    /// count: a step at `t = 0` hides the implicit leading 1.0.
    pub fn bounds(&self) -> (f64, f64) {
        match self {
            Self::Steps { steps } => {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                let mut fold = |m: f64| {
                    lo = lo.min(m);
                    hi = hi.max(m);
                };
                // Only attainable multipliers count: the implicit 1.0
                // before the first step exists only if some t >= 0
                // precedes that step, and a step shadowed by another at
                // the same instant is never in effect.
                if steps.first().is_none_or(|&(t, _)| t > 0.0) {
                    fold(1.0);
                }
                for (i, &(t, m)) in steps.iter().enumerate() {
                    if steps.get(i + 1).is_none_or(|&(t2, _)| t2 > t) {
                        fold(m);
                    }
                }
                (lo, hi)
            }
            Self::Sinusoid {
                mean, amplitude, ..
            } => (mean - amplitude, mean + amplitude),
            Self::Bursty { base, burst, .. } => (base.min(*burst), base.max(*burst)),
        }
    }

    /// The repetition period of a periodic schedule ([`Sinusoid`] or
    /// [`Bursty`]); `None` for step schedules, which never repeat.
    ///
    /// [`Sinusoid`]: RateSchedule::Sinusoid
    /// [`Bursty`]: RateSchedule::Bursty
    pub fn period_s(&self) -> Option<f64> {
        match self {
            Self::Steps { .. } => None,
            Self::Sinusoid { period_s, .. } | Self::Bursty { period_s, .. } => Some(*period_s),
        }
    }

    /// Times at which a step schedule's multiplier changes (empty for the
    /// continuous/periodic variants — they change everywhere).
    pub fn change_points(&self) -> Vec<f64> {
        match self {
            Self::Steps { steps } => steps.iter().map(|&(t, _)| t).collect(),
            _ => Vec::new(),
        }
    }

    /// The next time strictly after `t` at which the multiplier changes
    /// discontinuously — `None` when it never changes again ([`Steps`] past
    /// the last change point) or varies continuously ([`Sinusoid`]; use
    /// [`RateSchedule::period_s`] to tell the two `None` cases apart). The
    /// event-driven engine uses this to sleep a schedule-silenced spout
    /// until its rate can next become non-zero, instead of polling.
    ///
    /// [`Steps`]: RateSchedule::Steps
    /// [`Sinusoid`]: RateSchedule::Sinusoid
    pub fn next_change_after(&self, t: f64) -> Option<f64> {
        match self {
            Self::Steps { steps } => steps.iter().map(|&(at, _)| at).find(|&at| at > t),
            Self::Sinusoid { .. } => None,
            Self::Bursty {
                period_s,
                burst_len_s,
                ..
            } => {
                let phase = t.rem_euclid(*period_s);
                let cycle_start = t - phase;
                if phase < *burst_len_s {
                    Some(cycle_start + burst_len_s)
                } else {
                    Some(cycle_start + period_s)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Grouping, TopologyBuilder};

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new("t");
        let s = b.spout("s", 2, 0.05);
        let x = b.bolt("x", 2, 0.1);
        b.edge(s, x, Grouping::Shuffle, 1.0, 10);
        b.build().unwrap()
    }

    #[test]
    fn uniform_covers_all_spouts() {
        let t = topo();
        let w = Workload::uniform(&t, 100.0);
        assert_eq!(w.rates(), &[(0, 100.0)]);
        assert_eq!(w.total_rate(), 100.0);
    }

    #[test]
    fn rejects_bolt_rate() {
        let t = topo();
        assert!(Workload::new(vec![(1, 10.0)], &t).is_err());
        assert!(Workload::new(vec![(5, 10.0)], &t).is_err());
        assert!(Workload::new(vec![(0, -1.0)], &t).is_err());
    }

    #[test]
    fn scaled_multiplies() {
        let t = topo();
        let w = Workload::uniform(&t, 100.0).scaled(1.5);
        assert_eq!(w.total_rate(), 150.0);
    }

    #[test]
    fn features_normalized() {
        let t = topo();
        let w = Workload::uniform(&t, 500.0);
        assert_eq!(w.feature_vector(1000.0), vec![0.5]);
    }

    #[test]
    fn schedule_steps() {
        let s = RateSchedule::step_at(1200.0, 1.5);
        assert_eq!(s.multiplier_at(0.0), 1.0);
        assert_eq!(s.multiplier_at(1199.9), 1.0);
        assert_eq!(s.multiplier_at(1200.0), 1.5);
        assert_eq!(s.multiplier_at(5000.0), 1.5);
        assert_eq!(s.change_points(), vec![1200.0]);
    }

    #[test]
    fn multi_step_schedule_sorted() {
        let s = RateSchedule::constant()
            .with_step(100.0, 2.0)
            .with_step(50.0, 1.5);
        assert_eq!(s.multiplier_at(75.0), 1.5);
        assert_eq!(s.multiplier_at(150.0), 2.0);
    }

    #[test]
    fn copy_scaled_from_reuses_buffer() {
        let t = topo();
        let base = Workload::uniform(&t, 100.0);
        let mut w = Workload::uniform(&t, 1.0);
        w.copy_scaled_from(&base, 1.5);
        assert_eq!(w, base.scaled(1.5));
        let ptr = w.rates.as_ptr();
        w.copy_scaled_from(&base, 0.5);
        assert_eq!(ptr, w.rates.as_ptr(), "rate buffer must be reused");
        assert_eq!(w.total_rate(), 50.0);
    }

    #[test]
    fn sinusoid_shape() {
        let s = RateSchedule::sinusoid(1.0, 0.4, 3600.0);
        assert!((s.multiplier_at(0.0) - 1.0).abs() < 1e-12);
        assert!((s.multiplier_at(900.0) - 1.4).abs() < 1e-12); // quarter period: peak
        assert!((s.multiplier_at(2700.0) - 0.6).abs() < 1e-12); // trough
        assert_eq!(s.bounds(), (0.6, 1.4));
        assert_eq!(s.period_s(), Some(3600.0));
        assert!(s.change_points().is_empty());
    }

    #[test]
    fn bursty_shape() {
        let s = RateSchedule::bursty(0.8, 2.5, 300.0, 30.0);
        assert_eq!(s.multiplier_at(0.0), 2.5);
        assert_eq!(s.multiplier_at(29.9), 2.5);
        assert_eq!(s.multiplier_at(30.0), 0.8);
        assert_eq!(s.multiplier_at(299.9), 0.8);
        assert_eq!(s.multiplier_at(300.0), 2.5); // next burst
        assert_eq!(s.bounds(), (0.8, 2.5));
        assert_eq!(s.period_s(), Some(300.0));
    }

    #[test]
    fn bounds_count_only_attainable_multipliers() {
        // A step at t = 0 shadows the implicit leading 1.0 entirely.
        assert_eq!(RateSchedule::step_at(0.0, 2.0).bounds(), (2.0, 2.0));
        assert_eq!(RateSchedule::step_at(10.0, 2.0).bounds(), (1.0, 2.0));
        // A step shadowed by another at the same instant never applies.
        let s = RateSchedule::constant()
            .with_step(5.0, 9.0)
            .with_step(5.0, 2.0);
        assert_eq!(s.multiplier_at(5.0), 2.0);
        assert_eq!(s.bounds(), (1.0, 2.0));
        assert_eq!(RateSchedule::constant().bounds(), (1.0, 1.0));
    }

    #[test]
    fn next_change_after_finds_discontinuities() {
        let s = RateSchedule::constant()
            .with_step(100.0, 0.0)
            .with_step(400.0, 1.0);
        assert_eq!(s.next_change_after(0.0), Some(100.0));
        assert_eq!(s.next_change_after(100.0), Some(400.0));
        assert_eq!(s.next_change_after(400.0), None);
        assert_eq!(RateSchedule::constant().next_change_after(0.0), None);

        let b = RateSchedule::bursty(0.0, 2.0, 300.0, 30.0);
        assert_eq!(b.next_change_after(0.0), Some(30.0)); // burst ends
        assert_eq!(b.next_change_after(30.0), Some(300.0)); // next burst
        assert_eq!(b.next_change_after(299.0), Some(300.0));
        assert_eq!(b.next_change_after(310.0), Some(330.0));

        let w = RateSchedule::sinusoid(1.0, 1.0, 60.0);
        assert_eq!(w.next_change_after(0.0), None);
        assert!(
            w.period_s().is_some(),
            "sinusoid None means continuous, not final"
        );
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn sinusoid_rejects_negative_swing() {
        let _ = RateSchedule::sinusoid(1.0, 1.5, 60.0);
    }

    #[test]
    #[should_panic(expected = "burst_len_s")]
    fn bursty_rejects_burst_longer_than_period() {
        let _ = RateSchedule::bursty(1.0, 2.0, 10.0, 20.0);
    }

    mod schedule_properties {
        use super::*;
        use proptest::prelude::*;

        fn any_schedule() -> impl Strategy<Value = RateSchedule> {
            prop_oneof![
                // Steps: up to 4 sorted change points.
                prop::collection::vec((0.0..5_000.0f64, 0.0..3.0f64), 0..4).prop_map(|steps| {
                    steps
                        .into_iter()
                        .fold(RateSchedule::constant(), |s, (t, m)| s.with_step(t, m))
                }),
                (0.2..2.0f64, 0.0..1.0f64, 10.0..10_000.0f64).prop_map(|(mean, frac, period)| {
                    RateSchedule::sinusoid(mean, mean * frac, period)
                }),
                (0.0..2.0f64, 0.0..4.0f64, 1.0..5_000.0f64, 0.01..1.0f64).prop_map(
                    |(base, burst, period, frac)| {
                        RateSchedule::bursty(base, burst, period, period * frac)
                    }
                ),
            ]
        }

        proptest! {
            /// The multiplier never leaves the [`RateSchedule::bounds`]
            /// envelope and never goes negative, at any sample time.
            #[test]
            fn multiplier_stays_within_bounds(s in any_schedule(), t in 0.0..100_000.0f64) {
                let (lo, hi) = s.bounds();
                let m = s.multiplier_at(t);
                prop_assert!(m >= 0.0, "negative multiplier {m}");
                prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "{m} outside [{lo}, {hi}]");
            }

            /// Periodic schedules repeat exactly: shifting the sample time
            /// by any whole number of periods never changes the multiplier.
            #[test]
            fn periodic_schedules_repeat(s in any_schedule(), t in 0.0..10_000.0f64, k in 1u32..8) {
                if let Some(period) = s.period_s() {
                    let a = s.multiplier_at(t);
                    let b = s.multiplier_at(t + period * k as f64);
                    prop_assert!((a - b).abs() < 1e-6, "{a} != {b} after {k} periods");
                }
            }

            /// Step schedules are flat between change points: sampling
            /// anywhere between two adjacent change points matches the
            /// value right at the earlier one.
            #[test]
            fn steps_are_piecewise_constant(s in any_schedule(), frac in 0.0..1.0f64) {
                if s.period_s().is_none() {
                    let mut points = s.change_points();
                    points.push(f64::INFINITY);
                    let mut prev = 0.0;
                    for &p in &points {
                        let within = prev + (p.min(prev + 1e6) - prev) * frac;
                        prop_assert_eq!(s.multiplier_at(within), s.multiplier_at(prev));
                        if !p.is_finite() { break; }
                        prev = p;
                    }
                }
            }
        }
    }
}
