//! The tuple-level discrete-event simulator of the DSDPS.
//!
//! Faithful to the runtime behaviour the paper's scheduler experiences on
//! Storm:
//!
//! * spout executors emit root tuples as Poisson processes at the workload
//!   rate (scaled by the [`RateSchedule`]);
//! * every executor is a FIFO queue + server; service times follow the
//!   component's distribution, inflated by machine CPU contention
//!   (executors sharing a machine's cores) and by post-(re)start warm-up;
//! * processed tuples spawn children along outgoing edges (probabilistic
//!   rounding of the edge selectivity) routed by the edge grouping, paying
//!   intra-process or inter-machine transfer delay (plus a congestion term
//!   driven by the machine's measured cross-traffic);
//! * tuple trees are acked exactly like Storm's acker; the complete latency
//!   feeds a sliding-window average — the paper's "average tuple processing
//!   time";
//! * re-deployments pause only the moved executors (the paper's
//!   minimal-impact custom scheduler) and restart their warm-up, producing
//!   the transient spike-then-stabilize curves of Figures 6–12.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::assignment::Assignment;
use crate::cluster::ClusterSpec;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::event::{EventKind, EventQueue};
use crate::latency::LatencyTracker;
use crate::rng::{self, sample_count, sample_exponential, sample_service_time, Zipf};
use crate::stats::RuntimeStats;
use crate::topology::{key_to_executor, Grouping, Topology};
use crate::tuple::{AckOutcome, TupleTracker};
use crate::workload::{RateSchedule, Workload};

/// EWMA time constant for the per-machine cross-traffic estimate (s).
const TRAFFIC_TAU_S: f64 = 5.0;

#[derive(Debug)]
pub(crate) struct ExecutorState {
    /// Queued tuples: `(root id, arrived-remote)`.
    pub(crate) queue: VecDeque<(u64, bool)>,
    /// `(root id, machine service started on)` — the machine is recorded
    /// because a re-deployment may move the executor mid-service, and the
    /// busy count must be released on the machine that acquired it.
    pub(crate) in_service: Option<(u64, usize)>,
    pub(crate) started_at: f64,
    pub(crate) paused_until: f64,
    pub(crate) processed: u64,
    pub(crate) arrived: u64,
    /// A spout executor whose emission rate is zero and which has no
    /// pending emission event — it contributes no per-epoch work until a
    /// workload/schedule mutation wakes it. Event-driven backend only; the
    /// dense oracle polls instead.
    pub(crate) parked: bool,
}

impl ExecutorState {
    fn new(now: f64) -> Self {
        Self {
            queue: VecDeque::new(),
            in_service: None,
            started_at: now,
            paused_until: now,
            processed: 0,
            arrived: 0,
            parked: false,
        }
    }

    fn idle(&self) -> bool {
        self.in_service.is_none()
    }

    fn paused(&self, now: f64) -> bool {
        now < self.paused_until
    }
}

#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct MachineState {
    pub(crate) busy_executors: usize,
    pub(crate) cross_kib_rate: f64,
    pub(crate) last_traffic_at: f64,
    /// A failed machine stops emitting and serving; tuples routed to its
    /// executors queue up and overflow (Storm's timeout/replay path).
    pub(crate) failed: bool,
}

impl MachineState {
    /// Decays then bumps the outbound cross-traffic EWMA (KiB/s).
    fn note_cross_traffic(&mut self, now: f64, kib: f64) {
        self.decay(now);
        self.cross_kib_rate += kib / TRAFFIC_TAU_S;
    }

    fn decay(&mut self, now: f64) {
        let dt = (now - self.last_traffic_at).max(0.0);
        if dt > 0.0 {
            self.cross_kib_rate *= (-dt / TRAFFIC_TAU_S).exp();
            self.last_traffic_at = now;
        }
    }

    fn cross_rate(&mut self, now: f64) -> f64 {
        self.decay(now);
        self.cross_kib_rate
    }
}

/// The discrete-event DSDPS engine. See the module docs for the model.
///
/// Every mutable field below is captured bit-exactly by
/// [`SimEngine::save_state`] (the `crate::snapshot` codec) so a recovered
/// master can resume the simulation mid-run without perturbing the
/// trajectory.
pub struct SimEngine {
    pub(crate) topology: Topology,
    pub(crate) cluster: ClusterSpec,
    pub(crate) config: SimConfig,
    pub(crate) workload: Workload,
    pub(crate) schedule: RateSchedule,
    pub(crate) assignment: Assignment,
    pub(crate) clock: f64,
    pub(crate) events: EventQueue,
    pub(crate) executors: Vec<ExecutorState>,
    pub(crate) machines: Vec<MachineState>,
    pub(crate) tracker: TupleTracker,
    pub(crate) latency: LatencyTracker,
    pub(crate) arrival_rng: StdRng,
    pub(crate) service_rng: StdRng,
    pub(crate) routing_rng: StdRng,
    pub(crate) fields_keys: Vec<Option<Zipf>>,
    pub(crate) events_processed: u64,
    pub(crate) started: bool,
}

impl SimEngine {
    /// Builds an engine; call [`SimEngine::deploy`] to start processing.
    pub fn new(
        topology: Topology,
        cluster: ClusterSpec,
        workload: Workload,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        cluster.validate()?;
        let n = topology.n_executors();
        let fields_keys = topology
            .edges()
            .iter()
            .map(|e| match e.grouping {
                Grouping::Fields { n_keys, skew } => Some(Zipf::new(n_keys, skew)),
                _ => None,
            })
            .collect();
        Ok(Self {
            executors: (0..n).map(|_| ExecutorState::new(0.0)).collect(),
            machines: vec![MachineState::default(); cluster.n_machines()],
            tracker: TupleTracker::new(),
            latency: LatencyTracker::new(config.latency_window_s),
            arrival_rng: rng::stream(config.seed, 1),
            service_rng: rng::stream(config.seed, 2),
            routing_rng: rng::stream(config.seed, 3),
            fields_keys,
            events: if dense_events_requested() {
                EventQueue::new_dense()
            } else {
                EventQueue::new()
            },
            clock: 0.0,
            events_processed: 0,
            started: false,
            // Placeholder until the first deploy.
            assignment: Assignment::round_robin(&topology, &cluster),
            schedule: RateSchedule::constant(),
            workload,
            topology,
            cluster,
            config,
        })
    }

    /// Sets the workload multiplier schedule. Safe to call before, between
    /// or *during* runs: spout emissions re-read the schedule at every
    /// event, so a new schedule takes effect within one inter-arrival gap.
    pub fn set_rate_schedule(&mut self, schedule: RateSchedule) {
        self.schedule = schedule;
        self.wake_parked_spouts();
    }

    /// Selects the dense linear-scan event backend — the correctness
    /// oracle and bench baseline whose per-event cost is O(pending events)
    /// instead of O(log) — or the default calendar heap. Also selectable
    /// process-wide via the `DSS_DENSE_EVENTS` env var (any non-empty
    /// value other than `0`).
    ///
    /// # Panics
    /// Panics after the first deploy: the backend cannot change mid-run.
    pub fn set_dense_events(&mut self, dense: bool) {
        assert!(
            !self.started,
            "event backend must be chosen before the first deploy"
        );
        if dense != self.events.is_dense() {
            self.events = if dense {
                EventQueue::new_dense()
            } else {
                EventQueue::new()
            };
        }
    }

    /// Whether the dense linear-scan event backend is active.
    pub fn dense_events(&self) -> bool {
        self.events.is_dense()
    }

    /// Number of pending events — the quantity the event-driven backend
    /// keeps proportional to *busy* executors while the dense oracle keeps
    /// one permanent poll per idle spout.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// The workload multiplier schedule in effect.
    pub fn rate_schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    /// Replaces the base workload (rates take effect from the current
    /// simulated time onward — the mid-run mutation an online controller
    /// performs when the offered load changes between decision epochs).
    pub fn set_workload(&mut self, workload: Workload) {
        self.workload = workload;
        self.wake_parked_spouts();
    }

    /// The base workload currently driving the spouts (before the
    /// [`RateSchedule`] multiplier).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Deploys a scheduling solution.
    ///
    /// The first call starts the topology (all executors begin their
    /// warm-up; spouts start emitting). Subsequent calls re-deploy: only
    /// executors whose machine changed are paused for
    /// `config.migration_pause_s` and restart their warm-up, mirroring the
    /// paper's minimal-impact deployment.
    pub fn deploy(&mut self, assignment: Assignment) -> Result<(), SimError> {
        assignment.validate_for(&self.topology, &self.cluster)?;
        if !self.started {
            self.started = true;
            self.assignment = assignment;
            for e in 0..self.topology.n_executors() {
                self.executors[e].started_at = self.clock;
            }
            for spout_comp in self.topology.spouts() {
                for e in self.topology.executors_of(spout_comp) {
                    self.schedule_next_emit(e);
                }
            }
            return Ok(());
        }
        let moved = self.assignment.diff(&assignment);
        for &e in &moved {
            let ex = &mut self.executors[e];
            ex.paused_until = self.clock + self.config.migration_pause_s;
            ex.started_at = self.clock; // warm-up restarts on the new machine
            self.events
                .push(ex.paused_until, EventKind::MigrationDone { executor: e });
        }
        self.assignment = assignment;
        Ok(())
    }

    /// Advances simulated time to `t_end` (seconds), processing all events.
    ///
    /// # Panics
    /// Panics if `t_end` is behind the current clock.
    pub fn run_until(&mut self, t_end: f64) {
        assert!(
            t_end >= self.clock,
            "cannot run backwards: {t_end} < {}",
            self.clock
        );
        while let Some(t) = self.events.peek_time() {
            if t > t_end {
                break;
            }
            let ev = self.events.pop().expect("peeked event");
            self.clock = ev.time;
            self.events_processed += 1;
            match ev.kind {
                EventKind::SpoutEmit { executor } => self.on_spout_emit(executor),
                EventKind::TupleArrival {
                    executor,
                    root,
                    remote,
                } => self.enqueue_tuple(executor, root, remote),
                EventKind::ServiceComplete { executor, root } => {
                    self.on_service_complete(executor, root)
                }
                EventKind::MigrationDone { executor } => self.try_start_service(executor),
            }
        }
        self.clock = t_end;
    }

    /// Incremental decision-epoch stepping: advances the event loop by
    /// `epoch_s` simulated seconds from the current clock and returns the
    /// sliding-window average tuple processing time at the new clock
    /// (`None` while the window is still empty — e.g. right after the
    /// first deploy, before any tuple tree has completed).
    ///
    /// This is the training-backend API: an RL environment deploys an
    /// assignment ([`SimEngine::deploy`] — a minimal-impact re-deployment
    /// when the topology is already running), steps one epoch, and reads
    /// the latency it observed, without ever restarting the engine.
    ///
    /// # Panics
    /// Panics when `epoch_s` is negative.
    pub fn step_epoch(&mut self, epoch_s: f64) -> Option<f64> {
        assert!(epoch_s >= 0.0, "epoch length must be non-negative");
        let t = self.clock + epoch_s;
        self.run_until(t);
        self.window_avg_latency_ms()
    }

    /// Current simulated time (s).
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// The deployed assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The cluster spec.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The simulation configuration (a recovering master clones it to
    /// rebuild an identical engine before restoring a snapshot).
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Events processed since construction (throughput metric for benches).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Sliding-window average tuple processing time at the current clock.
    pub fn window_avg_latency_ms(&mut self) -> Option<f64> {
        let now = self.clock;
        self.latency.window_avg_ms(now)
    }

    /// The paper's measurement protocol: run on, sampling the window
    /// average `config.measure_samples` times at `config.measure_interval_s`
    /// spacing, and return the mean of the non-empty samples.
    pub fn measure_avg_latency_ms(&mut self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for _ in 0..self.config.measure_samples {
            let t = self.clock + self.config.measure_interval_s;
            self.run_until(t);
            if let Some(v) = self.window_avg_latency_ms() {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Snapshot of runtime statistics at the current clock. Executor rates
    /// are lifetime averages (arrivals / elapsed); sojourn estimates are not
    /// tracked per-executor by the engine (the analytic model provides
    /// them), so they are reported as zeros here.
    pub fn stats(&mut self) -> RuntimeStats {
        let elapsed = self.clock.max(1e-9);
        let executor_rates = self
            .executors
            .iter()
            .map(|e| e.arrived as f64 / elapsed)
            .collect();
        let mut machine_cpu = vec![0.0; self.cluster.n_machines()];
        for e in 0..self.topology.n_executors() {
            let comp = &self.topology.components()[self.topology.component_of(e)];
            let rate = self.executors[e].arrived as f64 / elapsed;
            machine_cpu[self.assignment.machine_of(e)] += rate * comp.service_mean_ms / 1000.0;
        }
        let now = self.clock;
        let cross: Vec<f64> = self
            .machines
            .iter_mut()
            .map(|m| m.cross_rate(now))
            .collect();
        RuntimeStats {
            avg_latency_ms: self.latency.window_avg_ms(now).unwrap_or(0.0),
            executor_rates,
            executor_sojourn_ms: vec![0.0; self.topology.n_executors()],
            machine_cpu_cores: machine_cpu,
            machine_cross_kib_s: cross,
            edge_transfer_ms: vec![0.0; self.topology.edges().len()],
            completed: self.tracker.completed(),
            failed: self.tracker.failed(),
        }
    }

    /// Fail a machine: its executors stop emitting and serving from this
    /// instant. Tuples already queued there stay queued; tuples still
    /// routed there accumulate until the queue overflows and the tree is
    /// failed — exactly the back-pressure-then-timeout behaviour a dead
    /// Storm worker causes. In-flight service completes (a tuple being
    /// processed at the instant of death is a coin flip; completing it
    /// keeps the accounting conservative).
    pub fn fail_machine(&mut self, machine: usize) {
        assert!(machine < self.cluster.n_machines(), "machine out of range");
        self.machines[machine].failed = true;
    }

    /// Recover a failed machine: executors still assigned to it resume
    /// serving their queues.
    pub fn recover_machine(&mut self, machine: usize) {
        assert!(machine < self.cluster.n_machines(), "machine out of range");
        if !std::mem::replace(&mut self.machines[machine].failed, false) {
            return;
        }
        for e in 0..self.topology.n_executors() {
            if self.assignment.machine_of(e) == machine {
                self.try_start_service(e);
            }
        }
    }

    /// Whether a machine is currently failed.
    pub fn machine_failed(&self, machine: usize) -> bool {
        self.machines[machine].failed
    }

    /// Tuple trees emitted / completed / failed / in flight.
    pub fn tuple_counts(&self) -> (u64, u64, u64, usize) {
        (
            self.tracker.emitted(),
            self.tracker.completed(),
            self.tracker.failed(),
            self.tracker.in_flight(),
        )
    }

    // ----- event handlers ---------------------------------------------

    fn on_spout_emit(&mut self, executor: usize) {
        // Schedule the next emission first so rate changes apply smoothly
        // (and so emission resumes if the executor later moves off a
        // failed machine).
        let alive = !self.machines[self.assignment.machine_of(executor)].failed;
        let emitting = alive && self.current_rate(executor) > 1e-9;
        self.schedule_next_emit(executor);
        if emitting {
            let root = self.tracker.emit_root(self.clock);
            self.enqueue_tuple(executor, root, false);
        }
    }

    /// Current per-executor emission rate (tuples/s) for a spout executor.
    fn current_rate(&self, executor: usize) -> f64 {
        self.base_rate(executor) * self.schedule.multiplier_at(self.clock)
    }

    /// Per-executor base rate before the schedule multiplier (tuples/s).
    fn base_rate(&self, executor: usize) -> f64 {
        let comp = self.topology.component_of(executor);
        let parallelism = self.topology.components()[comp].parallelism as f64;
        let base_rate: f64 = self
            .workload
            .rates()
            .iter()
            .filter(|&&(c, _)| c == comp)
            .map(|&(_, r)| r)
            .sum();
        base_rate / parallelism
    }

    fn enqueue_tuple(&mut self, executor: usize, root: u64, remote: bool) {
        let ex = &mut self.executors[executor];
        ex.arrived += 1;
        if ex.queue.len() >= self.config.max_queue_len {
            // Overflow: Storm would time the tuple out and replay; the
            // simulator records the failure and drops the tree.
            self.tracker.fail_tree(root);
            return;
        }
        ex.queue.push_back((root, remote));
        self.try_start_service(executor);
    }

    fn try_start_service(&mut self, executor: usize) {
        let now = self.clock;
        if !self.executors[executor].idle()
            || self.executors[executor].paused(now)
            || self.executors[executor].queue.is_empty()
            || self.machines[self.assignment.machine_of(executor)].failed
        {
            return;
        }
        let (root, remote) = self.executors[executor]
            .queue
            .pop_front()
            .expect("non-empty queue");
        let machine = self.assignment.machine_of(executor);
        self.machines[machine].busy_executors += 1;
        let busy = self.machines[machine].busy_executors;
        let cores = self.cluster.machines[machine].cores;
        let slowdown = (busy as f64 / cores as f64).max(1.0);

        let comp = &self.topology.components()[self.topology.component_of(executor)];
        let warmup = self
            .config
            .warmup_multiplier(now - self.executors[executor].started_at);
        // Remote arrivals pay deserialization CPU before user code runs.
        let deser = if remote {
            self.cluster.network.deserialize_ms
        } else {
            0.0
        };
        let service_ms =
            (sample_service_time(&mut self.service_rng, comp.service_mean_ms, comp.service_cv)
                + deser)
                * warmup
                * slowdown;
        self.executors[executor].in_service = Some((root, machine));
        self.events.push(
            now + service_ms / 1000.0,
            EventKind::ServiceComplete { executor, root },
        );
    }

    fn on_service_complete(&mut self, executor: usize, root: u64) {
        let (taken_root, machine) = self.executors[executor]
            .in_service
            .take()
            .expect("completion without service");
        debug_assert_eq!(taken_root, root);
        debug_assert!(self.machines[machine].busy_executors > 0);
        self.machines[machine].busy_executors -= 1;
        self.executors[executor].processed += 1;

        // Route children along every outgoing edge.
        let comp_idx = self.topology.component_of(executor);
        let out_edges: Vec<usize> = self.topology.out_edges_of(comp_idx).to_vec();
        let mut children = 0u64;
        let mut remote_children = 0u64;
        for ei in out_edges {
            let (sent, remote) = self.route_edge(ei, executor, root);
            children += sent;
            remote_children += remote;
        }
        // Serialization CPU: the executor stays busy while kryo-encoding
        // the tuples it just sent off-machine.
        if remote_children > 0 {
            let ser_ms = self.cluster.network.serialize_ms * remote_children as f64;
            if ser_ms > 0.0 {
                let until = self.clock + ser_ms / 1000.0;
                let ex = &mut self.executors[executor];
                if until > ex.paused_until {
                    ex.paused_until = until;
                    self.events
                        .push(until, EventKind::MigrationDone { executor });
                }
            }
        }
        match self.tracker.complete_one(root, children) {
            AckOutcome::Completed { emitted_at } => {
                let latency_ms = (self.clock - emitted_at) * 1000.0 + self.config.ack_overhead_ms;
                self.latency.record(self.clock, latency_ms);
            }
            AckOutcome::Pending | AckOutcome::Unknown => {}
        }
        self.try_start_service(executor);
    }

    /// Emits this tuple's children on edge `ei`; returns
    /// `(total sent, sent off-machine)`.
    fn route_edge(&mut self, ei: usize, src_executor: usize, root: u64) -> (u64, u64) {
        let edge = self.topology.edges()[ei].clone();
        let dst_parallelism = self.topology.components()[edge.to].parallelism;
        let dst_base = self.topology.executor_base(edge.to);
        let count = sample_count(&mut self.routing_rng, edge.selectivity);
        let mut sent = 0u64;
        let mut remote = 0u64;
        for _ in 0..count {
            match edge.grouping {
                Grouping::Shuffle => {
                    let d = self.routing_rng.random_range(0..dst_parallelism);
                    remote += self.send_tuple(src_executor, dst_base + d, edge.tuple_bytes, root);
                    sent += 1;
                }
                Grouping::Fields { .. } => {
                    let zipf = self.fields_keys[ei].as_ref().expect("fields zipf");
                    let key = zipf.sample(&mut self.routing_rng);
                    let d = key_to_executor(key, dst_parallelism);
                    remote += self.send_tuple(src_executor, dst_base + d, edge.tuple_bytes, root);
                    sent += 1;
                }
                Grouping::All => {
                    for d in 0..dst_parallelism {
                        remote +=
                            self.send_tuple(src_executor, dst_base + d, edge.tuple_bytes, root);
                        sent += 1;
                    }
                }
                Grouping::Global => {
                    remote += self.send_tuple(src_executor, dst_base, edge.tuple_bytes, root);
                    sent += 1;
                }
            }
        }
        (sent, remote)
    }

    /// Sends one tuple; returns 1 when it crossed machines, 0 otherwise.
    fn send_tuple(&mut self, src: usize, dst: usize, bytes: usize, root: u64) -> u64 {
        let is_remote = self.assignment.machine_of(src) != self.assignment.machine_of(dst);
        let ms = self.transfer_delay_ms(src, dst, bytes);
        self.events.push(
            self.clock + ms / 1000.0,
            EventKind::TupleArrival {
                executor: dst,
                root,
                remote: is_remote,
            },
        );
        u64::from(is_remote)
    }

    fn transfer_delay_ms(&mut self, src: usize, dst: usize, bytes: usize) -> f64 {
        let a = self.assignment.machine_of(src);
        let b = self.assignment.machine_of(dst);
        let base = self.cluster.base_transfer_ms(a, b, bytes);
        if a == b {
            return base;
        }
        let now = self.clock;
        self.machines[a].note_cross_traffic(now, bytes as f64 / 1024.0);
        let util = (self.machines[a].cross_rate(now) / self.cluster.network.nic_kib_per_s).min(3.0);
        base * (1.0 + self.cluster.network.congestion * util)
    }

    fn schedule_next_emit(&mut self, executor: usize) {
        let rate = self.current_rate(executor);
        if rate > 1e-9 {
            let gap = sample_exponential(&mut self.arrival_rng, 1.0 / rate);
            self.events
                .push(self.clock + gap, EventKind::SpoutEmit { executor });
            return;
        }
        if self.events.is_dense() {
            // Dense oracle: an idle spout polls for a rate change once a
            // second forever — one permanently pending event per idle
            // spout, exactly the O(cluster-size) per-epoch cost the
            // calendar path avoids. Polls consume no randomness, so the
            // two backends stay bit-identical wherever both emit.
            self.events
                .push(self.clock + 1.0, EventKind::SpoutEmit { executor });
            return;
        }
        // Event-driven path: a silent spout contributes no events. When
        // the silence comes from the schedule (positive base rate, zero
        // multiplier), sleep until the multiplier next changes; a smooth
        // schedule (sinusoid) has no discrete change point, so keep the
        // 1 Hz poll there. A zero *base* rate can only change through
        // set_workload / set_rate_schedule, which wake parked spouts.
        if self.base_rate(executor) > 1e-9 {
            match self.schedule.next_change_after(self.clock) {
                Some(t) => self.events.push(t, EventKind::SpoutEmit { executor }),
                None if self.schedule.period_s().is_some() => self
                    .events
                    .push(self.clock + 1.0, EventKind::SpoutEmit { executor }),
                None => self.executors[executor].parked = true,
            }
            return;
        }
        self.executors[executor].parked = true;
    }

    /// Re-kicks spout executors parked by a zero emission rate. Workload
    /// and schedule mutations are the only ways a parked spout's rate can
    /// become non-zero, so this runs after both. Spouts are visited in
    /// executor-index order, keeping the wake-up event sequence (and thus
    /// the whole trajectory) deterministic.
    fn wake_parked_spouts(&mut self) {
        if !self.started {
            return;
        }
        for spout_comp in self.topology.spouts() {
            for e in self.topology.executors_of(spout_comp) {
                if self.executors[e].parked {
                    self.executors[e].parked = false;
                    self.schedule_next_emit(e);
                }
            }
        }
    }
}

/// Whether `DSS_DENSE_EVENTS` asks for the dense oracle backend.
fn dense_events_requested() -> bool {
    std::env::var("DSS_DENSE_EVENTS").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn chain_topology() -> Topology {
        let mut b = TopologyBuilder::new("chain");
        let s = b.spout("spout", 2, 0.05);
        let x = b.bolt("worker", 4, 0.3);
        let y = b.bolt("sink", 2, 0.1);
        b.edge(s, x, Grouping::Shuffle, 1.0, 256);
        b.edge(x, y, Grouping::Shuffle, 0.5, 128);
        b.build().unwrap()
    }

    fn engine(seed: u64) -> SimEngine {
        let topo = chain_topology();
        let cluster = ClusterSpec::homogeneous(4);
        let workload = Workload::uniform(&topo, 200.0);
        SimEngine::new(topo, cluster, workload, SimConfig::steady_state(seed)).unwrap()
    }

    #[test]
    fn processes_tuples_and_measures_latency() {
        let mut eng = engine(1);
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(30.0);
        let (emitted, completed, failed, _inflight) = eng.tuple_counts();
        assert!(emitted > 4000, "emitted {emitted}");
        assert!(completed > 4000, "completed {completed}");
        assert_eq!(failed, 0);
        let avg = eng.window_avg_latency_ms().expect("latency measured");
        // Chain of ~0.45ms service + transfers: sane range.
        assert!(avg > 0.3 && avg < 10.0, "avg {avg}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut eng = engine(seed);
            let rr = Assignment::round_robin(eng.topology(), eng.cluster());
            eng.deploy(rr).unwrap();
            eng.run_until(20.0);
            let counts = eng.tuple_counts();
            (counts, eng.window_avg_latency_ms())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn tuple_conservation_holds() {
        let mut eng = engine(2);
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(15.0);
        let (emitted, completed, failed, in_flight) = eng.tuple_counts();
        assert_eq!(emitted, completed + failed + in_flight as u64);
    }

    #[test]
    fn emission_rate_matches_workload() {
        let mut eng = engine(3);
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(50.0);
        let (emitted, ..) = eng.tuple_counts();
        let rate = emitted as f64 / 50.0;
        assert!((rate - 200.0).abs() < 20.0, "rate {rate}");
    }

    #[test]
    fn rate_schedule_scales_emission() {
        let mut eng = engine(4);
        eng.set_rate_schedule(RateSchedule::step_at(25.0, 2.0));
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(25.0);
        let (before, ..) = eng.tuple_counts();
        eng.run_until(50.0);
        let (after, ..) = eng.tuple_counts();
        let first_half = before as f64 / 25.0;
        let second_half = (after - before) as f64 / 25.0;
        assert!(
            second_half / first_half > 1.7,
            "{first_half} -> {second_half}"
        );
    }

    #[test]
    fn step_epoch_matches_run_until() {
        // Stepping in epochs is exactly incremental: the trajectory is
        // bit-identical to one long run_until over the same span.
        let mut stepped = engine(11);
        let mut straight = engine(11);
        let rr = Assignment::round_robin(stepped.topology(), stepped.cluster());
        stepped.deploy(rr.clone()).unwrap();
        straight.deploy(rr).unwrap();
        let mut last = None;
        for _ in 0..15 {
            last = stepped.step_epoch(2.0);
        }
        straight.run_until(30.0);
        assert_eq!(stepped.now(), 30.0);
        assert_eq!(stepped.tuple_counts(), straight.tuple_counts());
        // The event trajectory is bit-identical; the window average may
        // differ only by float-summation order of the sliding window.
        let (a, b) = (last.unwrap(), straight.window_avg_latency_ms().unwrap());
        assert!((a - b).abs() < 1e-9 * b.max(1.0), "{a} vs {b}");
        assert!(a > 0.0);
    }

    #[test]
    fn step_epoch_before_completions_is_none() {
        let mut eng = engine(12);
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        // An epoch far shorter than any service + transfer chain: no tree
        // can have completed yet.
        assert_eq!(eng.step_epoch(1e-7), None);
        assert!(eng.step_epoch(10.0).is_some());
    }

    #[test]
    fn mid_run_workload_mutation_shifts_emission() {
        let mut eng = engine(13);
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(25.0);
        let (before, ..) = eng.tuple_counts();
        let doubled = eng.workload().scaled(2.0);
        eng.set_workload(doubled);
        eng.run_until(50.0);
        let (after, ..) = eng.tuple_counts();
        let first_half = before as f64 / 25.0;
        let second_half = (after - before) as f64 / 25.0;
        assert!(
            second_half / first_half > 1.7,
            "{first_half} -> {second_half}"
        );
    }

    #[test]
    fn sinusoid_schedule_modulates_emission() {
        // Peak quarter-period vs trough quarter-period of a ±60% wave:
        // emission counts must differ strongly between the two windows.
        let mut eng = engine(14);
        eng.set_rate_schedule(RateSchedule::sinusoid(1.0, 0.6, 40.0));
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(5.0);
        let (t0, ..) = eng.tuple_counts();
        eng.run_until(15.0); // around the t=10 peak
        let (t1, ..) = eng.tuple_counts();
        eng.run_until(25.0);
        let (t2, ..) = eng.tuple_counts();
        eng.run_until(35.0); // around the t=30 trough
        let (t3, ..) = eng.tuple_counts();
        let peak = (t1 - t0) as f64;
        let trough = (t3 - t2) as f64;
        assert!(peak > 2.0 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn redeploy_pauses_only_moved_executors() {
        let topo = chain_topology();
        let cluster = ClusterSpec::homogeneous(4);
        let workload = Workload::uniform(&topo, 100.0);
        let mut cfg = SimConfig::steady_state(5);
        cfg.migration_pause_s = 5.0;
        let mut eng = SimEngine::new(topo, cluster, workload, cfg).unwrap();
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr.clone()).unwrap();
        eng.run_until(20.0);
        let moved = rr.with_move(0, (rr.machine_of(0) + 1) % 4);
        eng.deploy(moved).unwrap();
        // The system keeps processing through the migration.
        let (_, before, ..) = eng.tuple_counts();
        eng.run_until(40.0);
        let (_, after, ..) = eng.tuple_counts();
        assert!(after > before);
    }

    #[test]
    fn warmup_inflates_initial_latency() {
        let topo = chain_topology();
        let cluster = ClusterSpec::homogeneous(4);
        let workload = Workload::uniform(&topo, 100.0);
        let mut cfg = SimConfig::steady_state(6);
        cfg.warmup_amplitude = 2.0;
        cfg.warmup_tau_s = 60.0;
        let mut eng = SimEngine::new(topo, cluster, workload, cfg).unwrap();
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(30.0);
        let early = eng.window_avg_latency_ms().unwrap();
        eng.run_until(600.0);
        let late = eng.window_avg_latency_ms().unwrap();
        assert!(
            early > late * 1.3,
            "warm-up should inflate early latency: {early} vs {late}"
        );
    }

    #[test]
    fn overload_drops_instead_of_exploding() {
        let mut b = TopologyBuilder::new("hot");
        let s = b.spout("s", 1, 0.05);
        let x = b.bolt("x", 1, 10.0); // 10 ms service, can do ~100/s
        b.edge(s, x, Grouping::Shuffle, 1.0, 64);
        let topo = b.build().unwrap();
        let cluster = ClusterSpec::homogeneous(1);
        let workload = Workload::uniform(&topo, 500.0); // 5x overload
        let mut cfg = SimConfig::steady_state(7);
        cfg.max_queue_len = 100;
        let mut eng = SimEngine::new(topo, cluster, workload, cfg).unwrap();
        let a = Assignment::new(vec![0, 0], 1).unwrap();
        eng.deploy(a).unwrap();
        eng.run_until(30.0);
        let (_, completed, failed, in_flight) = eng.tuple_counts();
        assert!(failed > 0, "overload must shed load");
        assert!(completed > 0);
        assert!(in_flight < 500, "bounded in-flight, got {in_flight}");
    }

    #[test]
    fn measure_protocol_averages_five_samples() {
        let mut eng = engine(8);
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(10.0);
        let t0 = eng.now();
        let m = eng.measure_avg_latency_ms().unwrap();
        assert!((eng.now() - t0 - 50.0).abs() < 1e-9, "5 x 10s samples");
        assert!(m > 0.0);
    }

    #[test]
    fn colocated_chain_beats_scattered_when_lightly_loaded() {
        // With light load, transfer delay dominates: packing the pipeline
        // on few machines must beat maximal spread.
        let topo = chain_topology();
        let cluster = ClusterSpec::homogeneous(8);
        let workload = Workload::uniform(&topo, 100.0);

        let run = |assignment: Assignment| {
            let topo = chain_topology();
            let cluster = ClusterSpec::homogeneous(8);
            let workload = Workload::uniform(&topo, 100.0);
            let mut eng =
                SimEngine::new(topo, cluster, workload, SimConfig::steady_state(9)).unwrap();
            eng.deploy(assignment).unwrap();
            eng.run_until(60.0);
            eng.window_avg_latency_ms().unwrap()
        };

        let packed = Assignment::new(vec![0, 0, 0, 0, 1, 1, 0, 1], 8).unwrap();
        let scattered = Assignment::round_robin(&topo, &cluster);
        drop((topo, cluster, workload));
        let packed_ms = run(packed);
        let scattered_ms = run(scattered);
        assert!(
            packed_ms < scattered_ms,
            "packed {packed_ms} should beat scattered {scattered_ms}"
        );
    }

    #[test]
    fn failed_machine_sheds_tuples_until_recovered() {
        // Small queues so the outage overflows within the test window.
        let topo = chain_topology();
        let cluster = ClusterSpec::homogeneous(4);
        let workload = Workload::uniform(&topo, 200.0);
        let config = SimConfig {
            max_queue_len: 200,
            ..SimConfig::steady_state(21)
        };
        let mut eng = SimEngine::new(topo, cluster, workload, config).unwrap();
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(20.0);
        let (_, _, failed_before, _) = eng.tuple_counts();
        assert_eq!(failed_before, 0, "healthy cluster fails nothing");

        // Kill a machine hosting bolt executors; the queues feeding them
        // overflow and trees start failing.
        eng.fail_machine(1);
        assert!(eng.machine_failed(1));
        eng.run_until(60.0);
        let (_, _, failed_during, _) = eng.tuple_counts();
        assert!(failed_during > 0, "dead machine must shed load");

        // Recovery drains the backlog; failure count stops growing.
        eng.recover_machine(1);
        assert!(!eng.machine_failed(1));
        eng.run_until(90.0);
        let (_, _, failed_at_recovery, _) = eng.tuple_counts();
        eng.run_until(140.0);
        let (emitted, completed, failed_end, in_flight) = eng.tuple_counts();
        assert_eq!(emitted, completed + failed_end + in_flight as u64);
        let late_failures = failed_end - failed_at_recovery;
        let during_failures = failed_during - failed_before;
        assert!(
            late_failures < during_failures / 4,
            "failures should taper after recovery: {late_failures} vs {during_failures}"
        );
    }

    #[test]
    fn rescheduling_off_a_dead_machine_restores_service() {
        let mut eng = engine(22);
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr.clone()).unwrap();
        eng.run_until(20.0);
        eng.fail_machine(0);
        eng.run_until(40.0);

        // Move everything off machine 0 (what Nimbus's repair does).
        let repaired: Vec<usize> = rr
            .as_slice()
            .iter()
            .map(|&m| if m == 0 { 1 } else { m })
            .collect();
        eng.deploy(Assignment::new(repaired, 4).unwrap()).unwrap();
        let (_, completed_at_repair, failed_at_repair, _) = {
            let c = eng.tuple_counts();
            (c.0, c.1, c.2, c.3)
        };
        eng.run_until(120.0);
        let (_, completed_end, failed_end, _) = {
            let c = eng.tuple_counts();
            (c.0, c.1, c.2, c.3)
        };
        assert!(
            completed_end > completed_at_repair,
            "throughput must resume after repair"
        );
        // New failures after the repair settle to (near) zero.
        let new_failures = failed_end - failed_at_repair;
        assert!(
            new_failures < 50,
            "repair should stop the bleeding, saw {new_failures} new failures"
        );
    }

    #[test]
    fn spouts_on_failed_machines_stop_emitting() {
        let mut eng = engine(23);
        // Pack every spout executor onto machine 3.
        let topo = eng.topology().clone();
        let mut assign = Assignment::round_robin(&topo, eng.cluster())
            .as_slice()
            .to_vec();
        for comp in topo.spouts() {
            for e in topo.executors_of(comp) {
                assign[e] = 3;
            }
        }
        eng.deploy(Assignment::new(assign, 4).unwrap()).unwrap();
        eng.run_until(10.0);
        let (emitted_before, ..) = eng.tuple_counts();
        assert!(emitted_before > 0);
        eng.fail_machine(3);
        eng.run_until(30.0);
        let (emitted_during, ..) = eng.tuple_counts();
        // Emission stops within one inter-arrival gap of the failure.
        assert!(
            emitted_during - emitted_before < 10,
            "spouts kept emitting from a dead machine: {} new",
            emitted_during - emitted_before
        );
        eng.recover_machine(3);
        eng.run_until(50.0);
        let (emitted_after, ..) = eng.tuple_counts();
        assert!(
            emitted_after > emitted_during + 100,
            "emission must resume on recovery"
        );
    }

    /// Two spout lanes feeding one bolt, so per-lane rates can differ.
    fn two_lane_topology() -> Topology {
        let mut b = TopologyBuilder::new("lanes");
        let a = b.spout("lane-a", 2, 0.05);
        let z = b.spout("lane-z", 3, 0.05);
        let x = b.bolt("worker", 2, 0.2);
        b.edge(a, x, Grouping::Shuffle, 1.0, 64);
        b.edge(z, x, Grouping::Shuffle, 1.0, 64);
        b.build().unwrap()
    }

    #[test]
    fn dense_and_calendar_backends_are_bit_identical() {
        // Mostly-idle fleet slice: one live lane, one zero-rate lane, plus
        // a schedule step mid-run. The dense oracle polls the idle lane;
        // the calendar backend parks it — trajectories must still match
        // exactly, epoch by epoch.
        let run = |dense: bool| {
            let topo = two_lane_topology();
            let cluster = ClusterSpec::homogeneous(4);
            let workload = Workload::new(vec![(0, 150.0), (1, 0.0)], &topo).unwrap();
            let mut eng =
                SimEngine::new(topo, cluster, workload, SimConfig::steady_state(31)).unwrap();
            eng.set_dense_events(dense);
            assert_eq!(eng.dense_events(), dense);
            eng.set_rate_schedule(RateSchedule::step_at(12.0, 1.5));
            let rr = Assignment::round_robin(eng.topology(), eng.cluster());
            eng.deploy(rr).unwrap();
            let mut trajectory = Vec::new();
            for _ in 0..12 {
                trajectory.push(eng.step_epoch(2.0));
            }
            (trajectory, eng.tuple_counts())
        };
        let (dense_traj, dense_counts) = run(true);
        let (event_traj, event_counts) = run(false);
        assert_eq!(
            dense_traj, event_traj,
            "latency trajectories must match bit-for-bit"
        );
        assert_eq!(dense_counts, event_counts);
        assert!(dense_traj.iter().any(|l| l.is_some()));
    }

    #[test]
    fn idle_spouts_park_instead_of_polling() {
        let topo = two_lane_topology();
        let cluster = ClusterSpec::homogeneous(4);
        // Lane z (3 executors) is silent.
        let workload = Workload::new(vec![(0, 50.0), (1, 0.0)], &topo).unwrap();
        let mk = |dense: bool| {
            let mut eng = SimEngine::new(
                two_lane_topology(),
                ClusterSpec::homogeneous(4),
                Workload::new(vec![(0, 50.0), (1, 0.0)], &two_lane_topology()).unwrap(),
                SimConfig::steady_state(32),
            )
            .unwrap();
            eng.set_dense_events(dense);
            let rr = Assignment::round_robin(eng.topology(), eng.cluster());
            eng.deploy(rr).unwrap();
            eng.run_until(5.0);
            eng
        };
        drop((topo, cluster, workload));
        let dense = mk(true);
        let event = mk(false);
        // The dense oracle keeps one poll pending per idle spout executor;
        // the event-driven backend has none of them.
        assert!(
            dense.pending_events() >= event.pending_events() + 3,
            "dense {} vs event {}",
            dense.pending_events(),
            event.pending_events()
        );
    }

    #[test]
    fn parked_spouts_wake_on_workload_change() {
        let topo = two_lane_topology();
        let cluster = ClusterSpec::homogeneous(4);
        let silent = Workload::new(vec![(0, 80.0), (1, 0.0)], &topo).unwrap();
        let mut eng = SimEngine::new(topo, cluster, silent, SimConfig::steady_state(33)).unwrap();
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(10.0);
        let (before, ..) = eng.tuple_counts();
        // Wake the silent lane mid-run: emission must resume even though
        // its executors were parked with no pending events.
        let topo = eng.topology().clone();
        eng.set_workload(Workload::new(vec![(0, 80.0), (1, 120.0)], &topo).unwrap());
        eng.run_until(30.0);
        let (after, ..) = eng.tuple_counts();
        let expected = (after - before) as f64 / 20.0;
        assert!(
            (expected - 200.0).abs() < 40.0,
            "woken lane must emit: {expected} tuples/s"
        );
    }

    #[test]
    fn schedule_silenced_spouts_sleep_until_next_change() {
        // Steps to zero at t=10, back to 1 at t=40: the event-driven
        // backend sleeps the spouts across the silent span (no polls) and
        // resumes exactly at the change point.
        let topo = two_lane_topology();
        let cluster = ClusterSpec::homogeneous(4);
        let workload = Workload::new(vec![(0, 100.0), (1, 0.0)], &topo).unwrap();
        let mut eng = SimEngine::new(topo, cluster, workload, SimConfig::steady_state(34)).unwrap();
        eng.set_rate_schedule(
            RateSchedule::constant()
                .with_step(10.0, 0.0)
                .with_step(40.0, 1.0),
        );
        let rr = Assignment::round_robin(eng.topology(), eng.cluster());
        eng.deploy(rr).unwrap();
        eng.run_until(12.0);
        let (at_silence, ..) = eng.tuple_counts();
        eng.run_until(39.9);
        let (still_silent, ..) = eng.tuple_counts();
        assert_eq!(at_silence, still_silent, "no emission while silenced");
        // During the silent span only the sleep-until-change events remain
        // for the live lane (the zero-base lane is parked outright).
        assert!(
            eng.pending_events() <= 4,
            "silent span should hold only wake events, got {}",
            eng.pending_events()
        );
        eng.run_until(70.0);
        let (resumed, ..) = eng.tuple_counts();
        let rate = (resumed - still_silent) as f64 / 30.0;
        assert!((rate - 100.0).abs() < 25.0, "resume rate {rate}");
    }
}
