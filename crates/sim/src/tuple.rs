//! Tuple-tree tracking — the simulator's acker.
//!
//! Storm tracks each root tuple's processing tree; when every derived tuple
//! has been processed, the acker informs the spout and the *complete
//! latency* (the paper's end-to-end tuple processing time) is the duration
//! from emission to that final ack.

use std::collections::HashMap;

/// Outcome of completing one tuple-tree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AckOutcome {
    /// The tree still has pending tuples.
    Pending,
    /// The whole tree finished; the root's emit time is returned.
    Completed {
        /// Simulated emit time (seconds) of the root tuple.
        emitted_at: f64,
    },
    /// The id was unknown (already failed/completed).
    Unknown,
}

/// Tracks pending tuple counts per root tuple.
#[derive(Debug, Default)]
pub struct TupleTracker {
    pending: HashMap<u64, TreeState>,
    next_root: u64,
    completed: u64,
    failed: u64,
}

#[derive(Debug, Clone, Copy)]
struct TreeState {
    emitted_at: f64,
    outstanding: u64,
}

impl TupleTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new root tuple emitted at `now`; returns its root id.
    /// The root itself counts as one outstanding tuple.
    pub fn emit_root(&mut self, now: f64) -> u64 {
        let id = self.next_root;
        self.next_root += 1;
        self.pending.insert(
            id,
            TreeState {
                emitted_at: now,
                outstanding: 1,
            },
        );
        id
    }

    /// Records that one tuple of tree `root` was processed, spawning
    /// `children` derived tuples.
    pub fn complete_one(&mut self, root: u64, children: u64) -> AckOutcome {
        let Some(state) = self.pending.get_mut(&root) else {
            return AckOutcome::Unknown;
        };
        state.outstanding = state.outstanding - 1 + children;
        if state.outstanding == 0 {
            let emitted_at = state.emitted_at;
            self.pending.remove(&root);
            self.completed += 1;
            AckOutcome::Completed { emitted_at }
        } else {
            AckOutcome::Pending
        }
    }

    /// Fails an entire tree (queue overflow / timeout path). The tuple would
    /// be replayed by the spout in Storm; the simulator counts the failure
    /// and drops the tree.
    pub fn fail_tree(&mut self, root: u64) {
        if self.pending.remove(&root).is_some() {
            self.failed += 1;
        }
    }

    /// Trees still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Roots emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next_root
    }

    /// Fully acked trees.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Failed (dropped) trees.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Pending trees as `(root, emitted_at, outstanding)` sorted by root,
    /// plus the counters — a deterministic serialization order for
    /// snapshots (HashMap iteration order is not stable across processes).
    pub(crate) fn snapshot(&self) -> (Vec<(u64, f64, u64)>, u64, u64, u64) {
        let mut pending: Vec<(u64, f64, u64)> = self
            .pending
            .iter()
            .map(|(&root, s)| (root, s.emitted_at, s.outstanding))
            .collect();
        pending.sort_unstable_by_key(|&(root, _, _)| root);
        (pending, self.next_root, self.completed, self.failed)
    }

    /// Rebuilds a tracker from a snapshot.
    pub(crate) fn restore(
        pending: Vec<(u64, f64, u64)>,
        next_root: u64,
        completed: u64,
        failed: u64,
    ) -> Self {
        Self {
            pending: pending
                .into_iter()
                .map(|(root, emitted_at, outstanding)| {
                    (
                        root,
                        TreeState {
                            emitted_at,
                            outstanding,
                        },
                    )
                })
                .collect(),
            next_root,
            completed,
            failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_completes() {
        let mut t = TupleTracker::new();
        let root = t.emit_root(1.0);
        // Spout tuple processed, one child emitted.
        assert_eq!(t.complete_one(root, 1), AckOutcome::Pending);
        // Child processed, no grandchildren: tree completes.
        assert_eq!(
            t.complete_one(root, 0),
            AckOutcome::Completed { emitted_at: 1.0 }
        );
        assert_eq!(t.completed(), 1);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn fanout_requires_all_branches() {
        let mut t = TupleTracker::new();
        let root = t.emit_root(0.0);
        assert_eq!(t.complete_one(root, 3), AckOutcome::Pending);
        assert_eq!(t.complete_one(root, 0), AckOutcome::Pending);
        assert_eq!(t.complete_one(root, 0), AckOutcome::Pending);
        assert!(matches!(
            t.complete_one(root, 0),
            AckOutcome::Completed { .. }
        ));
    }

    #[test]
    fn filtered_tuple_completes_immediately() {
        let mut t = TupleTracker::new();
        let root = t.emit_root(2.5);
        // Filter drops the tuple: zero children at the first hop.
        assert_eq!(
            t.complete_one(root, 0),
            AckOutcome::Completed { emitted_at: 2.5 }
        );
    }

    #[test]
    fn failure_accounting() {
        let mut t = TupleTracker::new();
        let a = t.emit_root(0.0);
        let _b = t.emit_root(0.1);
        t.fail_tree(a);
        assert_eq!(t.failed(), 1);
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.complete_one(a, 0), AckOutcome::Unknown);
        assert_eq!(t.emitted(), 2);
    }

    #[test]
    fn conservation_emitted_equals_completed_plus_failed_plus_inflight() {
        let mut t = TupleTracker::new();
        let ids: Vec<u64> = (0..10).map(|i| t.emit_root(i as f64)).collect();
        for &id in &ids[..4] {
            t.complete_one(id, 0);
        }
        for &id in &ids[4..6] {
            t.fail_tree(id);
        }
        assert_eq!(
            t.emitted(),
            t.completed() + t.failed() + t.in_flight() as u64
        );
    }
}
