//! Deterministic randomness: stream splitting and the probability
//! distributions the simulator needs (kept in-repo so the dependency list
//! stays within the approved set — `rand` provides uniform bits only).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Derives an independent RNG stream from a master seed and a stream label.
/// SplitMix64-style mixing keeps streams decorrelated even for adjacent
/// labels, so e.g. per-executor arrival processes don't share structure.
pub fn stream(master_seed: u64, label: u64) -> StdRng {
    let mut z =
        master_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(label.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Exponential sample with the given mean (inverse-CDF method).
///
/// # Panics
/// Panics on non-positive mean.
pub fn sample_exponential(rng: &mut StdRng, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Standard normal via Box-Muller.
pub fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Lognormal multiplicative noise with median 1 and log-std `sigma`
/// (`sigma = 0` returns exactly 1). Used for service-time variability.
pub fn sample_lognormal_noise(rng: &mut StdRng, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    if sigma == 0.0 {
        return 1.0;
    }
    (sigma * sample_standard_normal(rng)).exp()
}

/// Gamma-like positive service-time sample with mean `mean` and coefficient
/// of variation `cv`, implemented as a lognormal matched on the first two
/// moments. `cv = 0` is deterministic.
///
/// # Panics
/// Panics on non-positive mean or negative `cv`.
pub fn sample_service_time(rng: &mut StdRng, mean: f64, cv: f64) -> f64 {
    assert!(mean > 0.0, "service mean must be positive");
    assert!(cv >= 0.0, "cv must be non-negative");
    if cv == 0.0 {
        return mean;
    }
    // Lognormal with E = mean, Var = (cv·mean)²:
    // σ² = ln(1 + cv²), μ = ln(mean) − σ²/2.
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu + sigma2.sqrt() * sample_standard_normal(rng)).exp()
}

/// Probabilistic integer rounding: `4.3 -> 4` (70%) or `5` (30%), preserving
/// the expectation. Used to expand fractional selectivities into child-tuple
/// counts.
pub fn sample_count(rng: &mut StdRng, expected: f64) -> usize {
    assert!(expected >= 0.0, "expected count must be non-negative");
    let base = expected.floor();
    let frac = expected - base;
    let extra = if frac > 0.0 && rng.random_range(0.0..1.0) < frac {
        1
    } else {
        0
    };
    base as usize + extra
}

/// A precomputed Zipf(s) distribution over `{0, .., n-1}` with O(log n)
/// sampling via the inverse CDF. Models key popularity for fields grouping
/// and word frequencies in the word-count workload.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution with exponent `s` over `n` ranks.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (n ≥ 1 by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<f64> = {
            let mut r = stream(1, 0);
            (0..4).map(|_| r.random_range(0.0..1.0)).collect()
        };
        let a2: Vec<f64> = {
            let mut r = stream(1, 0);
            (0..4).map(|_| r.random_range(0.0..1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = stream(1, 1);
            (0..4).map(|_| r.random_range(0.0..1.0)).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = stream(7, 0);
        let n = 50_000;
        let mean = (0..n)
            .map(|_| sample_exponential(&mut rng, 2.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn service_time_moments() {
        let mut rng = stream(9, 0);
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_service_time(&mut rng, 1.5, 0.5))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = (samples.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((mean - 1.5).abs() < 0.03, "mean {mean}");
        assert!((sd / mean - 0.5).abs() < 0.05, "cv {}", sd / mean);
        assert!(samples.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn deterministic_service_time_at_zero_cv() {
        let mut rng = stream(1, 2);
        assert_eq!(sample_service_time(&mut rng, 0.7, 0.0), 0.7);
    }

    #[test]
    fn count_preserves_expectation() {
        let mut rng = stream(3, 0);
        let n = 100_000;
        let sum: usize = (0..n).map(|_| sample_count(&mut rng, 2.3)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn count_exact_for_integers() {
        let mut rng = stream(3, 1);
        for _ in 0..100 {
            assert_eq!(sample_count(&mut rng, 3.0), 3);
            assert_eq!(sample_count(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(10, 1.2);
        let mut rng = stream(5, 0);
        let n = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: {emp} vs {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn lognormal_noise_median_one() {
        let mut rng = stream(8, 0);
        let n = 20_001;
        let mut v: Vec<f64> = (0..n)
            .map(|_| sample_lognormal_noise(&mut rng, 0.3))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[n / 2];
        assert!((median - 1.0).abs() < 0.03, "median {median}");
        assert_eq!(sample_lognormal_noise(&mut rng, 0.0), 1.0);
    }
}
