//! A single append-only log file.
//!
//! Record framing: `[len: u32][crc: u32][payload: len bytes]`, all
//! little-endian. On open, the segment is scanned; a torn tail (partial
//! header, partial payload, or checksum mismatch in the **final** record —
//! the signature of a crash mid-append) is truncated away. Corruption
//! anywhere *before* the tail is a hard error: it means bytes were damaged
//! after being durably written, which recovery must not paper over.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::StoreError;

/// Per-record header size: length + checksum.
pub const RECORD_HEADER: usize = 8;
/// Maximum payload size accepted (1 MiB; transition samples are ~1 KiB).
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// CRC-32 (IEEE), kept byte-compatible with `dss-proto::crc32` so tooling
/// can validate either format.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// An open, appendable segment.
#[derive(Debug)]
pub struct Segment {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Bytes durably framed so far (after recovery truncation).
    len_bytes: u64,
    /// Records in the segment.
    n_records: u64,
}

impl Segment {
    /// Open (creating if missing) and recover the segment: scan records,
    /// truncate a torn tail, position for append.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(format!("open {}", path.display()), e))?;
        let (valid_len, n_records) = scan(path, &mut file)?;
        let file_len = file
            .metadata()
            .map_err(|e| StoreError::io(format!("stat {}", path.display()), e))?
            .len();
        if valid_len < file_len {
            // Torn tail from a crash mid-append: cut it off. Reopen in
            // write mode because append-mode files cannot truncate on all
            // platforms.
            drop(file);
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| StoreError::io(format!("reopen {}", path.display()), e))?;
            f.set_len(valid_len)
                .map_err(|e| StoreError::io(format!("truncate {}", path.display()), e))?;
            let file = OpenOptions::new()
                .read(true)
                .append(true)
                .open(path)
                .map_err(|e| StoreError::io(format!("reopen {}", path.display()), e))?;
            return Ok(Segment {
                path: path.to_path_buf(),
                writer: BufWriter::new(file),
                len_bytes: valid_len,
                n_records,
            });
        }
        Ok(Segment {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
            len_bytes: valid_len,
            n_records,
        })
    }

    /// Append one payload; returns its byte offset.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(StoreError::RecordTooLarge(payload.len()));
        }
        let offset = self.len_bytes;
        let mut header = [0u8; RECORD_HEADER];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        self.writer
            .write_all(&header)
            .and_then(|()| self.writer.write_all(payload))
            .map_err(|e| StoreError::io(format!("append {}", self.path.display()), e))?;
        self.len_bytes += (RECORD_HEADER + payload.len()) as u64;
        self.n_records += 1;
        Ok(offset)
    }

    /// Flush buffered appends to the OS.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.writer
            .flush()
            .map_err(|e| StoreError::io(format!("flush {}", self.path.display()), e))
    }

    /// Flush and fsync.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.flush()?;
        self.writer
            .get_ref()
            .sync_data()
            .map_err(|e| StoreError::io(format!("sync {}", self.path.display()), e))
    }

    /// Framed bytes in the segment.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Records in the segment.
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// The segment's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Scan a segment, returning `(valid_prefix_len, n_records)`.
///
/// A bad **final** record is treated as a torn tail (valid prefix ends
/// before it); a bad record followed by more bytes is hard corruption.
fn scan(path: &Path, file: &mut File) -> Result<(u64, u64), StoreError> {
    file.seek(SeekFrom::Start(0))
        .map_err(|e| StoreError::io(format!("seek {}", path.display()), e))?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)
        .map_err(|e| StoreError::io(format!("read {}", path.display()), e))?;
    let mut off = 0usize;
    let mut n = 0u64;
    while off < data.len() {
        let bad_tail = |detail: &'static str, off: usize| -> Result<(u64, u64), StoreError> {
            // Only acceptable as the *last* thing in the file.
            Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: off as u64,
                detail,
            })
        };
        if off + RECORD_HEADER > data.len() {
            return Ok((off as u64, n)); // partial header: torn tail
        }
        let len =
            u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]) as usize;
        let expected_crc =
            u32::from_le_bytes([data[off + 4], data[off + 5], data[off + 6], data[off + 7]]);
        if len > MAX_RECORD_LEN {
            // A nonsense length field can only be trusted as a torn tail
            // if nothing follows that could have been a valid record.
            return if data.len() - off <= RECORD_HEADER + MAX_RECORD_LEN {
                Ok((off as u64, n))
            } else {
                bad_tail("length out of range", off)
            };
        }
        let end = off + RECORD_HEADER + len;
        if end > data.len() {
            return Ok((off as u64, n)); // partial payload: torn tail
        }
        if crc32(&data[off + RECORD_HEADER..end]) != expected_crc {
            if end == data.len() {
                return Ok((off as u64, n)); // bad checksum on final record
            }
            return bad_tail("checksum mismatch mid-file", off);
        }
        off = end;
        n += 1;
    }
    Ok((off as u64, n))
}

/// Sequential reader over a segment's validated records.
#[derive(Debug)]
pub struct SegmentReader {
    data: Vec<u8>,
    off: usize,
    path: PathBuf,
}

impl SegmentReader {
    /// Read and validate the whole segment for iteration.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file =
            File::open(path).map_err(|e| StoreError::io(format!("open {}", path.display()), e))?;
        let (valid_len, _) = scan(path, &mut file)?;
        let mut data = Vec::with_capacity(valid_len as usize);
        file.seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::io(format!("seek {}", path.display()), e))?;
        file.take(valid_len)
            .read_to_end(&mut data)
            .map_err(|e| StoreError::io(format!("read {}", path.display()), e))?;
        Ok(SegmentReader {
            data,
            off: 0,
            path: path.to_path_buf(),
        })
    }

    /// The segment's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Iterator for SegmentReader {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        if self.off + RECORD_HEADER > self.data.len() {
            return None;
        }
        let len = u32::from_le_bytes([
            self.data[self.off],
            self.data[self.off + 1],
            self.data[self.off + 2],
            self.data[self.off + 3],
        ]) as usize;
        let start = self.off + RECORD_HEADER;
        let end = start + len;
        if end > self.data.len() {
            return None;
        }
        self.off = end;
        Some(self.data[start..end].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dss-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_flush_read_roundtrip() {
        let dir = tmpdir("rt");
        let path = dir.join("segment-00000001.log");
        let mut seg = Segment::open(&path).unwrap();
        seg.append(b"one").unwrap();
        seg.append(b"two").unwrap();
        seg.append(b"").unwrap();
        seg.flush().unwrap();
        let records: Vec<Vec<u8>> = SegmentReader::open(&path).unwrap().collect();
        assert_eq!(records, vec![b"one".to_vec(), b"two".to_vec(), vec![]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_resumes_counts_and_appends() {
        let dir = tmpdir("reopen");
        let path = dir.join("segment-00000001.log");
        {
            let mut seg = Segment::open(&path).unwrap();
            seg.append(b"a").unwrap();
            seg.flush().unwrap();
        }
        let mut seg = Segment::open(&path).unwrap();
        assert_eq!(seg.n_records(), 1);
        seg.append(b"b").unwrap();
        seg.flush().unwrap();
        let records: Vec<Vec<u8>> = SegmentReader::open(&path).unwrap().collect();
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_partial_payload_is_truncated_on_open() {
        let dir = tmpdir("torn");
        let path = dir.join("segment-00000001.log");
        {
            let mut seg = Segment::open(&path).unwrap();
            seg.append(b"intact").unwrap();
            seg.append(b"will be torn").unwrap();
            seg.flush().unwrap();
        }
        // Tear the last record: drop its final 3 bytes.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let mut seg = Segment::open(&path).unwrap();
        assert_eq!(seg.n_records(), 1, "torn record discarded");
        seg.append(b"after-recovery").unwrap();
        seg.flush().unwrap();
        let records: Vec<Vec<u8>> = SegmentReader::open(&path).unwrap().collect();
        assert_eq!(
            records,
            vec![b"intact".to_vec(), b"after-recovery".to_vec()]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_partial_header_is_truncated() {
        let dir = tmpdir("tornhdr");
        let path = dir.join("segment-00000001.log");
        {
            let mut seg = Segment::open(&path).unwrap();
            seg.append(b"keep").unwrap();
            seg.flush().unwrap();
        }
        // Append 5 junk bytes (less than a header).
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[1, 2, 3, 4, 5]).unwrap();
        drop(f);
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.n_records(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_checksum_on_final_record_is_torn_tail() {
        let dir = tmpdir("crc-final");
        let path = dir.join("segment-00000001.log");
        {
            let mut seg = Segment::open(&path).unwrap();
            seg.append(b"good").unwrap();
            seg.append(b"flipped").unwrap();
            seg.flush().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.n_records(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tmpdir("crc-mid");
        let path = dir.join("segment-00000001.log");
        {
            let mut seg = Segment::open(&path).unwrap();
            seg.append(b"first-record-payload").unwrap();
            seg.append(b"second").unwrap();
            seg.flush().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        data[RECORD_HEADER + 2] ^= 0xff; // inside the first payload
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            Segment::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_record_is_rejected_at_append() {
        let dir = tmpdir("big");
        let path = dir.join("segment-00000001.log");
        let mut seg = Segment::open(&path).unwrap();
        let huge = vec![0u8; MAX_RECORD_LEN + 1];
        assert!(matches!(
            seg.append(&huge),
            Err(StoreError::RecordTooLarge(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_segment_opens_cleanly() {
        let dir = tmpdir("empty");
        let path = dir.join("segment-00000001.log");
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.n_records(), 0);
        assert_eq!(seg.len_bytes(), 0);
        assert_eq!(SegmentReader::open(&path).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
