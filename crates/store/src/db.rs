//! The typed, thread-safe transition database used by the control framework.

use std::path::Path;

use parking_lot::Mutex;

use crate::error::StoreError;
use crate::log::{Log, LogConfig};
use crate::record::TransitionRecord;

/// Durable store of `(s, a, r, s')` samples — the "Database" of Figure 1.
///
/// Appends are cheap (buffered log writes); scans decode and validate every
/// record. A record that fails *payload* decoding after passing the log's
/// checksum indicates a writer bug, so scans surface it as corruption
/// instead of skipping it.
#[derive(Debug)]
pub struct TransitionDb {
    log: Mutex<Log>,
}

impl TransitionDb {
    /// Open (or create) the database in `dir` with default tuning.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::open_with(dir, LogConfig::default())
    }

    /// Open with explicit log tuning.
    pub fn open_with(dir: &Path, config: LogConfig) -> Result<Self, StoreError> {
        Ok(TransitionDb {
            log: Mutex::new(Log::open(dir, config)?),
        })
    }

    /// Append one sample.
    pub fn append(&self, record: &TransitionRecord) -> Result<(), StoreError> {
        self.log.lock().append(&record.encode())
    }

    /// Number of stored samples.
    pub fn len(&self) -> u64 {
        self.log.lock().len()
    }

    /// True if no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.log.lock().is_empty()
    }

    /// Read every sample in append order.
    pub fn scan(&self) -> Result<Vec<TransitionRecord>, StoreError> {
        let mut log = self.log.lock();
        let dir = log.dir().to_path_buf();
        log.iter()?
            .enumerate()
            .map(|(i, payload)| {
                TransitionRecord::decode(payload.into()).ok_or(StoreError::Corrupt {
                    path: dir.clone(),
                    offset: i as u64,
                    detail: "record payload failed to decode",
                })
            })
            .collect()
    }

    /// Read the most recent `k` samples (fewer if the store is smaller).
    pub fn tail(&self, k: usize) -> Result<Vec<TransitionRecord>, StoreError> {
        let mut all = self.scan()?;
        let skip = all.len().saturating_sub(k);
        Ok(all.split_off(skip))
    }

    /// Drop the oldest sealed segments down to `keep_segments`; returns
    /// the number of samples discarded.
    pub fn compact_to(&self, keep_segments: usize) -> Result<u64, StoreError> {
        self.log.lock().compact_to(keep_segments)
    }

    /// Drop superseded records: when several samples share a decision
    /// epoch (a retransmitted solution replayed across a master failover,
    /// or a re-measured epoch), only the newest survives. The log is
    /// rewritten in one atomic segment swap; append order of the
    /// survivors is preserved. Returns the number of records dropped.
    pub fn compact(&self) -> Result<u64, StoreError> {
        let mut log = self.log.lock();
        let dir = log.dir().to_path_buf();
        let records: Vec<TransitionRecord> = log
            .iter()?
            .enumerate()
            .map(|(i, payload)| {
                TransitionRecord::decode(payload.into()).ok_or(StoreError::Corrupt {
                    path: dir.clone(),
                    offset: i as u64,
                    detail: "record payload failed to decode",
                })
            })
            .collect::<Result<_, _>>()?;
        let mut seen = std::collections::HashSet::new();
        let mut keep: Vec<&TransitionRecord> = Vec::with_capacity(records.len());
        // Walk newest-first so the last write for an epoch wins.
        for r in records.iter().rev() {
            if seen.insert(r.epoch) {
                keep.push(r);
            }
        }
        keep.reverse();
        let dropped = records.len() as u64 - keep.len() as u64;
        if dropped > 0 {
            let payloads: Vec<Vec<u8>> = keep.iter().map(|r| r.encode().to_vec()).collect();
            log.rewrite(&payloads)?;
        }
        Ok(dropped)
    }

    /// Number of on-disk segment files.
    pub fn n_segments(&self) -> usize {
        self.log.lock().n_segments()
    }

    /// Force buffered appends to disk.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.log.lock().sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dss-db-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn rec(epoch: u64, reward: f64) -> TransitionRecord {
        TransitionRecord {
            epoch,
            machine_of: vec![0, 1, 0],
            n_machines: 2,
            source_rates: vec![(0, 50.0)],
            action_machine_of: vec![1, 1, 0],
            reward,
            next_machine_of: vec![1, 1, 0],
            next_source_rates: vec![(0, 50.0)],
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmpdir("rt");
        let db = TransitionDb::open(&dir).unwrap();
        for i in 0..50 {
            db.append(&rec(i, -(i as f64))).unwrap();
        }
        let all = db.scan().unwrap();
        assert_eq!(all.len(), 50);
        assert_eq!(all[17], rec(17, -17.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn survives_restart() {
        let dir = tmpdir("restart");
        {
            let db = TransitionDb::open(&dir).unwrap();
            for i in 0..10 {
                db.append(&rec(i, 0.0)).unwrap();
            }
            db.sync().unwrap();
        }
        let db = TransitionDb::open(&dir).unwrap();
        assert_eq!(db.len(), 10);
        assert_eq!(db.scan().unwrap()[9].epoch, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_returns_most_recent() {
        let dir = tmpdir("tail");
        let db = TransitionDb::open(&dir).unwrap();
        for i in 0..20 {
            db.append(&rec(i, 0.0)).unwrap();
        }
        let last5 = db.tail(5).unwrap();
        assert_eq!(
            last5.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![15, 16, 17, 18, 19]
        );
        assert_eq!(db.tail(100).unwrap().len(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_keeps_recent_history() {
        let dir = tmpdir("compact");
        let db = TransitionDb::open_with(
            &dir,
            LogConfig {
                max_segment_bytes: 256,
                sync_every_append: false,
            },
        )
        .unwrap();
        for i in 0..100 {
            db.append(&rec(i, 0.0)).unwrap();
        }
        assert!(db.n_segments() > 2);
        let dropped = db.compact_to(1).unwrap();
        assert!(dropped > 0);
        let remaining = db.scan().unwrap();
        assert_eq!(remaining.len() as u64, 100 - dropped);
        // What's left is a contiguous most-recent suffix.
        assert_eq!(remaining.last().unwrap().epoch, 99);
        let first = remaining.first().unwrap().epoch;
        assert_eq!(
            remaining.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            (first..=99).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_drops_superseded_records() {
        let dir = tmpdir("supersede");
        let db = TransitionDb::open(&dir).unwrap();
        // Epochs 0..10, then epochs 3 and 7 re-recorded (a failover replay).
        for i in 0..10 {
            db.append(&rec(i, -(i as f64))).unwrap();
        }
        db.append(&rec(3, -30.0)).unwrap();
        db.append(&rec(7, -70.0)).unwrap();
        let dropped = db.compact().unwrap();
        assert_eq!(dropped, 2);
        let all = db.scan().unwrap();
        assert_eq!(all.len(), 10);
        // Order preserved; the superseded epochs carry their newest reward.
        assert_eq!(
            all.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![0, 1, 2, 4, 5, 6, 8, 9, 3, 7]
        );
        assert_eq!(all[8].reward, -30.0);
        assert_eq!(all[9].reward, -70.0);
        // A second compact is a no-op and survives reopen.
        assert_eq!(db.compact().unwrap(), 0);
        drop(db);
        let db = TransitionDb::open(&dir).unwrap();
        assert_eq!(db.scan().unwrap().len(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_appends_are_all_stored() {
        let dir = tmpdir("concurrent");
        let db = std::sync::Arc::new(TransitionDb::open(&dir).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        db.append(&rec(t * 1000 + i, 0.0)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.len(), 200);
        assert_eq!(db.scan().unwrap().len(), 200);
        std::fs::remove_dir_all(&dir).ok();
    }
}
