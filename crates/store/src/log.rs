//! Multi-segment rotating log: a directory of [`Segment`]s.
//!
//! Segment files are named `segment-NNNNNNNN.log` with a monotonically
//! increasing index; appends go to the highest segment and roll over when
//! it exceeds [`LogConfig::max_segment_bytes`]. Compaction drops whole
//! oldest segments — the unit of space reclamation, as in any
//! log-structured store.

use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::segment::{Segment, SegmentReader};

/// Tuning for the rotating log.
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Roll to a new segment once the active one exceeds this many bytes.
    pub max_segment_bytes: u64,
    /// fsync after every append (slow, durable) instead of flush-only.
    pub sync_every_append: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            // Transition samples are ~1 KiB; 4 MiB segments keep a 10k
            // sample offline dataset in a handful of files.
            max_segment_bytes: 4 << 20,
            sync_every_append: false,
        }
    }
}

/// A rotating, recoverable, append-only log over a directory.
#[derive(Debug)]
pub struct Log {
    dir: PathBuf,
    config: LogConfig,
    active: Segment,
    active_index: u64,
    /// Sealed (read-only) segment indexes, ascending.
    sealed: Vec<u64>,
    /// Records across all segments.
    n_records: u64,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:08}.log"))
}

fn parse_segment_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let idx = name.strip_prefix("segment-")?.strip_suffix(".log")?;
    if idx.len() != 8 || !idx.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    idx.parse().ok()
}

impl Log {
    /// Open (creating if missing) the log directory, recovering every
    /// segment. Unknown files in the directory are an error — refusing to
    /// guess beats silently skipping what might be data.
    pub fn open(dir: &Path, config: LogConfig) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| StoreError::io(format!("mkdir {}", dir.display()), e))?;
        let mut indexes = Vec::new();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| StoreError::io(format!("readdir {}", dir.display()), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("readdir entry", e))?;
            let path = entry.path();
            // A `*.tmp` file is the residue of a rewrite interrupted before
            // its rename — the swap never committed, so the file is dead.
            if path.extension().is_some_and(|e| e == "tmp") {
                std::fs::remove_file(&path)
                    .map_err(|e| StoreError::io(format!("remove {}", path.display()), e))?;
                continue;
            }
            match parse_segment_name(&path) {
                Some(idx) => indexes.push(idx),
                None => return Err(StoreError::BadSegmentName(path)),
            }
        }
        indexes.sort_unstable();
        let active_index = indexes.last().copied().unwrap_or(1);
        if indexes.is_empty() {
            indexes.push(active_index);
        }
        let mut n_records = 0;
        for &idx in &indexes[..indexes.len() - 1] {
            // Sealed segments: validate and count without keeping handles.
            n_records += SegmentReader::open(&segment_path(dir, idx))?.count() as u64;
        }
        let active = Segment::open(&segment_path(dir, active_index))?;
        n_records += active.n_records();
        let sealed = indexes[..indexes.len() - 1].to_vec();
        Ok(Log {
            dir: dir.to_path_buf(),
            config,
            active,
            active_index,
            sealed,
            n_records,
        })
    }

    /// Append one payload, rotating first if the active segment is full.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        if self.active.len_bytes() >= self.config.max_segment_bytes && self.active.n_records() > 0 {
            self.rotate()?;
        }
        self.active.append(payload)?;
        if self.config.sync_every_append {
            self.active.sync()?;
        } else {
            self.active.flush()?;
        }
        self.n_records += 1;
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        self.active.sync()?;
        self.sealed.push(self.active_index);
        self.active_index += 1;
        self.active = Segment::open(&segment_path(&self.dir, self.active_index))?;
        Ok(())
    }

    /// Iterate every record payload in append order.
    pub fn iter(&mut self) -> Result<impl Iterator<Item = Vec<u8>>, StoreError> {
        self.active.flush()?;
        let mut readers = Vec::with_capacity(self.sealed.len() + 1);
        for &idx in &self.sealed {
            readers.push(SegmentReader::open(&segment_path(&self.dir, idx))?);
        }
        readers.push(SegmentReader::open(self.active.path())?);
        Ok(readers.into_iter().flatten())
    }

    /// Total records.
    pub fn len(&self) -> u64 {
        self.n_records
    }

    /// True if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// Number of segment files (sealed + active).
    pub fn n_segments(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Drop the oldest sealed segments until at most `keep_segments`
    /// sealed segments remain. Returns how many records were discarded.
    pub fn compact_to(&mut self, keep_segments: usize) -> Result<u64, StoreError> {
        let mut dropped = 0u64;
        while self.sealed.len() > keep_segments {
            let idx = self.sealed.remove(0);
            let path = segment_path(&self.dir, idx);
            dropped += SegmentReader::open(&path)?.count() as u64;
            std::fs::remove_file(&path)
                .map_err(|e| StoreError::io(format!("remove {}", path.display()), e))?;
        }
        self.n_records -= dropped;
        Ok(dropped)
    }

    /// Atomically replace the log's entire contents with `payloads`.
    ///
    /// The new records are written to a temp file which is fsynced and
    /// then renamed into place as a fresh top segment (the atomic segment
    /// swap); only after the rename commits are the superseded segment
    /// files deleted. A crash at any point leaves either the old contents
    /// (rename not reached — [`Log::open`] discards the dead temp) or the
    /// new ones.
    pub fn rewrite(&mut self, payloads: &[Vec<u8>]) -> Result<(), StoreError> {
        self.active.sync()?;
        let new_index = self.active_index + 1;
        let final_path = segment_path(&self.dir, new_index);
        let mut tmp = final_path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut seg = Segment::open(&tmp)?;
            for p in payloads {
                seg.append(p)?;
            }
            seg.sync()?;
        }
        std::fs::rename(&tmp, &final_path).map_err(|e| {
            StoreError::io(
                format!("rename {} -> {}", tmp.display(), final_path.display()),
                e,
            )
        })?;
        // Committed: everything before the new segment is superseded.
        let old: Vec<u64> = self
            .sealed
            .drain(..)
            .chain(std::iter::once(self.active_index))
            .collect();
        self.active = Segment::open(&final_path)?;
        self.active_index = new_index;
        self.n_records = payloads.len() as u64;
        for idx in old {
            let path = segment_path(&self.dir, idx);
            std::fs::remove_file(&path)
                .map_err(|e| StoreError::io(format!("remove {}", path.display()), e))?;
        }
        Ok(())
    }

    /// Flush and fsync the active segment.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.active.sync()
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dss-log-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn small_cfg() -> LogConfig {
        LogConfig {
            max_segment_bytes: 64,
            sync_every_append: false,
        }
    }

    #[test]
    fn append_and_iterate_across_rotations() {
        let dir = tmpdir("rot");
        let mut log = Log::open(&dir, small_cfg()).unwrap();
        for i in 0..20u32 {
            log.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        assert!(log.n_segments() > 1, "64-byte segments must have rotated");
        let all: Vec<String> = log
            .iter()
            .unwrap()
            .map(|r| String::from_utf8(r).unwrap())
            .collect();
        assert_eq!(all.len(), 20);
        assert_eq!(all[0], "record-0000");
        assert_eq!(all[19], "record-0019");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_counts_and_continues() {
        let dir = tmpdir("recover");
        {
            let mut log = Log::open(&dir, small_cfg()).unwrap();
            for i in 0..10u32 {
                log.append(&i.to_le_bytes()).unwrap();
            }
        }
        let mut log = Log::open(&dir, small_cfg()).unwrap();
        assert_eq!(log.len(), 10);
        log.append(b"post-restart").unwrap();
        assert_eq!(log.iter().unwrap().count(), 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_drops_oldest_segments_only() {
        let dir = tmpdir("compact");
        let mut log = Log::open(&dir, small_cfg()).unwrap();
        for i in 0..30u32 {
            log.append(format!("r{i:05}").as_bytes()).unwrap();
        }
        let before = log.len();
        let sealed_before = log.n_segments() - 1;
        assert!(sealed_before >= 2);
        let dropped = log.compact_to(1).unwrap();
        assert!(dropped > 0);
        assert_eq!(log.len(), before - dropped);
        // Remaining records are the most recent ones.
        let first_kept: String = log
            .iter()
            .unwrap()
            .next()
            .map(|r| String::from_utf8(r).unwrap())
            .unwrap();
        assert!(first_kept.as_str() > "r00000");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_swaps_contents_atomically() {
        let dir = tmpdir("rewrite");
        let mut log = Log::open(&dir, small_cfg()).unwrap();
        for i in 0..20u32 {
            log.append(format!("old-{i:04}").as_bytes()).unwrap();
        }
        let segments_before = log.n_segments();
        assert!(segments_before > 1);
        log.rewrite(&[b"new-a".to_vec(), b"new-b".to_vec()])
            .unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.n_segments(), 1);
        let all: Vec<Vec<u8>> = log.iter().unwrap().collect();
        assert_eq!(all, vec![b"new-a".to_vec(), b"new-b".to_vec()]);
        // Appends continue on the new segment; a reopen sees the same view.
        log.append(b"new-c").unwrap();
        drop(log);
        let mut log = Log::open(&dir, small_cfg()).unwrap();
        assert_eq!(log.iter().unwrap().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leftover_rewrite_temp_is_discarded_on_open() {
        let dir = tmpdir("tmpfile");
        {
            let mut log = Log::open(&dir, small_cfg()).unwrap();
            log.append(b"committed").unwrap();
        }
        // A crash between temp write and rename leaves this behind.
        let dead = dir.join("segment-00000099.log.tmp");
        std::fs::write(&dead, b"torn rewrite").unwrap();
        let mut log = Log::open(&dir, small_cfg()).unwrap();
        assert!(!dead.exists(), "dead temp must be cleaned up");
        assert_eq!(log.iter().unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_file_in_directory_is_rejected() {
        let dir = tmpdir("junk");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        assert!(matches!(
            Log::open(&dir, LogConfig::default()),
            Err(StoreError::BadSegmentName(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_log_reports_empty() {
        let dir = tmpdir("empty");
        let mut log = Log::open(&dir, LogConfig::default()).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.iter().unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_names_parse_strictly() {
        assert_eq!(
            parse_segment_name(Path::new("segment-00000001.log")),
            Some(1)
        );
        assert_eq!(parse_segment_name(Path::new("segment-1.log")), None);
        assert_eq!(parse_segment_name(Path::new("segment-abcdefgh.log")), None);
        assert_eq!(parse_segment_name(Path::new("other.log")), None);
    }

    #[test]
    fn sync_every_append_mode_works() {
        let dir = tmpdir("sync");
        let mut log = Log::open(
            &dir,
            LogConfig {
                max_segment_bytes: 1 << 20,
                sync_every_append: true,
            },
        )
        .unwrap();
        log.append(b"durable").unwrap();
        assert_eq!(log.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
