//! The transition-sample database (the "Database" of the paper's Figure 1).
//!
//! Paper §3.1: the framework's architecture has three components — the DRL
//! agent, the custom scheduler, and a *database* that "stores transition
//! samples including state, action and reward information for training".
//! The offline phase accumulates 10,000 random-action samples per setup;
//! the online phase appends one sample per decision epoch. Training jobs
//! re-read the whole history (the paper pre-trains the actor/critic from
//! the historical samples), so durability across agent restarts is the
//! point of the component.
//!
//! This crate implements that database as a storage engine appropriate for
//! the workload (append-mostly, scan-mostly, modest volume):
//!
//! * [`record::TransitionRecord`] — the `(s, a, r, s')` sample with a
//!   self-validating binary encoding;
//! * [`segment`] — a single append-only log file: `[len | crc32 | payload]`
//!   records, torn-tail truncation on open;
//! * [`log`] — a directory of rotating segments with monotonically
//!   increasing record sequence numbers and crash recovery;
//! * [`db::TransitionDb`] — the typed, thread-safe API the control
//!   framework uses: append, scan, tail, and compaction (drop the oldest
//!   segments once the history exceeds a budget — the durable analogue of
//!   the replay buffer's eviction);
//! * [`blob`] — atomic single-file blobs (write-temp + fsync + rename,
//!   CRC-validated on read), the write primitive behind training
//!   checkpoints and master recovery images.
//!
//! ```
//! use dss_store::{TransitionDb, TransitionRecord};
//!
//! let dir = std::env::temp_dir().join(format!("dss-store-doc-{}", std::process::id()));
//! let db = TransitionDb::open(&dir).unwrap();
//! db.append(&TransitionRecord {
//!     epoch: 0,
//!     machine_of: vec![0, 1],
//!     n_machines: 2,
//!     source_rates: vec![(0, 100.0)],
//!     action_machine_of: vec![1, 1],
//!     reward: -1.96,
//!     next_machine_of: vec![1, 1],
//!     next_source_rates: vec![(0, 100.0)],
//! }).unwrap();
//! assert_eq!(db.len(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod blob;
pub mod db;
pub mod error;
pub mod log;
pub mod record;
pub mod segment;

pub use db::TransitionDb;
pub use error::StoreError;
pub use log::{Log, LogConfig};
pub use record::TransitionRecord;
pub use segment::{Segment, SegmentReader};
