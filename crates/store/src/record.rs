//! The stored `(s, a, r, s')` transition sample and its binary codec.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One transition sample as the paper defines it: state `s = (X, w)`,
/// action `a` (the deployed assignment), reward `r` (negative average
/// tuple processing time), next state `s' = (X', w')`.
///
/// `X'` always equals the deployed action's assignment, but `w'` can
/// differ from `w` when the workload shifts between epochs — keeping both
/// is what lets the state include the workload (paper §3.2, validated by
/// the Fig. 12 adaptivity experiment).
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionRecord {
    /// Decision epoch that produced the sample.
    pub epoch: u64,
    /// State: executor-to-machine assignment before the action.
    pub machine_of: Vec<usize>,
    /// Number of machines (shared by all assignment fields).
    pub n_machines: usize,
    /// State: per-data-source arrival rates `(component, tuples/s)`.
    pub source_rates: Vec<(u32, f64)>,
    /// Action: the assignment that was deployed.
    pub action_machine_of: Vec<usize>,
    /// Reward observed after redeployment stabilized.
    pub reward: f64,
    /// Next state: assignment after the action (== action's assignment).
    pub next_machine_of: Vec<usize>,
    /// Next state: arrival rates at the next epoch.
    pub next_source_rates: Vec<(u32, f64)>,
}

impl TransitionRecord {
    /// Encode into a self-contained payload (no framing or checksum; the
    /// segment layer adds those).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.epoch);
        buf.put_u32_le(self.n_machines as u32);
        put_assign(&mut buf, &self.machine_of);
        put_rates(&mut buf, &self.source_rates);
        put_assign(&mut buf, &self.action_machine_of);
        buf.put_f64_le(self.reward);
        put_assign(&mut buf, &self.next_machine_of);
        put_rates(&mut buf, &self.next_source_rates);
        buf.freeze()
    }

    /// Decode a payload produced by [`TransitionRecord::encode`].
    ///
    /// Returns `None` on any structural problem (truncation, machine index
    /// out of range, non-finite reward, trailing bytes) — the segment layer
    /// translates that into a corruption error with file context.
    pub fn decode(mut buf: Bytes) -> Option<TransitionRecord> {
        let epoch = get_u64(&mut buf)?;
        let n_machines = get_u32(&mut buf)? as usize;
        let machine_of = get_assign(&mut buf, n_machines)?;
        let source_rates = get_rates(&mut buf)?;
        let action_machine_of = get_assign(&mut buf, n_machines)?;
        let reward = get_f64(&mut buf)?;
        if !reward.is_finite() {
            return None;
        }
        let next_machine_of = get_assign(&mut buf, n_machines)?;
        let next_source_rates = get_rates(&mut buf)?;
        if buf.has_remaining() {
            return None;
        }
        Some(TransitionRecord {
            epoch,
            machine_of,
            n_machines,
            source_rates,
            action_machine_of,
            reward,
            next_machine_of,
            next_source_rates,
        })
    }
}

fn put_assign(buf: &mut BytesMut, a: &[usize]) {
    buf.put_u32_le(a.len() as u32);
    for &m in a {
        buf.put_u32_le(m as u32);
    }
}

fn put_rates(buf: &mut BytesMut, rates: &[(u32, f64)]) {
    buf.put_u32_le(rates.len() as u32);
    for (c, r) in rates {
        buf.put_u32_le(*c);
        buf.put_f64_le(*r);
    }
}

fn get_u32(buf: &mut Bytes) -> Option<u32> {
    (buf.remaining() >= 4).then(|| buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Option<u64> {
    (buf.remaining() >= 8).then(|| buf.get_u64_le())
}

fn get_f64(buf: &mut Bytes) -> Option<f64> {
    (buf.remaining() >= 8).then(|| buf.get_f64_le())
}

fn get_assign(buf: &mut Bytes, n_machines: usize) -> Option<Vec<usize>> {
    let n = get_u32(buf)? as usize;
    if buf.remaining() < n.checked_mul(4)? {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let m = buf.get_u32_le() as usize;
        if m >= n_machines {
            return None;
        }
        out.push(m);
    }
    Some(out)
}

fn get_rates(buf: &mut Bytes) -> Option<Vec<(u32, f64)>> {
    let n = get_u32(buf)? as usize;
    if buf.remaining() < n.checked_mul(12)? {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let c = buf.get_u32_le();
        let r = buf.get_f64_le();
        if !r.is_finite() || r < 0.0 {
            return None;
        }
        out.push((c, r));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(epoch: u64) -> TransitionRecord {
        TransitionRecord {
            epoch,
            machine_of: vec![0, 1, 2, 2],
            n_machines: 3,
            source_rates: vec![(0, 120.0)],
            action_machine_of: vec![2, 2, 2, 0],
            reward: -1.46,
            next_machine_of: vec![2, 2, 2, 0],
            next_source_rates: vec![(0, 180.0)],
        }
    }

    #[test]
    fn roundtrip_preserves_all_fields() {
        let r = sample(7);
        assert_eq!(TransitionRecord::decode(r.encode()).unwrap(), r);
    }

    #[test]
    fn empty_vectors_roundtrip() {
        let r = TransitionRecord {
            epoch: 0,
            machine_of: vec![],
            n_machines: 1,
            source_rates: vec![],
            action_machine_of: vec![],
            reward: 0.0,
            next_machine_of: vec![],
            next_source_rates: vec![],
        };
        assert_eq!(TransitionRecord::decode(r.encode()).unwrap(), r);
    }

    #[test]
    fn decode_rejects_every_truncation() {
        let enc = sample(1).encode();
        for cut in 0..enc.len() {
            assert!(
                TransitionRecord::decode(enc.slice(..cut)).is_none(),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut v = sample(1).encode().to_vec();
        v.push(0);
        assert!(TransitionRecord::decode(Bytes::from(v)).is_none());
    }

    #[test]
    fn decode_rejects_machine_index_out_of_range() {
        let mut r = sample(1);
        r.n_machines = 3;
        let mut v = r.encode().to_vec();
        // n_machines sits at offset 8..12; shrink it to 1 so indexes 1,2
        // become invalid.
        v[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert!(TransitionRecord::decode(Bytes::from(v)).is_none());
    }

    #[test]
    fn decode_rejects_nan_reward() {
        let r = sample(1);
        let enc = r.encode().to_vec();
        // Find the reward: it follows epoch(8) + n_machines(4) +
        // assign(4+16) + rates(4+12) + assign(4+16) = 68.
        let mut v = enc.clone();
        v[68..76].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(TransitionRecord::decode(Bytes::from(v)).is_none());
        // Sanity: the offset really is the reward field.
        let mut w = enc;
        w[68..76].copy_from_slice(&(-9.5f64).to_le_bytes());
        assert_eq!(
            TransitionRecord::decode(Bytes::from(w)).unwrap().reward,
            -9.5
        );
    }
}
