//! Storage error type.

use std::fmt;
use std::path::PathBuf;

/// Errors from the transition database.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io {
        /// Operation context (e.g. file path).
        context: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// A record failed checksum or structural validation while decoding.
    Corrupt {
        /// Which file.
        path: PathBuf,
        /// Byte offset of the bad record.
        offset: u64,
        /// What failed.
        detail: &'static str,
    },
    /// A record exceeds the configured maximum size.
    RecordTooLarge(usize),
    /// A segment file name does not follow the `segment-NNNNNNNN.log` scheme.
    BadSegmentName(PathBuf),
}

impl StoreError {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        StoreError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "io error ({context}): {source}"),
            StoreError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt record in {} at {offset}: {detail}",
                path.display()
            ),
            StoreError::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds limit"),
            StoreError::BadSegmentName(p) => {
                write!(f, "unrecognized segment file name: {}", p.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = StoreError::io("open /tmp/x", std::io::Error::other("boom"));
        assert!(e.to_string().contains("open /tmp/x"));
        let c = StoreError::Corrupt {
            path: "/tmp/seg".into(),
            offset: 128,
            detail: "crc",
        };
        assert!(c.to_string().contains("128"));
    }
}
