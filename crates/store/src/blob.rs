//! Atomic single-file blobs — the checkpoint write primitive.
//!
//! Training checkpoints and master recovery images are single opaque
//! payloads that must be replaced *atomically*: a crash mid-write must
//! leave either the previous checkpoint or the new one, never a torn
//! hybrid. The classic recipe is used — write the full payload to a
//! sibling `*.tmp` file, fsync it, then `rename(2)` over the destination
//! (atomic on POSIX filesystems).
//!
//! Every blob carries a CRC32 over the payload, so a corrupted file is a
//! typed [`StoreError::Corrupt`] on read, never silently bad data.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::segment::crc32;

/// Blob file magic.
const MAGIC: &[u8; 4] = b"DSSB";
/// Blob format version.
const VERSION: u32 = 1;
/// magic + version + crc + payload length.
const HEADER_LEN: usize = 4 + 4 + 4 + 8;

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically write `payload` to `path`: full payload + checksum to a
/// sibling temp file, fsync, rename over the destination. Concurrent
/// readers of `path` see either the old blob or the new one.
pub fn write_atomic(path: &Path, payload: &[u8]) -> Result<(), StoreError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| StoreError::io(format!("mkdir {}", parent.display()), e))?;
        }
    }
    let tmp = tmp_path(path);
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    {
        let mut f = std::fs::File::create(&tmp)
            .map_err(|e| StoreError::io(format!("create {}", tmp.display()), e))?;
        f.write_all(&buf)
            .map_err(|e| StoreError::io(format!("write {}", tmp.display()), e))?;
        f.sync_all()
            .map_err(|e| StoreError::io(format!("fsync {}", tmp.display()), e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        StoreError::io(format!("rename {} -> {}", tmp.display(), path.display()), e)
    })?;
    // Make the rename itself durable; failure here only costs durability
    // of the directory entry, not atomicity, so it is best-effort.
    if let Some(parent) = path.parent() {
        if let Ok(d) = std::fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read and validate a blob previously written by [`write_atomic`].
/// Checksum or structure failures are typed [`StoreError::Corrupt`]
/// errors, never panics.
pub fn read(path: &Path) -> Result<Vec<u8>, StoreError> {
    let data =
        std::fs::read(path).map_err(|e| StoreError::io(format!("read {}", path.display()), e))?;
    let corrupt = |offset: u64, detail: &'static str| StoreError::Corrupt {
        path: path.to_path_buf(),
        offset,
        detail,
    };
    if data.len() < HEADER_LEN {
        return Err(corrupt(data.len() as u64, "blob shorter than header"));
    }
    if &data[..4] != MAGIC {
        return Err(corrupt(0, "bad blob magic"));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(corrupt(4, "unsupported blob version"));
    }
    let crc = u32::from_le_bytes(data[8..12].try_into().unwrap());
    let len = u64::from_le_bytes(data[12..20].try_into().unwrap());
    let payload = &data[HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(corrupt(12, "payload length mismatch"));
    }
    if crc32(payload) != crc {
        return Err(corrupt(8, "payload checksum mismatch"));
    }
    Ok(payload.to_vec())
}

/// Whether a readable, valid blob exists at `path`.
pub fn exists_valid(path: &Path) -> bool {
    read(path).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dss-blob-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d.join("blob.bin")
    }

    #[test]
    fn round_trip() {
        let p = tmpfile("rt");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        write_atomic(&p, &payload).unwrap();
        assert_eq!(read(&p).unwrap(), payload);
        assert!(exists_valid(&p));
        std::fs::remove_dir_all(p.parent().unwrap()).ok();
    }

    #[test]
    fn overwrite_replaces_whole_blob() {
        let p = tmpfile("over");
        write_atomic(&p, b"generation-1-which-is-longer").unwrap();
        write_atomic(&p, b"gen2").unwrap();
        assert_eq!(read(&p).unwrap(), b"gen2");
        // No temp file lingers after a successful swap.
        assert!(!tmp_path(&p).exists());
        std::fs::remove_dir_all(p.parent().unwrap()).ok();
    }

    #[test]
    fn empty_payload_is_fine() {
        let p = tmpfile("empty");
        write_atomic(&p, b"").unwrap();
        assert_eq!(read(&p).unwrap(), b"");
        std::fs::remove_dir_all(p.parent().unwrap()).ok();
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let p = tmpfile("corrupt");
        write_atomic(&p, b"precious bytes").unwrap();
        let mut data = std::fs::read(&p).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x40;
        std::fs::write(&p, &data).unwrap();
        assert!(matches!(read(&p), Err(StoreError::Corrupt { .. })));
        assert!(!exists_valid(&p));
        std::fs::remove_dir_all(p.parent().unwrap()).ok();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let p = tmpfile("trunc");
        write_atomic(&p, b"will be torn").unwrap();
        let data = std::fs::read(&p).unwrap();
        for cut in 0..data.len() {
            std::fs::write(&p, &data[..cut]).unwrap();
            assert!(
                matches!(read(&p), Err(StoreError::Corrupt { .. })),
                "cut at {cut} must be corrupt"
            );
        }
        std::fs::remove_dir_all(p.parent().unwrap()).ok();
    }

    #[test]
    fn crash_between_tmp_write_and_rename_keeps_the_old_blob() {
        let p = tmpfile("crash");
        write_atomic(&p, b"committed").unwrap();
        // Simulate a crash mid-swap: a torn temp file next to a good blob.
        std::fs::write(tmp_path(&p), b"torn garbage").unwrap();
        assert_eq!(read(&p).unwrap(), b"committed");
        // The next successful write cleans the temp up.
        write_atomic(&p, b"committed-2").unwrap();
        assert!(!tmp_path(&p).exists());
        assert_eq!(read(&p).unwrap(), b"committed-2");
        std::fs::remove_dir_all(p.parent().unwrap()).ok();
    }

    #[test]
    fn missing_blob_is_io_not_corrupt() {
        let p = tmpfile("missing");
        assert!(matches!(read(&p), Err(StoreError::Io { .. })));
        assert!(!exists_valid(&p));
    }
}
