//! Property tests: record codec totality, log recovery, compaction safety.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dss_store::{Log, LogConfig, TransitionDb, TransitionRecord};
use proptest::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dss-store-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn record_strategy() -> impl Strategy<Value = TransitionRecord> {
    (1usize..8).prop_flat_map(|m| {
        (
            any::<u64>(),
            prop::collection::vec(0..m, 0..20),
            Just(m),
            prop::collection::vec((any::<u32>(), 0.0..1e5f64), 0..4),
            prop::collection::vec(0..m, 0..20),
            -1e6..1e6f64,
            prop::collection::vec(0..m, 0..20),
            prop::collection::vec((any::<u32>(), 0.0..1e5f64), 0..4),
        )
            .prop_map(
                |(
                    epoch,
                    machine_of,
                    n_machines,
                    source_rates,
                    action_machine_of,
                    reward,
                    next_machine_of,
                    next_source_rates,
                )| TransitionRecord {
                    epoch,
                    machine_of,
                    n_machines,
                    source_rates,
                    action_machine_of,
                    reward,
                    next_machine_of,
                    next_source_rates,
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode/decode is the identity on valid records.
    #[test]
    fn record_roundtrip(rec in record_strategy()) {
        prop_assert_eq!(TransitionRecord::decode(rec.encode()).unwrap(), rec);
    }

    /// decode never panics on arbitrary bytes and never fabricates
    /// out-of-range machine indexes.
    #[test]
    fn decode_is_total_and_validating(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Some(rec) = TransitionRecord::decode(bytes::Bytes::from(bytes)) {
            for &m in rec
                .machine_of
                .iter()
                .chain(&rec.action_machine_of)
                .chain(&rec.next_machine_of)
            {
                prop_assert!(m < rec.n_machines);
            }
            prop_assert!(rec.reward.is_finite());
        }
    }

    /// Whatever is appended is scanned back in order, across restarts and
    /// arbitrary segment sizes.
    #[test]
    fn db_roundtrip_across_restart(
        recs in prop::collection::vec(record_strategy(), 1..40),
        seg_bytes in 64u64..4096,
    ) {
        let dir = fresh_dir("rt");
        {
            let db = TransitionDb::open_with(&dir, LogConfig {
                max_segment_bytes: seg_bytes,
                sync_every_append: false,
            }).unwrap();
            for r in &recs {
                db.append(r).unwrap();
            }
            db.sync().unwrap();
        }
        let db = TransitionDb::open_with(&dir, LogConfig {
            max_segment_bytes: seg_bytes,
            sync_every_append: false,
        }).unwrap();
        prop_assert_eq!(db.scan().unwrap(), recs);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating the tail of the newest segment loses at most a suffix:
    /// recovery yields a prefix of what was written, and the log stays
    /// appendable.
    #[test]
    fn truncation_recovers_a_prefix(
        payload_count in 2usize..20,
        cut_bytes in 1u64..64,
    ) {
        let dir = fresh_dir("trunc");
        let payloads: Vec<Vec<u8>> =
            (0..payload_count).map(|i| format!("payload-{i:04}").into_bytes()).collect();
        {
            let mut log = Log::open(&dir, LogConfig::default()).unwrap();
            for p in &payloads {
                log.append(p).unwrap();
            }
            log.sync().unwrap();
        }
        // Tear off the last `cut_bytes` of the single segment.
        let seg = dir.join("segment-00000001.log");
        let len = std::fs::metadata(&seg).unwrap().len();
        let keep = len.saturating_sub(cut_bytes);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(keep).unwrap();
        drop(f);

        let mut log = Log::open(&dir, LogConfig::default()).unwrap();
        let recovered: Vec<Vec<u8>> = log.iter().unwrap().collect();
        prop_assert!(recovered.len() <= payloads.len());
        prop_assert_eq!(&recovered[..], &payloads[..recovered.len()]);
        // Still appendable after recovery.
        log.append(b"post-recovery").unwrap();
        let after: Vec<Vec<u8>> = log.iter().unwrap().collect();
        prop_assert_eq!(after.last().unwrap(), &b"post-recovery".to_vec());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Compaction only ever removes a prefix; the surviving records are a
    /// contiguous, most-recent suffix.
    #[test]
    fn compaction_keeps_a_suffix(
        n in 10usize..80,
        keep_segments in 0usize..4,
    ) {
        let dir = fresh_dir("compact");
        let db = TransitionDb::open_with(&dir, LogConfig {
            max_segment_bytes: 512,
            sync_every_append: false,
        }).unwrap();
        let mut recs = Vec::new();
        for i in 0..n {
            let mut r = TransitionRecord {
                epoch: i as u64,
                machine_of: vec![0, 1],
                n_machines: 2,
                source_rates: vec![(0, 1.0)],
                action_machine_of: vec![1, 0],
                reward: -(i as f64),
                next_machine_of: vec![1, 0],
                next_source_rates: vec![(0, 1.0)],
            };
            r.epoch = i as u64;
            db.append(&r).unwrap();
            recs.push(r);
        }
        let dropped = db.compact_to(keep_segments).unwrap() as usize;
        let remaining = db.scan().unwrap();
        prop_assert_eq!(remaining.len(), n - dropped);
        prop_assert_eq!(&remaining[..], &recs[dropped..]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
