//! Criterion benchmarks for the DRL training hot path at the paper's
//! sizes (|B| = 1000, H = 32, hidden 64/32): blocked GEMM kernels, the
//! scratch-buffer MLP step, agent train steps, and replay sampling.
//!
//! The machine-readable counterpart (with naive-baseline pairs and the
//! `BENCH_nn.json` artifact) is the `bench_json` binary; these benches are
//! for interactive `cargo bench` comparisons while iterating.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dss_nn::{mse_loss_grad, Activation, Adam, Matrix, Mlp};
use dss_rl::{
    DdpgAgent, DdpgConfig, DqnAgent, DqnConfig, Elem, KBestMapper, ReplayBuffer, Transition,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const REPLAY_B: usize = 1000;
const BATCH_H: usize = 32;
const STATE_DIM: usize = 128;
const N_ACTIONS: usize = 100;

fn random_transition(rng: &mut StdRng) -> Transition<usize> {
    let state: Vec<Elem> = (0..STATE_DIM).map(|_| rng.random_range(0.0..1.0)).collect();
    let next: Vec<Elem> = (0..STATE_DIM).map(|_| rng.random_range(0.0..1.0)).collect();
    Transition::new(
        state,
        rng.random_range(0..N_ACTIONS),
        rng.random_range(-2.0..0.0),
        next,
    )
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for (m, k, n) in [(32usize, 64usize, 32usize), (32, 2001, 64), (128, 128, 128)] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::from_fn(m, k, |_, _| rng.random_range(-1.0..1.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.random_range(-1.0..1.0));
        let bt = Matrix::from_fn(n, k, |r, c| b[(c, r)]);
        let mut out = Matrix::zeros(m, n);
        group.bench_function(format!("matmul_into_{m}x{k}x{n}"), |bch| {
            bch.iter(|| a.matmul_into(black_box(&b), &mut out));
        });
        group.bench_function(format!("matmul_t_b_into_{m}x{k}x{n}"), |bch| {
            bch.iter(|| a.matmul_transpose_b_into(black_box(&bt), &mut out));
        });
    }
    group.finish();
}

fn bench_mlp_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_train");
    let sizes = [STATE_DIM + N_ACTIONS, 64, 32, 1];
    let acts = [Activation::Tanh, Activation::Tanh, Activation::Identity];
    let mut net = Mlp::new(&sizes, &acts, 7);
    let mut opt = Adam::new(1e-3);
    let mut rng = StdRng::seed_from_u64(2);
    let x = Matrix::from_fn(BATCH_H, sizes[0], |_, _| rng.random_range(-1.0..1.0));
    let y = Matrix::from_fn(BATCH_H, 1, |_, _| rng.random_range(-1.0..0.0));
    group.bench_function("fwd_bwd_apply_h32", |bch| {
        bch.iter(|| {
            let pred = net.forward(black_box(&x));
            let (_, grad) = mse_loss_grad(pred, &y);
            net.zero_grad();
            net.backward(&grad);
            net.apply_gradients(&mut opt);
        });
    });
    group.finish();
}

fn bench_agents(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_loop");
    {
        let mut agent = DqnAgent::new(
            STATE_DIM,
            N_ACTIONS,
            DqnConfig {
                replay_capacity: REPLAY_B,
                batch: BATCH_H,
                ..DqnConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..REPLAY_B {
            agent.store(random_transition(&mut rng));
        }
        group.bench_function("dqn_train_step_b1000_h32", |bch| {
            bch.iter(|| agent.train_step(&mut rng));
        });
    }
    {
        let (n, m) = (10, 10);
        let mut agent = DdpgAgent::new(
            STATE_DIM,
            n * m,
            DdpgConfig {
                replay_capacity: REPLAY_B,
                batch: BATCH_H,
                ..DdpgConfig::default()
            },
        );
        let mut mapper = KBestMapper::new(n, m);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..REPLAY_B {
            let t = random_transition(&mut rng);
            let mut onehot = vec![0.0; n * m];
            for i in 0..n {
                onehot[i * m + rng.random_range(0..m)] = 1.0;
            }
            agent.store(Transition::new(t.state, onehot, t.reward, t.next_state));
        }
        group.bench_function("ddpg_train_step_b1000_h32", |bch| {
            bch.iter(|| agent.train_step(&mut mapper, &mut rng));
        });
    }
    {
        let mut buf: ReplayBuffer<usize> = ReplayBuffer::new(REPLAY_B);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..REPLAY_B {
            buf.push(random_transition(&mut rng));
        }
        let mut idx = Vec::new();
        group.bench_function("replay_sample_indices_h32", |bch| {
            bch.iter(|| {
                buf.sample_indices_into(BATCH_H, &mut rng, &mut idx);
                black_box(&idx);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_mlp_step, bench_agents);
criterion_main!(benches);
