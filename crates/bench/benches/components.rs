//! Criterion micro/meso benchmarks for every performance-relevant
//! component: DES throughput, analytic evaluation, NN training, MIQP-NN
//! mapping, SVR fitting, replay buffer, and per-epoch scheduler decisions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dss_apps::{continuous_queries, log_stream, word_count, CqScale};
use dss_core::{ActorCriticScheduler, ControlConfig, SchedState, Scheduler};
use dss_nn::{mse_loss_grad, Activation, Adam, Matrix, Mlp};
use dss_rl::{ActionMapper, KBestMapper, ReplayBuffer, Transition};
use dss_sim::{AnalyticModel, Assignment, ClusterSpec, SimConfig, SimEngine};
use dss_svr::{LinearSvr, SvrConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    for (label, app) in [
        ("cq_small", continuous_queries(CqScale::Small)),
        ("cq_large", continuous_queries(CqScale::Large)),
        ("log_stream", log_stream()),
        ("word_count", word_count()),
    ] {
        group.bench_function(format!("{label}_10s"), |b| {
            b.iter_batched(
                || {
                    let cluster = ClusterSpec::homogeneous(10);
                    let mut eng = SimEngine::new(
                        app.topology.clone(),
                        cluster.clone(),
                        app.workload.clone(),
                        SimConfig::steady_state(1),
                    )
                    .unwrap();
                    let rr = Assignment::round_robin(&app.topology, &cluster);
                    eng.deploy(rr).unwrap();
                    eng
                },
                |mut eng| {
                    eng.run_until(10.0);
                    black_box(eng.events_processed())
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_analytic_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_eval");
    for (label, app) in [
        ("cq_small", continuous_queries(CqScale::Small)),
        ("cq_large", continuous_queries(CqScale::Large)),
        ("log_stream", log_stream()),
    ] {
        let cluster = ClusterSpec::homogeneous(10);
        let mut model = AnalyticModel::new(
            app.topology.clone(),
            cluster.clone(),
            SimConfig::steady_state(1),
        )
        .unwrap();
        let rr = Assignment::round_robin(&app.topology, &cluster);
        group.bench_function(label, |b| {
            b.iter(|| black_box(model.evaluate(black_box(&rr), &app.workload)));
        });
    }
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    // The paper's critic shape at CQ-large scale: 2001 inputs, 64/32 tanh.
    let mut net = Mlp::new(
        &[2001, 64, 32, 1],
        &[Activation::Tanh, Activation::Tanh, Activation::Identity],
        7,
    );
    let mut rng = StdRng::seed_from_u64(1);
    let x = Matrix::from_fn(32, 2001, |_, _| rng.random_range(0.0..1.0));
    let y = Matrix::from_fn(32, 1, |_, _| rng.random_range(-1.0..0.0));
    group.bench_function("critic_infer_batch32", |b| {
        b.iter(|| black_box(net.infer(black_box(&x))));
    });
    let mut opt = Adam::new(1e-3);
    group.bench_function("critic_train_step_batch32", |b| {
        b.iter(|| {
            let pred = net.forward(&x);
            let (_, grad) = mse_loss_grad(pred, &y);
            net.zero_grad();
            net.backward(&grad);
            net.apply_gradients(&mut opt);
        });
    });
    group.finish();
}

fn bench_knn_mapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_mapper");
    let mut rng = StdRng::seed_from_u64(3);
    for (n, m) in [(20usize, 10usize), (100, 10), (200, 20)] {
        let proto: Vec<f64> = (0..n * m).map(|_| rng.random_range(0.0..1.0)).collect();
        let mut mapper = KBestMapper::new(n, m);
        group.bench_function(format!("kbest_n{n}_m{m}_k8"), |b| {
            b.iter(|| black_box(mapper.nearest(black_box(&proto), 8)));
        });
    }
    group.finish();
}

fn bench_svr(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let xs: Vec<Vec<f64>> = (0..500)
        .map(|_| (0..5).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>()).collect();
    c.bench_function("svr_fit_500x5", |b| {
        b.iter(|| {
            black_box(LinearSvr::fit(
                black_box(&xs),
                &ys,
                SvrConfig {
                    epochs: 30,
                    ..SvrConfig::default()
                },
            ))
        });
    });
}

fn bench_replay(c: &mut Criterion) {
    let mut buf: ReplayBuffer<usize> = ReplayBuffer::new(1000);
    for i in 0..1000 {
        buf.push(Transition::new(
            vec![0.0; 128],
            i % 10,
            -1.0,
            vec![0.0; 128],
        ));
    }
    let mut rng = StdRng::seed_from_u64(9);
    c.bench_function("replay_sample_h32", |b| {
        b.iter(|| black_box(buf.sample(32, &mut rng)));
    });
}

fn bench_scheduler_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_decision");
    group.sample_size(10);
    let app = continuous_queries(CqScale::Large);
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = ControlConfig::test();
    let mut ac = ActorCriticScheduler::new(100, 10, 1, &cfg);
    ac.freeze();
    let state = SchedState::new(
        Assignment::round_robin(&app.topology, &cluster),
        app.workload.clone(),
    );
    group.bench_function("actor_critic_epoch_n100_m10", |b| {
        b.iter(|| black_box(ac.schedule(black_box(&state))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_throughput,
    bench_analytic_eval,
    bench_nn,
    bench_knn_mapper,
    bench_svr,
    bench_replay,
    bench_scheduler_decision
);
criterion_main!(benches);
