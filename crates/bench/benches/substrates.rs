//! Criterion benchmarks for the control-plane substrates: coordination
//! service, wire codec, and the transition database.
//!
//! These bound the control overhead of the framework outside the
//! decision-making path: the paper's "low control overhead" claim rests on
//! the per-epoch cost being dominated by measurement, not plumbing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dss_coord::{CoordConfig, CoordService, CreateMode};
use dss_proto::{decode_frame, encode_frame, Message};
use dss_store::{LogConfig, TransitionDb, TransitionRecord};

fn bench_coord(c: &mut Criterion) {
    let mut group = c.benchmark_group("coord");

    group.bench_function("set_get_assignment_znode", |b| {
        let svc = CoordService::new(CoordConfig::default());
        let s = svc.connect();
        s.ensure_path("/storm/assignments/bench", b"init").unwrap();
        let payload = dss_coord::storm::encode_assignment(&vec![3usize; 100], 10);
        b.iter(|| {
            s.set_data("/storm/assignments/bench", &payload, None)
                .unwrap();
            black_box(s.get_data("/storm/assignments/bench").unwrap().0.len())
        });
    });

    group.bench_function("create_delete_ephemeral", |b| {
        let svc = CoordService::new(CoordConfig::default());
        let s = svc.connect();
        s.ensure_path("/beats", b"").unwrap();
        b.iter(|| {
            s.create("/beats/w", b"", CreateMode::Ephemeral).unwrap();
            s.delete("/beats/w", None).unwrap();
        });
    });

    group.bench_function("children_watch_fire", |b| {
        let svc = CoordService::new(CoordConfig::default());
        let s = svc.connect();
        s.ensure_path("/parent", b"").unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let (_, watcher) = s.get_children_watch("/parent").unwrap();
            let path = format!("/parent/n{i}");
            i += 1;
            s.create(&path, b"", CreateMode::Persistent).unwrap();
            black_box(watcher.drain().len())
        });
    });

    group.bench_function("session_expiry_100_supervisors", |b| {
        b.iter_batched(
            || {
                let svc = CoordService::new(CoordConfig {
                    session_timeout_ms: 10,
                });
                let master = svc.connect();
                master.ensure_path("/storm/supervisors", b"").unwrap();
                for m in 0..100 {
                    let sess = svc.connect();
                    sess.create(
                        &dss_coord::StormPaths::supervisor(m),
                        b"",
                        CreateMode::Ephemeral,
                    )
                    .unwrap();
                    std::mem::forget(sess); // crash: never heartbeats again
                }
                svc
            },
            |svc| black_box(svc.advance_to(1_000).len()),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

fn state_report(n: usize, m: usize) -> Message {
    Message::StateReport {
        epoch: 42,
        machine_of: (0..n).map(|i| i % m).collect(),
        n_machines: m,
        source_rates: vec![(0, 250.0), (1, 250.0)],
        rate_multiplier: 1.0,
    }
}

fn bench_proto(c: &mut Criterion) {
    let mut group = c.benchmark_group("proto");

    for (label, n) in [("state_report_20", 20), ("state_report_100", 100)] {
        let msg = state_report(n, 10);
        group.bench_function(format!("encode_{label}"), |b| {
            b.iter(|| black_box(encode_frame(&msg).len()));
        });
        let frame = encode_frame(&msg);
        group.bench_function(format!("decode_{label}"), |b| {
            b.iter(|| black_box(decode_frame(&frame).unwrap()));
        });
    }

    group.bench_function("roundtrip_reward_report", |b| {
        let msg = Message::RewardReport {
            epoch: 7,
            avg_tuple_ms: 1.72,
            measurements: vec![1.7, 1.71, 1.74, 1.73, 1.72],
        };
        b.iter(|| {
            let frame = encode_frame(&msg);
            black_box(decode_frame(&frame).unwrap())
        });
    });

    group.finish();
}

fn record(n: usize, m: usize, epoch: u64) -> TransitionRecord {
    TransitionRecord {
        epoch,
        machine_of: (0..n).map(|i| i % m).collect(),
        n_machines: m,
        source_rates: vec![(0, 500.0)],
        action_machine_of: (0..n).map(|i| (i + 1) % m).collect(),
        reward: -1.5,
        next_machine_of: (0..n).map(|i| (i + 1) % m).collect(),
        next_source_rates: vec![(0, 500.0)],
    }
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(20);

    group.bench_function("append_100_executor_sample", |b| {
        let dir = std::env::temp_dir().join(format!("dss-bench-append-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let db = TransitionDb::open(&dir).unwrap();
        let mut epoch = 0;
        b.iter(|| {
            epoch += 1;
            db.append(&record(100, 10, epoch)).unwrap()
        });
        std::fs::remove_dir_all(&dir).ok();
    });

    group.bench_function("scan_1000_samples", |b| {
        let dir = std::env::temp_dir().join(format!("dss-bench-scan-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let db = TransitionDb::open(&dir).unwrap();
        for e in 0..1000 {
            db.append(&record(100, 10, e)).unwrap();
        }
        b.iter(|| black_box(db.scan().unwrap().len()));
        std::fs::remove_dir_all(&dir).ok();
    });

    group.bench_function("recovery_open_1000_samples", |b| {
        let dir = std::env::temp_dir().join(format!("dss-bench-recover-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = TransitionDb::open_with(
                &dir,
                LogConfig {
                    max_segment_bytes: 256 << 10,
                    sync_every_append: false,
                },
            )
            .unwrap();
            for e in 0..1000 {
                db.append(&record(100, 10, e)).unwrap();
            }
            db.sync().unwrap();
        }
        b.iter(|| {
            let db = TransitionDb::open(&dir).unwrap();
            black_box(db.len())
        });
        std::fs::remove_dir_all(&dir).ok();
    });

    group.finish();
}

criterion_group!(benches, bench_coord, bench_proto, bench_store);
criterion_main!(benches);
