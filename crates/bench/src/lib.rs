//! Shared harness for the figure-regeneration binaries.
//!
//! Every evaluation figure of the paper has a binary in `src/bin`
//! (`fig6` ... `fig12`, `summary_table`, plus ablations); all share the
//! CLI conventions implemented here:
//!
//! ```text
//! --preset <paper|fast|test>   training budget (default: fast)
//! --minutes <f64>              deployment-run length (default: the figure's)
//! --out <dir>                  CSV output directory (default: results/)
//! --seed <u64>                 master seed override
//! ```
//!
//! `fast` reproduces the paper's *shapes* in minutes; `paper` uses the
//! paper's full sample/epoch budgets (10,000 offline samples, 1,500–2,000
//! online epochs).

use std::path::PathBuf;

use dss_core::ControlConfig;
use dss_metrics::{CsvWriter, ExperimentRecord, ShapeCheck, TimeSeries};
use dss_sim::ClusterSpec;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Training budget preset.
    pub config: ControlConfig,
    /// Optional run-length override (minutes).
    pub minutes: Option<f64>,
    /// Output directory.
    pub out_dir: PathBuf,
    /// Preset name (for logging).
    pub preset: String,
}

impl RunOptions {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    /// Panics (with a usage message) on malformed arguments.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut preset = "fast".to_string();
        let mut minutes = None;
        let mut out_dir = PathBuf::from("results");
        let mut seed = None;
        let mut it = args.skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--preset" => preset = it.next().expect("--preset needs a value"),
                "--minutes" => {
                    minutes = Some(
                        it.next()
                            .expect("--minutes needs a value")
                            .parse()
                            .expect("--minutes must be a number"),
                    )
                }
                "--out" => out_dir = PathBuf::from(it.next().expect("--out needs a value")),
                "--seed" => {
                    seed = Some(
                        it.next()
                            .expect("--seed needs a value")
                            .parse()
                            .expect("--seed must be an integer"),
                    )
                }
                other => panic!("unknown flag `{other}`; expected --preset/--minutes/--out/--seed"),
            }
        }
        let mut config = match preset.as_str() {
            "paper" => ControlConfig::paper(),
            "fast" => ControlConfig::fast(),
            "test" => ControlConfig::test(),
            other => panic!("unknown preset `{other}` (paper|fast|test)"),
        };
        if let Some(s) = seed {
            config.seed = s;
        }
        Self {
            config,
            minutes,
            out_dir,
            preset,
        }
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args())
    }

    /// The paper's cluster: 10 worker machines.
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::homogeneous(10)
    }

    /// Run length in minutes, with a figure-specific default.
    pub fn minutes_or(&self, default: f64) -> f64 {
        self.minutes.unwrap_or(default)
    }
}

/// Writes labelled series to `<out>/<name>.csv` and echoes them to stdout
/// in the same `t,label...` layout the paper's plots use.
pub fn emit_series(opts: &RunOptions, name: &str, labelled: &[(&str, &TimeSeries)]) {
    let path = opts.out_dir.join(format!("{name}.csv"));
    dss_metrics::csv::write_series_table(&path, labelled).expect("write CSV");
    println!("# wrote {}", path.display());
    let mut header = String::from("t");
    for (l, _) in labelled {
        header.push(',');
        header.push_str(l);
    }
    println!("{header}");
    let n = labelled[0].1.len();
    for i in 0..n {
        let mut row = format!("{}", labelled[0].1.times()[i]);
        for (_, s) in labelled {
            row.push_str(&format!(",{:.4}", s.values()[i]));
        }
        println!("{row}");
    }
}

/// Writes paper-vs-measured records and shape checks to
/// `<out>/<name>_records.csv` and prints the Markdown report.
pub fn emit_records(
    opts: &RunOptions,
    name: &str,
    records: &[ExperimentRecord],
    checks: &[ShapeCheck],
) {
    let mut w = CsvWriter::new(vec![
        "experiment".into(),
        "quantity".into(),
        "paper".into(),
        "measured".into(),
    ]);
    for r in records {
        w.text_row(&[
            &r.experiment,
            &r.quantity,
            &r.paper.map_or_else(String::new, |p| p.to_string()),
            &format!("{:.4}", r.measured),
        ]);
    }
    let path = opts.out_dir.join(format!("{name}_records.csv"));
    w.save(&path).expect("write records CSV");
    println!("# wrote {}", path.display());
    print!("{}", dss_metrics::summary::markdown_report(records, checks));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> impl Iterator<Item = String> + '_ {
        std::iter::once("bin".to_string()).chain(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_defaults() {
        let o = RunOptions::parse(args(""));
        assert_eq!(o.preset, "fast");
        assert_eq!(
            o.config.offline_samples,
            ControlConfig::fast().offline_samples
        );
        assert_eq!(o.minutes_or(20.0), 20.0);
        assert_eq!(o.cluster().n_machines(), 10);
    }

    #[test]
    fn parses_overrides() {
        let o = RunOptions::parse(args("--preset test --minutes 5 --out /tmp/x --seed 9"));
        assert_eq!(
            o.config.offline_samples,
            ControlConfig::test().offline_samples
        );
        assert_eq!(o.config.seed, 9);
        assert_eq!(o.minutes_or(20.0), 5.0);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    #[should_panic(expected = "unknown preset")]
    fn rejects_bad_preset() {
        let _ = RunOptions::parse(args("--preset huge"));
    }
}
