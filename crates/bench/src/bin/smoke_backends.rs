//! Cross-backend end-to-end smoke: a tiny train + deploy on **all
//! three** environment backends across registry scenarios.
//!
//! For every requested scenario × backend pair this runs the full
//! pipeline at a tiny budget — offline random-action collection, DQN
//! pre-training + online learning against that backend, then deployment
//! of the trained solution on a fresh tuple-level engine under the
//! scenario's rate schedule — and asserts the run is sane (rewards
//! recorded, deployment curve non-empty, latency finite and positive).
//! The cluster leg additionally asserts backend-completeness of the seam:
//! with no faults injected, the control-plane backend's reward series is
//! **bit-identical** to the bare-engine backend's.
//!
//! CI runs this as the `backend-smoke` job (channel and TCP cluster
//! transports), so a change that breaks the `Environment` seam for any
//! backend (or any registry scenario it exercises) fails fast with a
//! named scenario/backend in the log.
//!
//! ```text
//! smoke_backends [--scenarios a,b,...] [--epochs N] [--transport channel|tcp]
//!                [--method dqn|actor-critic] [--chaos-seed N]
//!
//! --scenarios   comma-separated registry names
//!               (default: cq-small-steady,cq-small-bursty)
//! --epochs      online epochs per method (default: 6)
//! --transport   how the cluster backend pairs agent and master
//!               (default: channel)
//! --method      which DRL method carries the smoke (default: dqn).
//!               `actor-critic` is the one that stays tractable at
//!               fleet scale (cq-fleet): its per-epoch cost follows the
//!               hierarchical mapper + sparsity-aware act path, while
//!               DQN's single-move action head is O(N*M) wide. On
//!               scenarios with >= 64 machines the actor-critic leg
//!               turns on hierarchical mapping (machines/8 groups,
//!               top-2 pruning), matching the gated fleet bench.
//! --chaos-seed  make the cluster backend's control-plane link lossy
//!               under this fixed seed: scenarios with their own chaos
//!               plan are re-seeded, all others get a 10%-drop plan. The
//!               fault stream is deterministic per seed; the sim/cluster
//!               bit-identical cross-check is skipped (the trajectories
//!               legitimately diverge).
//! ```

use dss_core::experiment::{
    scenario_deployment_curve, stable_ms, train_method_on, train_method_with, Backend, Method,
};
use dss_core::{ClusterTransport, ControlConfig, Scenario};
use dss_metrics::TimeSeries;
use dss_proto::ChaosPlan;

fn main() {
    let mut scenarios = vec!["cq-small-steady".to_string(), "cq-small-bursty".to_string()];
    let mut epochs = 6usize;
    let mut transport = ClusterTransport::Channel;
    let mut method = Method::Dqn;
    let mut chaos_seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scenarios" => {
                scenarios = args
                    .next()
                    .expect("--scenarios needs a value")
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--epochs" => {
                epochs = args
                    .next()
                    .expect("--epochs needs a value")
                    .parse()
                    .expect("--epochs must be a number");
            }
            "--transport" => {
                transport = match args.next().expect("--transport needs a value").as_str() {
                    "channel" => ClusterTransport::Channel,
                    "tcp" => ClusterTransport::Tcp,
                    other => panic!("unknown transport `{other}`; expected channel|tcp"),
                };
            }
            "--method" => {
                method = match args.next().expect("--method needs a value").as_str() {
                    "dqn" => Method::Dqn,
                    "actor-critic" => Method::ActorCritic,
                    other => panic!("unknown method `{other}`; expected dqn|actor-critic"),
                };
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    args.next()
                        .expect("--chaos-seed needs a value")
                        .parse()
                        .expect("--chaos-seed must be a number"),
                );
            }
            other => panic!(
                "unknown flag `{other}`; expected \
                 --scenarios/--epochs/--transport/--method/--chaos-seed"
            ),
        }
    }

    let base_cfg = ControlConfig {
        offline_samples: 30,
        offline_steps: 25,
        online_epochs: epochs,
        eps_decay_epochs: epochs.max(2) / 2,
        sim_epoch_s: 1.0,
        ..ControlConfig::test()
    };

    for name in &scenarios {
        let mut scenario = Scenario::by_name(name)
            .unwrap_or_else(|| panic!("`{name}` is not a registry scenario"));
        // Fleet-sized scenarios get the hierarchical mapper knobs the
        // gated bench pair measures with; the paper-scale scenarios stay
        // on the flat mapper.
        let cfg = if method == Method::ActorCritic && scenario.n_machines() >= 64 {
            base_cfg.with_mapper_knobs(scenario.n_machines() / 8, 2)
        } else {
            base_cfg
        };
        if let Some(seed) = chaos_seed {
            scenario.chaos = Some(match scenario.chaos.take() {
                Some(plan) => plan.with_seed(seed),
                None => ChaosPlan::lossy(seed, 0.10)
                    .with_duplicate(0.03)
                    .with_delay(0.03),
            });
        }
        let mut sim_rewards: Option<TimeSeries> = None;
        for backend in Backend::all() {
            let t0 = std::time::Instant::now();
            let out = match backend {
                // The cluster leg honors --transport (CI runs both).
                Backend::Cluster => {
                    train_method_with(method, &scenario.app, &scenario.cluster, &cfg, || {
                        scenario.cluster_env_with(&cfg, cfg.seed, transport)
                    })
                }
                _ => train_method_on(backend, method, &scenario, &cfg),
            };
            let rewards = out.rewards.as_ref().expect("DRL methods record rewards");
            assert_eq!(
                rewards.len(),
                cfg.online_epochs,
                "{name}/{}",
                backend.label()
            );
            assert!(
                rewards.values().iter().all(|r| r.is_finite() && *r < 0.0),
                "{name}/{}: rewards must be finite negative latencies",
                backend.label()
            );
            match backend {
                Backend::Sim => sim_rewards = Some(rewards.clone()),
                // Backend-completeness: the control plane adds protocol
                // fidelity, not numeric drift (fault-free, chaos-free
                // scenarios only — a replayed crash or a lossy link
                // legitimately changes the trajectory).
                Backend::Cluster if scenario.faults.is_none() && scenario.chaos.is_none() => {
                    let sim = sim_rewards.as_ref().expect("sim leg ran first");
                    assert_eq!(
                        sim.values(),
                        rewards.values(),
                        "{name}: cluster rewards drifted from sim rewards"
                    );
                }
                _ => {}
            }
            let curve = scenario_deployment_curve(&scenario, &cfg, &out.solution, 2.0, 10.0);
            assert!(!curve.is_empty(), "{name}/{}: empty curve", backend.label());
            let ms = stable_ms(&curve);
            assert!(
                ms.is_finite() && ms > 0.0,
                "{name}/{}: bad stable latency {ms}",
                backend.label()
            );
            println!(
                "ok {name:<24} backend={:<8} trained {} epochs, deployed: {:.3} ms stable ({:.1}s)",
                backend.label(),
                cfg.online_epochs,
                ms,
                t0.elapsed().as_secs_f64()
            );
        }
    }
    println!("smoke_backends: all scenario x backend pairs passed");
}
