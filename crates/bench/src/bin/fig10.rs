//! Figure 10: average tuple processing time over the word count topology
//! (stream version, large scale), four methods, 20 minutes.

use dss_apps::word_count;
use dss_bench::{emit_records, emit_series, RunOptions};
use dss_core::experiment::{figure_deployment, stable_ms, Method};
use dss_metrics::{ExperimentRecord, ShapeCheck, TimeSeries};

/// Paper stable values: default, model-based, DQN, actor-critic (ms).
const PAPER: [f64; 4] = [3.10, 2.16, 2.29, 1.70];

fn main() {
    let opts = RunOptions::from_env();
    let minutes = opts.minutes_or(20.0);
    let app = word_count();
    eprintln!("[fig10] training 4 methods on {}", app.name);
    let results = figure_deployment(&app, &opts.cluster(), &opts.config, minutes, 30.0);
    let labelled: Vec<(&str, &TimeSeries)> =
        results.iter().map(|(m, s, _)| (m.label(), s)).collect();
    emit_series(&opts, "fig10", &labelled);

    let mut records = Vec::new();
    let mut stable = std::collections::HashMap::new();
    for ((method, series, _), paper_ms) in results.iter().zip(PAPER) {
        let ms = stable_ms(series);
        stable.insert(*method, ms);
        records.push(ExperimentRecord::new(
            "fig10",
            format!("stable avg tuple time, {} (ms)", method.label()),
            Some(paper_ms),
            ms,
        ));
    }
    let checks = vec![ShapeCheck::new(
        "fig10",
        "actor-critic wins",
        stable[&Method::ActorCritic] < stable[&Method::ModelBased]
            && stable[&Method::ActorCritic] < stable[&Method::Default]
            && stable[&Method::ActorCritic] < stable[&Method::Dqn],
    )];
    emit_records(&opts, "fig10", &records, &checks);
}
