//! Runs the entire evaluation — every figure plus the headline summary and
//! ablations — writing CSVs to the output directory. `--preset fast`
//! (default) reproduces shapes in tens of minutes; `--preset paper` uses
//! the paper's full budgets.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "summary_table",
        "ablation_k",
        "ablation_state",
        "ablation_mapper",
        "ablation_replay",
        "ablation_noise",
        "fault_recovery",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in bins {
        eprintln!("==> {bin}");
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("!! {bin} exited with {status}");
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        eprintln!("all experiments completed");
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
