//! Ablation: the K in the MIQP-NN K-nearest-neighbour action mapping.
//!
//! The paper leaves K unstated; DESIGN.md calls this choice out for
//! ablation. Small K starves the critic of choices; large K costs MIQP
//! time per decision. This sweep reports the deployed solution quality and
//! decision latency for K ∈ {1, 2, 4, 8, 16, 32}.

use std::time::Instant;

use dss_apps::{continuous_queries, CqScale};
use dss_bench::{emit_records, RunOptions};
use dss_core::experiment::{deployment_curve, stable_ms, train_method, Method};
use dss_metrics::{ExperimentRecord, ShapeCheck};

fn main() {
    let opts = RunOptions::from_env();
    let app = continuous_queries(CqScale::Small);
    let cluster = opts.cluster();
    let mut records = Vec::new();
    let mut stable_by_k = Vec::new();

    for k in [1usize, 2, 4, 8, 16, 32] {
        eprintln!("[ablation_k] K = {k}");
        let mut cfg = opts.config;
        cfg.k = k;
        let t0 = Instant::now();
        let outcome = train_method(Method::ActorCritic, &app, &cluster, &cfg);
        let train_s = t0.elapsed().as_secs_f64();
        let curve = deployment_curve(&app, &cluster, &cfg, &outcome.solution, 12.0, 30.0);
        let ms = stable_ms(&curve);
        stable_by_k.push((k, ms));
        records.push(ExperimentRecord::new(
            "ablation_k",
            format!("stable avg tuple time at K={k} (ms)"),
            None,
            ms,
        ));
        records.push(ExperimentRecord::new(
            "ablation_k",
            format!("train+decide wall time at K={k} (s)"),
            None,
            train_s,
        ));
    }
    let best_multi = stable_by_k
        .iter()
        .filter(|&&(k, _)| k >= 4)
        .map(|&(_, ms)| ms)
        .fold(f64::INFINITY, f64::min);
    let k1 = stable_by_k[0].1;
    let checks = vec![ShapeCheck::new(
        "ablation_k",
        "some K >= 4 does at least as well as K = 1 (critic choice helps)",
        best_multi <= k1 * 1.05,
    )];
    emit_records(&opts, "ablation_k", &records, &checks);
}
