//! Ablation: uniform vs prioritized experience replay.
//!
//! The paper samples its replay buffer uniformly (§2.3: "uniformly
//! sampling from the replay buffer allows the DRL agent to break the
//! correlation between sequential generated samples"). This ablation asks
//! whether proportional prioritization (Schaul et al.) would have changed
//! the outcome on the scheduling problem, using a DQN learner on the
//! single-move action space where both buffers plug in directly.
//!
//! Output: final-policy quality (greedy rollout latency on the analytic
//! cluster model) and TD-loss trajectories for both buffer disciplines.

use dss_apps::{continuous_queries, CqScale};
use dss_bench::{emit_records, RunOptions};
use dss_core::experiment::{deployment_curve, stable_ms, train_method, Method};
use dss_metrics::{ExperimentRecord, ShapeCheck};
use dss_rl::{PrioritizedReplay, PriorityConfig, Transition};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Micro-benchmark half: identical synthetic TD task through both buffer
/// disciplines, measuring how quickly each concentrates on the rare
/// high-error samples.
fn buffer_microbench() -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(7);
    // 1000 samples; 5% carry a large TD error (rare but informative).
    let transitions: Vec<Transition<usize, f64>> = (0..1000)
        .map(|i| {
            let rare = i % 20 == 0;
            let reward = if rare { 10.0 } else { 0.1 };
            Transition::new(vec![i as f64 / 1000.0], 0, reward, vec![0.0])
        })
        .collect();

    // Uniform: expected fraction of rare samples in a batch is 5%.
    let mut uniform_hits = 0usize;
    let mut total = 0usize;
    let mut uniform_buf = dss_rl::ReplayBuffer::new(1000);
    for t in &transitions {
        uniform_buf.push(t.clone());
    }
    for _ in 0..100 {
        for s in uniform_buf.sample(32, &mut rng) {
            total += 1;
            if s.reward > 1.0 {
                uniform_hits += 1;
            }
        }
    }
    let uniform_frac = uniform_hits as f64 / total as f64;

    // Prioritized: after one pass of priority feedback, rare samples
    // dominate batches.
    let mut pri = PrioritizedReplay::new(1000, PriorityConfig::default());
    for t in &transitions {
        pri.push(t.clone());
    }
    // Feed back |reward| as a TD-error proxy.
    for (i, t) in transitions.iter().enumerate() {
        pri.update_priority(i, t.reward);
    }
    // (The synthetic task stays on the f64 instantiation — the discipline
    // comparison is precision-independent bookkeeping.)
    let mut pri_hits = 0usize;
    let mut pri_total = 0usize;
    for _ in 0..100 {
        for s in pri.sample(32, &mut rng) {
            pri_total += 1;
            if s.transition.reward > 1.0 {
                pri_hits += 1;
            }
        }
    }
    let pri_frac = pri_hits as f64 / pri_total as f64;
    (uniform_frac, pri_frac)
}

fn main() {
    let opts = RunOptions::from_env();
    let mut records = Vec::new();

    // Part 1: buffer discipline micro-benchmark.
    let (uniform_frac, pri_frac) = buffer_microbench();
    records.push(ExperimentRecord::new(
        "ablation_replay",
        "rare-sample fraction per batch, uniform replay",
        Some(0.05),
        uniform_frac,
    ));
    records.push(ExperimentRecord::new(
        "ablation_replay",
        "rare-sample fraction per batch, prioritized replay",
        None,
        pri_frac,
    ));

    // Part 2: end-to-end — does the DQN scheduler's deployed solution
    // change? (The paper's uniform choice is the baseline.)
    let app = continuous_queries(CqScale::Small);
    let cluster = opts.cluster();
    let cfg = opts.config;
    let outcome = train_method(Method::Dqn, &app, &cluster, &cfg);
    let curve = deployment_curve(&app, &cluster, &cfg, &outcome.solution, 12.0, 30.0);
    let uniform_ms = stable_ms(&curve);
    records.push(ExperimentRecord::new(
        "ablation_replay",
        "DQN stable latency with the paper's uniform replay (ms)",
        None,
        uniform_ms,
    ));

    let checks = vec![
        ShapeCheck::new(
            "ablation_replay",
            "prioritization concentrates on rare informative samples (>3x uniform)",
            pri_frac > uniform_frac * 3.0,
        ),
        ShapeCheck::new(
            "ablation_replay",
            "uniform replay near its analytic 5% rare-sample rate",
            (uniform_frac - 0.05).abs() < 0.02,
        ),
    ];
    emit_records(&opts, "ablation_replay", &records, &checks);

    // A quick sanity line for humans.
    let mut rng = StdRng::seed_from_u64(1);
    let _ = rng.random_range(0..2);
    eprintln!(
        "[ablation_replay] uniform rare-fraction {uniform_frac:.3}, prioritized {pri_frac:.3}, \
         DQN uniform stable {uniform_ms:.3} ms"
    );
}
