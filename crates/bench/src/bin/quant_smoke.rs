//! Quantized-rollout argmax-agreement harness.
//!
//! For **every** registry scenario this builds the actor-critic agent at
//! the scenario's real problem shape (hierarchical mapper knobs at fleet
//! scale, matching `smoke_backends` and the gated fleet bench), snapshots
//! the shipped rollout quant profile
//! ([`DdpgAgent::rollout_quant_policy`]: exact-f32 actor, i8 critic
//! bulk, bf16 action block and tail), and drives the f32 agent and the
//! quantized
//! policy through the same decision stream — identical featurized states
//! walked from the scenario's initial assignment, identical RNG streams,
//! the same decaying exploration schedule. The two paths must select the
//! same assignment on **at least 99% of decisions per scenario**, the
//! tentpole acceptance bar for acting on quantized frames.
//!
//! The agent is **briefly trained first** (a load-balance reward over
//! the same trajectory machinery), because that is the operating point
//! the quant frame actually ships at: rollout workers pull
//! learner-published weights, never the random init. The init is also
//! the one point where the bar is unreachable *in principle* — a fresh
//! critic scores all K candidates identically to within rounding, so
//! ties flip on any lossy weight encoding (measured at 100×10: ~1.5% of
//! init decisions flip even with an exact-f32 action block and tail,
//! purely from i8 bulk error shifting near-zero ReLU gates). Training
//! separates the Q surface and the i8 profile then agrees at 100%. The
//! *pre*-warm-up rounds still execute the full comparison: the
//! exact-f32 actor must keep candidate sets bit-identical at every
//! operating point, trained or not, and this harness asserts that
//! outright on every decision of both phases.
//!
//! CI runs this as half of the `quant-smoke` job (the other half is a
//! tiny `rollout_quant` train + deploy over both transports).
//!
//! ```text
//! quant_smoke [--rounds N] [--fleet-rounds N] [--warmup N]
//!
//! --rounds        decisions per paper-scale scenario (default: 200)
//! --fleet-rounds  decisions per fleet-scale scenario (default: 100)
//! --warmup        warm-up train steps per scenario (default: 64;
//!                 fleet-scale scenarios use 1/4 of it)
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use dss_core::action::choice_to_assignment;
use dss_core::config::ControlConfig;
use dss_core::scenario::Scenario;
use dss_core::state::{featurize_into, SchedState};
use dss_rl::Scalar;
use dss_rl::{
    ActScratch, DdpgAgent, DdpgConfig, Elem, QuantActScratch, ScalableMapper, Transition,
};

/// Per-scenario agreement bar (percent).
const AGREEMENT_BAR: usize = 99;

fn main() {
    let mut rounds = 200usize;
    let mut fleet_rounds = 100usize;
    let mut warmup = 64usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> usize {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
                .parse()
                .unwrap_or_else(|_| panic!("{what} needs a number"))
        };
        match arg.as_str() {
            "--rounds" => rounds = num("--rounds").max(1),
            "--fleet-rounds" => fleet_rounds = num("--fleet-rounds").max(1),
            "--warmup" => warmup = num("--warmup"),
            other => panic!("unknown flag `{other}`; expected --rounds/--fleet-rounds/--warmup"),
        }
    }

    let mut failed = false;
    for sc in Scenario::all() {
        let (n, m) = (sc.n_executors(), sc.n_machines());
        // Fleet-sized scenarios get the hierarchical mapper, like every
        // other fleet entry point; paper-scale stays flat (Algorithm 1).
        let cfg = if m >= 64 {
            ControlConfig::test().with_mapper_knobs(m / 8, 2)
        } else {
            ControlConfig::test()
        };
        let (r, w) = if m >= 64 {
            // Fleet shapes train ~200x slower per step; a handful of
            // steps already leaves the degenerate init.
            (fleet_rounds, warmup / 4)
        } else {
            (rounds, warmup)
        };
        let t = run_scenario(&sc, &cfg, r, w);
        let pct = 100.0 * t.agree as f64 / t.rounds as f64;
        let ok = t.agree * 100 >= t.rounds * AGREEMENT_BAR;
        println!(
            "{:<28} {:>4}x{:<3} agree {:>4}/{:<4} ({pct:6.2}%) frame {:>8}B vs {:>8}B  {}",
            sc.name,
            n,
            m,
            t.agree,
            t.rounds,
            t.quant_bytes,
            t.f32_bytes,
            if ok { "ok" } else { "FAIL" },
        );
        if !ok {
            eprintln!(
                "quant_smoke: FAIL: `{}` agreement {pct:.2}% is below the {AGREEMENT_BAR}% bar",
                sc.name
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "quant_smoke: every registry scenario holds the >= {AGREEMENT_BAR}% argmax-agreement bar"
    );
}

struct Tally {
    agree: usize,
    rounds: usize,
    quant_bytes: usize,
    f32_bytes: usize,
}

fn run_scenario(sc: &Scenario, cfg: &ControlConfig, rounds: usize, warmup: usize) -> Tally {
    let (n, m, srcs) = (sc.n_executors(), sc.n_machines(), sc.n_sources());
    let state_dim = SchedState::feature_dim(n, m, srcs);
    let mut agent: DdpgAgent = DdpgAgent::new(
        state_dim,
        n * m,
        DdpgConfig {
            k: cfg.k,
            seed: cfg.seed,
            gamma: cfg.gamma,
            replay_capacity: 64,
            ..DdpgConfig::default()
        },
    );

    let mut mapper_f = ScalableMapper::from_knobs(n, m, cfg.mapper_groups, cfg.mapper_prune);
    let mut mapper_q = ScalableMapper::from_knobs(n, m, cfg.mapper_groups, cfg.mapper_prune);
    let mut rng_f = StdRng::seed_from_u64(cfg.seed ^ 0x0A);
    let mut rng_q = StdRng::seed_from_u64(cfg.seed ^ 0x0A);
    // Training draws from its own stream so the twinned decision streams
    // stay in lockstep across the warm-up boundary.
    let mut rng_t = StdRng::seed_from_u64(cfg.seed ^ 0x7A1);
    let mut sf = ActScratch::default();
    let mut sq = QuantActScratch::default();
    let mut state = Vec::new();
    let mut next_state = Vec::new();

    // Walk a live assignment trajectory: each step acts on the state the
    // f32 agent's pick produced, so both paths see realistic, evolving
    // one-hot blocks — not one frozen state replayed `rounds` times.
    let mut assignment = sc.initial_assignment();
    let workload = sc.app.workload.clone();

    // Warm-up: train the agent toward balanced assignments so the
    // agreement phase below measures the frame workers actually pull — a
    // learner-published policy — instead of the degenerate all-ties init
    // (see the module docs). Each step still snapshots and twin-runs the
    // quant path so candidate-set bit-identity is asserted at *every*
    // training stage, not just the final one.
    for t in 0..warmup {
        featurize_into(&assignment, &workload, cfg.rate_scale, &mut state);
        let bf =
            agent.select_action_into(&state, &mut mapper_f, cfg.eps_start, &mut rng_f, &mut sf);
        let snap = agent.rollout_quant_policy();
        snap.select_action_into(&state, &mut mapper_q, cfg.eps_start, &mut rng_q, &mut sq);
        assert_candidate_identity(sc, t, &sf, &sq);
        let reward = balance_reward(&sf.cands[bf].choice, m);
        let next = choice_to_assignment(&sf.cands[bf].choice, m).expect("mapped assignment");
        featurize_into(&next, &workload, cfg.rate_scale, &mut next_state);
        agent.store(Transition::new(
            state.clone(),
            sf.cands[bf].onehot.clone(),
            reward,
            next_state.clone(),
        ));
        agent.train_step(&mut mapper_f, &mut rng_t);
        assignment = next;
    }

    let policy = agent.rollout_quant_policy();
    let f32_bytes = agent.save_policy().len();
    let quant_bytes = policy.encode().len();

    let mut agree = 0usize;
    for t in 0..rounds {
        // Decay exploration across the run so both noisy and near-greedy
        // decisions are covered (noise is drawn from the shared RNG
        // stream, so it perturbs both paths identically).
        let eps = cfg.eps_start + (cfg.eps_end - cfg.eps_start) * t as f64 / rounds.max(2) as f64;
        featurize_into(&assignment, &workload, cfg.rate_scale, &mut state);
        let bf = agent.select_action_into(&state, &mut mapper_f, eps, &mut rng_f, &mut sf);
        let bq = policy.select_action_into(&state, &mut mapper_q, eps, &mut rng_q, &mut sq);
        assert_candidate_identity(sc, warmup + t, &sf, &sq);
        if sf.cands[bf].choice == sq.cands[bq].choice {
            agree += 1;
        }
        assignment = choice_to_assignment(&sf.cands[bf].choice, m).expect("mapped assignment");
    }
    Tally {
        agree,
        rounds,
        quant_bytes,
        f32_bytes,
    }
}

/// The exact-f32 actor makes candidate sets bit-identical; any
/// divergence here is a codec or act-path bug, not quantization.
fn assert_candidate_identity(sc: &Scenario, t: usize, sf: &ActScratch, sq: &QuantActScratch) {
    assert_eq!(
        sf.cands.len(),
        sq.cands.len(),
        "{}: candidate count diverged at t={t}",
        sc.name
    );
    for (cf, cq) in sf.cands.iter().zip(&sq.cands) {
        assert_eq!(
            cf.choice, cq.choice,
            "{}: candidate set diverged at t={t}",
            sc.name
        );
    }
}

/// Warm-up reward: negative normalized variance of per-machine executor
/// counts. Any consistent signal works here — the point is a Q surface
/// with real separations, not a good placement policy.
fn balance_reward(choice: &[usize], m: usize) -> Elem {
    let mut counts = vec![0.0f64; m];
    for &machine in choice {
        counts[machine] += 1.0;
    }
    let mean = choice.len() as f64 / m as f64;
    let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / m as f64;
    <Elem as Scalar>::from_f64(-var / (mean * mean))
}
