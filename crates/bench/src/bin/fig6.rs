//! Figure 6: average tuple processing time over the continuous queries
//! topology — (a) small, (b) medium, (c) large — for all four methods over
//! 20 minutes after deployment.

use dss_apps::{continuous_queries, CqScale};
use dss_bench::{emit_records, emit_series, RunOptions};
use dss_core::experiment::{figure_deployment, stable_ms, Method};
use dss_metrics::{ExperimentRecord, ShapeCheck};

/// Stable values the paper reports per scale (default, model-based, DQN,
/// actor-critic), in ms.
const PAPER_STABLE: [(CqScale, [f64; 4]); 3] = [
    (CqScale::Small, [1.96, 1.46, 1.54, 1.33]),
    (CqScale::Medium, [2.08, 1.61, 1.59, 1.43]),
    (CqScale::Large, [2.64, 2.12, 2.45, 1.72]),
];

fn main() {
    let opts = RunOptions::from_env();
    let minutes = opts.minutes_or(20.0);
    let mut records = Vec::new();
    let mut checks = Vec::new();

    for (scale, paper) in PAPER_STABLE {
        let sub = match scale {
            CqScale::Small => "fig6a",
            CqScale::Medium => "fig6b",
            CqScale::Large => "fig6c",
            // PAPER_STABLE only lists the three paper scales.
            CqScale::Fleet => unreachable!("fleet scale is not a Figure 6 subplot"),
        };
        eprintln!(
            "[{sub}] training 4 methods on continuous queries ({})",
            scale.label()
        );
        let app = continuous_queries(scale);
        let results = figure_deployment(&app, &opts.cluster(), &opts.config, minutes, 30.0);
        let labelled: Vec<(&str, &dss_metrics::TimeSeries)> =
            results.iter().map(|(m, s, _)| (m.label(), s)).collect();
        emit_series(&opts, sub, &labelled);

        let mut stable = std::collections::HashMap::new();
        for ((method, series, _), paper_ms) in results.iter().zip(paper) {
            let ms = stable_ms(series);
            stable.insert(*method, ms);
            records.push(ExperimentRecord::new(
                sub,
                format!("stable avg tuple time, {} (ms)", method.label()),
                Some(paper_ms),
                ms,
            ));
        }
        let ac = stable[&Method::ActorCritic];
        let mb = stable[&Method::ModelBased];
        let df = stable[&Method::Default];
        // The simulated cluster's assignment-quality spread narrows at
        // large scale (see EXPERIMENTS.md), so the margin thresholds do
        // too; orderings are asserted at every scale.
        let margin = if sub == "fig6c" { 0.98 } else { 0.85 };
        checks.push(ShapeCheck::new(
            sub,
            "actor-critic <= model-based",
            ac <= mb * 1.02,
        ));
        checks.push(ShapeCheck::new(sub, "model-based < default", mb < df));
        checks.push(ShapeCheck::new(
            sub,
            format!(
                "actor-critic beats default by >= {:.0}%",
                (1.0 - margin) * 100.0
            ),
            ac < margin * df,
        ));
    }
    emit_records(&opts, "fig6", &records, &checks);
}
