//! Extension experiment: failure detection and repair (paper §2.1).
//!
//! The paper's evaluation never kills a machine, but its system model
//! specifies what must happen when one dies: *"The master monitors
//! heartbeat signals from all worker processes periodically. It
//! re-schedules them when it discovers a failure."* This experiment
//! quantifies that path through the full control-plane backend
//! (`dss-core::env::ClusterEnv`): the machine crash is a scheduled
//! [`FaultPlan`] event replayed by the master, every sample is a protocol
//! epoch over the framed codec, and repair is the master's ordinary
//! auto-repair — no hand-rolled nimbus driving loop.
//!
//! * a machine crashes at t = 120 s while the word-count topology runs;
//! * **with repair**: Nimbus notices after the session timeout and moves
//!   the stranded executors to live machines (the agent holds the
//!   reported assignment, cooperating with the repair);
//! * **without repair** (control): auto-repair is disabled, the executors
//!   stay assigned to the dead machine and its share of tuples keeps
//!   failing.
//!
//! Reported: completed-tuple throughput and cumulative failed trees over
//! time for both runs, plus the detection latency (crash -> repair).

use dss_apps::word_count;
use dss_bench::{emit_records, emit_series, RunOptions};
use dss_core::env::{ClusterEnv, ClusterTransport, Environment};
use dss_metrics::{ExperimentRecord, ShapeCheck, TimeSeries};
use dss_nimbus::FaultPlan;
use dss_sim::{Assignment, ClusterSpec, SimConfig, SimEngine};

const CRASH_AT_S: f64 = 120.0;
const END_S: f64 = 480.0;
const SAMPLE_S: f64 = 10.0;
const SESSION_TIMEOUT_MS: u64 = 30_000;
const CRASH_MACHINE: usize = 3;

struct RunResult {
    throughput: TimeSeries,
    cum_failed: TimeSeries,
    detection_s: Option<f64>,
}

fn run(repair: bool) -> RunResult {
    let app = word_count();
    let cluster = ClusterSpec::homogeneous(10);
    let initial = Assignment::round_robin(&app.topology, &cluster);
    let engine = SimEngine::new(
        app.topology.clone(),
        cluster,
        app.workload.clone(),
        SimConfig::steady_state(17),
    )
    .expect("engine");
    // One decision epoch per sample: the control plane advances the
    // cluster SAMPLE_S seconds per round trip, heartbeating supervisors
    // and firing the scheduled crash on the way.
    let mut env = ClusterEnv::new(engine, SAMPLE_S)
        .with_transport(ClusterTransport::Channel)
        .with_fault_plan(FaultPlan::crash_at(CRASH_MACHINE, CRASH_AT_S))
        .with_session_timeout_ms(SESSION_TIMEOUT_MS)
        .with_heartbeat_interval_s(5.0)
        .with_auto_repair(repair)
        .with_catchup_epochs(0);

    let mut throughput = TimeSeries::new();
    let mut cum_failed = TimeSeries::new();
    let mut last_completed = 0u64;

    let mut t = 0.0;
    while t < END_S {
        t += SAMPLE_S;
        // Hold policy: echo the master's reported assignment, so a repair
        // sticks instead of being undone by the next solution.
        let current = env
            .reported_assignment()
            .map(|m| Assignment::new(m.to_vec(), 10).expect("reported assignment valid"))
            .unwrap_or_else(|| initial.clone());
        env.deploy_and_measure(&current, &app.workload);
        let nimbus = env.nimbus().expect("channel-mode master");
        let (_, completed, failed, _) = nimbus.engine().tuple_counts();
        throughput.push(t, (completed - last_completed) as f64 / SAMPLE_S);
        last_completed = completed;
        cum_failed.push(t, failed as f64);
    }
    let detection_s = env
        .nimbus()
        .expect("channel-mode master")
        .last_repair()
        .map(|(at, _)| at - CRASH_AT_S);
    RunResult {
        throughput,
        cum_failed,
        detection_s,
    }
}

fn main() {
    let opts = RunOptions::from_env();
    eprintln!("[fault_recovery] running with repair...");
    let with = run(true);
    eprintln!("[fault_recovery] running without repair (control)...");
    let without = run(false);

    emit_series(
        &opts,
        "fault_recovery_throughput",
        &[
            ("with_repair_tps", &with.throughput),
            ("without_repair_tps", &without.throughput),
        ],
    );
    emit_series(
        &opts,
        "fault_recovery_failures",
        &[
            ("with_repair_failed", &with.cum_failed),
            ("without_repair_failed", &without.cum_failed),
        ],
    );

    let detection = with.detection_s.unwrap_or(f64::NAN);
    let final_failed_with = with.cum_failed.values().last().copied().unwrap_or(0.0);
    let final_failed_without = without.cum_failed.values().last().copied().unwrap_or(0.0);
    let late_tps_with = mean_tail(&with.throughput, 6);
    let late_tps_without = mean_tail(&without.throughput, 6);

    let records = vec![
        ExperimentRecord::new(
            "fault_recovery",
            "failure detection latency (s; bounded by the 30 s session timeout + beat period)",
            None,
            detection,
        ),
        ExperimentRecord::new(
            "fault_recovery",
            "cumulative failed trees, with repair",
            None,
            final_failed_with,
        ),
        ExperimentRecord::new(
            "fault_recovery",
            "cumulative failed trees, without repair",
            None,
            final_failed_without,
        ),
        ExperimentRecord::new(
            "fault_recovery",
            "steady throughput after crash, with repair (tuples/s)",
            None,
            late_tps_with,
        ),
        ExperimentRecord::new(
            "fault_recovery",
            "steady throughput after crash, without repair (tuples/s)",
            None,
            late_tps_without,
        ),
    ];
    let checks = vec![
        ShapeCheck::new(
            "fault_recovery",
            "detection happens within session timeout + 2 heartbeat periods",
            with.detection_s.is_some_and(|d| d <= 45.0),
        ),
        ShapeCheck::new(
            "fault_recovery",
            "repair restores at least 95% of pre-crash throughput",
            late_tps_with >= 0.95 * mean_head(&with.throughput, 6),
        ),
        ShapeCheck::new(
            "fault_recovery",
            "repair strictly reduces cumulative failures",
            final_failed_with < final_failed_without,
        ),
        ShapeCheck::new(
            "fault_recovery",
            "control arm performed no repair",
            without.detection_s.is_none(),
        ),
    ];
    emit_records(&opts, "fault_recovery", &records, &checks);
    // CI runs this bin as the fault-recovery smoke: a failed shape check
    // must fail the job, not just print FAIL.
    if checks.iter().any(|c| !c.passed) {
        eprintln!("[fault_recovery] shape checks failed");
        std::process::exit(1);
    }
}

fn mean_tail(s: &TimeSeries, n: usize) -> f64 {
    let v = s.values();
    let k = v.len().saturating_sub(n);
    let tail = &v[k..];
    tail.iter().sum::<f64>() / tail.len().max(1) as f64
}

fn mean_head(s: &TimeSeries, n: usize) -> f64 {
    let v = s.values();
    let head = &v[..n.min(v.len())];
    head.iter().sum::<f64>() / head.len().max(1) as f64
}
