//! Ablation: the workload `w` in the state.
//!
//! The paper: "Workload is included in the state to achieve better
//! adaptivity and sensitivity to the incoming workload, which has been
//! validated by our experimental results." This ablation re-runs the
//! Figure 12 adaptation with a state-blinded agent: the workload feature
//! is pinned to the nominal rate during decisions, so the agent cannot
//! react to the +50% step.

use dss_apps::{continuous_queries, CqScale};
use dss_bench::{emit_records, emit_series, RunOptions};
use dss_core::experiment::{train_method, workload_shift_curve, Method};
use dss_core::Scheduler;
use dss_metrics::{ExperimentRecord, ShapeCheck, TimeSeries};
use dss_sim::Assignment;

/// Wraps a trained scheduler but pins the workload its state reports.
struct WorkloadBlind {
    inner: Box<dyn Scheduler>,
    nominal: dss_sim::Workload,
}

impl Scheduler for WorkloadBlind {
    fn name(&self) -> &'static str {
        "workload-blind"
    }
    fn schedule(&mut self, state: &dss_core::SchedState) -> Assignment {
        let blinded = dss_core::SchedState::new(state.assignment.clone(), self.nominal.clone());
        self.inner.schedule(&blinded)
    }
}

fn main() {
    let opts = RunOptions::from_env();
    let app = continuous_queries(CqScale::Large);
    let cluster = opts.cluster();
    let total_min = opts.minutes_or(40.0);
    let shift_min = total_min * 0.4;

    eprintln!("[ablation_state] training actor-critic twice (aware / blind)");
    let mut aware = train_method(Method::ActorCritic, &app, &cluster, &opts.config);
    let aware_curve = workload_shift_curve(
        &app,
        &cluster,
        &opts.config,
        &mut aware,
        shift_min,
        total_min,
        30.0,
    );

    let mut blind_outcome = train_method(Method::ActorCritic, &app, &cluster, &opts.config);
    blind_outcome.scheduler = Box::new(WorkloadBlind {
        inner: blind_outcome.scheduler,
        nominal: app.workload.clone(),
    });
    let blind_curve = workload_shift_curve(
        &app,
        &cluster,
        &opts.config,
        &mut blind_outcome,
        shift_min,
        total_min,
        30.0,
    );

    let labelled: Vec<(&str, &TimeSeries)> = vec![
        ("workload-aware", &aware_curve),
        ("workload-blind", &blind_curve),
    ];
    emit_series(&opts, "ablation_state", &labelled);

    let tail = |s: &TimeSeries| {
        s.window_mean(total_min * 60.0 * 0.85, total_min * 60.0 + 1.0)
            .unwrap_or(f64::NAN)
    };
    let records = vec![
        ExperimentRecord::new(
            "ablation_state",
            "restabilized ms, workload-aware",
            None,
            tail(&aware_curve),
        ),
        ExperimentRecord::new(
            "ablation_state",
            "restabilized ms, workload-blind",
            None,
            tail(&blind_curve),
        ),
    ];
    let checks = vec![ShapeCheck::new(
        "ablation_state",
        "workload-aware restabilizes at or below workload-blind",
        tail(&aware_curve) <= tail(&blind_curve) * 1.02,
    )];
    emit_records(&opts, "ablation_state", &records, &checks);
}
