//! Machine-readable NN/RL hot-path benchmarks → `BENCH_nn.json`.
//!
//! Times the training hot path at the paper's sizes (replay |B| = 1000,
//! mini-batch H = 32, hidden 64/32) and writes ns/iter for every probe to
//! a JSON artifact, so each PR records a point of the performance
//! trajectory and later PRs can regress against it.
//!
//! Every "after" probe is paired with a faithfully reconstructed "before"
//! implementation — the seed's naive triple-loop matmul, clone-caching
//! layers, and per-sample target evaluation — compiled *in this binary*
//! (the production crates keep the naive kernels only as a test oracle).
//! The headline `speedups` section is computed from those pairs.
//!
//! Parallel probes (`*_par`, `rollout_*`) run the same code under a
//! multi-thread `workpool` pool and pair against the serial-pool run of
//! the *same* kernel; their speedup keys carry a `par_` prefix, flagging
//! them as machine-parallelism-dependent — `bench_gate` exempts them from
//! the regression gate, since a 1-core CI runner cannot show multi-core
//! wins. Serial probes are pinned to a 1-thread pool so their numbers
//! stay comparable with earlier committed artifacts regardless of
//! machine size.
//!
//! Precision pairs: the production stack trains in `Elem` (f32) since the
//! generic-scalar refactor; every core probe also runs an explicit `f64`
//! instantiation of the *same* code (`*_f64*` probes), and the
//! `f32_over_f64_*` speedup keys record the single-precision win on the
//! serial-pinned pairs. These are serial-gated by `bench_gate` (≥ 1.0×,
//! except the sparsity-bound act pair, which gates at 0.8 — see the
//! `bench_gate` threshold table), so the f32 default can never silently
//! regress below double precision.
//! The dispatched GEMM microkernel (`avx2_fma` / `scalar` — see
//! `DSS_NO_SIMD`) is recorded in `config.microkernel`, and the measuring
//! host's physical parallelism in `config.host_cores` (so a `par_* ≈ 1.0`
//! ratio from a 1-core container is self-describing). The ungated
//! `sim_env_step_cq_small` probe records the cost of one decision epoch
//! against the tuple-level training backend (`SimEnv`).
//!
//! ```text
//! bench_json [--quick] [--out PATH]
//!
//! --quick    tiny measurement budget (CI smoke; numbers still emitted)
//! --out      output path (default: BENCH_nn.json)
//!
//! DSS_THREADS   parallelism for the parallel probes (also the knob the
//!               production pool honors); defaults to the machine's
//!               available parallelism, floored at 2 here so the sharded
//!               code path is exercised even on 1-core runners
//! ```

use std::sync::Arc;
use std::time::Instant;

use dss_core::{ControlConfig, Environment, ParallelCollector, Scenario, SchedState};
use dss_nn::{
    microkernel_name, mse_loss_grad, with_band_pinning, Activation, Adam, Elem, Matrix, Mlp,
    Optimizer, Scalar,
};
use dss_rl::{
    ActScratch, ActionMapper, DdpgAgent, DdpgConfig, DqnAgent, DqnConfig, HierarchicalMapper,
    KBestMapper, QuantActScratch, ReplayBuffer, ShardedReplayBuffer, Transition,
};
use dss_sim::{ClusterSpec, Grouping, SimConfig, TopologyBuilder, Workload};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use workpool::{with_pool, Pool};

/// Paper sizes: |B| = 1000 replay, H = 32 minibatch, 64/32 hidden units.
const REPLAY_B: usize = 1000;
const BATCH_H: usize = 32;
/// A 10-thread × 10-machine assignment problem: N·M = 100 actions, and a
/// state of the one-hot assignment plus load features.
const STATE_DIM: usize = 128;
const N_ACTIONS: usize = 100;

const USAGE: &str = "\
bench_json [--quick] [--out PATH]

  --quick    tiny measurement budget (CI smoke; numbers still emitted)
  --out      output path (default: BENCH_nn.json)

Environment:
  DSS_THREADS   pool size for the parallel probes (and for the production
                workpool everywhere else); defaults to the machine's
                available parallelism, floored at 2 here so the sharded
                code path is always exercised. Serial probes are pinned
                to a 1-thread pool regardless.";

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_nn.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => panic!("unknown flag `{other}`; expected --quick/--out/--help"),
        }
    }
    let budget_ms = if quick { 3 } else { 60 };

    // Serial probes are pinned to a 1-thread pool (numbers comparable with
    // PR 1's artifact on any machine); parallel probes run under this one.
    let serial = Arc::new(Pool::new(1));
    // Same DSS_THREADS semantics as the production pool, floored at 2 so
    // the sharded code path is exercised even on 1-core runners.
    let par_threads = workpool::default_threads().max(2);
    let par = Arc::new(Pool::new(par_threads));

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<44} {ns:>14.1} ns/iter");
        results.push((name.to_string(), ns));
    };

    // ---- matmul kernels: blocked (Elem = f32) vs the seed's naive
    // loops, the row-sharded parallel path vs the serial blocked kernel,
    // and the f64 instantiation of the same blocked kernel -------------
    // (m, k, n) shapes from the training path: hidden layers at H=32, the
    // CQ-large critic input layer, and a square stress shape.
    for &(m, k, n) in &[(32usize, 64usize, 32usize), (32, 2001, 64), (128, 128, 128)] {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Matrix = Matrix::from_fn(m, k, |_, _| rng.random_range(-1.0..1.0));
        let b: Matrix = Matrix::from_fn(k, n, |_, _| rng.random_range(-1.0..1.0));
        let mut out = Matrix::default();
        record(
            &format!("matmul_{m}x{k}x{n}_blocked"),
            with_pool(serial.clone(), || {
                bench_ns(budget_ms, || a.matmul_into(&b, &mut out))
            }),
        );
        record(
            &format!("matmul_{m}x{k}x{n}_par"),
            with_pool(par.clone(), || {
                bench_ns(budget_ms, || a.matmul_into(&b, &mut out))
            }),
        );
        // Same parallel run with the stable band→worker pinning hint off:
        // every band goes to whichever worker grabs it first, so a
        // repeated same-shape product keeps migrating output rows across
        // worker caches. The `band_pinned_over_unpinned` pair (128³ shape)
        // gates the hint at ≥ 1.0× on multi-core hosts.
        record(
            &format!("matmul_{m}x{k}x{n}_par_unpinned"),
            with_pool(par.clone(), || {
                with_band_pinning(false, || {
                    bench_ns(budget_ms, || a.matmul_into(&b, &mut out))
                })
            }),
        );
        record(
            &format!("matmul_{m}x{k}x{n}_naive"),
            bench_ns(budget_ms, || {
                std::hint::black_box(reference::matmul(&a, &b));
            }),
        );
        let bt: Matrix = Matrix::from_fn(n, k, |r, c| b[(c, r)]);
        record(
            &format!("matmul_t_b_{m}x{k}x{n}_blocked"),
            with_pool(serial.clone(), || {
                bench_ns(budget_ms, || a.matmul_transpose_b_into(&bt, &mut out))
            }),
        );
        record(
            &format!("matmul_t_b_{m}x{k}x{n}_par"),
            with_pool(par.clone(), || {
                bench_ns(budget_ms, || a.matmul_transpose_b_into(&bt, &mut out))
            }),
        );
        record(
            &format!("matmul_t_b_{m}x{k}x{n}_naive"),
            bench_ns(budget_ms, || {
                std::hint::black_box(reference::matmul_transpose_b(&a, &bt));
            }),
        );
        // Same blocked kernel, f64 elements — the denominator of the
        // `f32_over_f64_matmul_*` precision pairs (serial-pinned).
        let a64: Matrix<f64> = Matrix::from_fn(m, k, |r, c| a[(r, c)] as f64);
        let b64: Matrix<f64> = Matrix::from_fn(k, n, |r, c| b[(r, c)] as f64);
        let mut out64 = Matrix::default();
        record(
            &format!("matmul_{m}x{k}x{n}_f64_blocked"),
            with_pool(serial.clone(), || {
                bench_ns(budget_ms, || a64.matmul_into(&b64, &mut out64))
            }),
        );
        let bt64: Matrix<f64> = Matrix::from_fn(n, k, |r, c| bt[(r, c)] as f64);
        record(
            &format!("matmul_t_b_{m}x{k}x{n}_f64_blocked"),
            with_pool(serial.clone(), || {
                bench_ns(budget_ms, || a64.matmul_transpose_b_into(&bt64, &mut out64))
            }),
        );
    }

    // ---- MLP forward+backward at the paper's critic shape -------------
    // state ‖ action input → 64/32 tanh → scalar Q, batch H = 32, run for
    // both scalar instantiations of the same training step.
    record(
        "mlp_fwd_bwd_h32_scratch",
        with_pool(serial.clone(), || mlp_step_probe::<Elem>(budget_ms)),
    );
    record(
        "mlp_fwd_bwd_h32_par",
        with_pool(par.clone(), || mlp_step_probe::<Elem>(budget_ms)),
    );
    record(
        "mlp_fwd_bwd_h32_f64",
        with_pool(serial.clone(), || mlp_step_probe::<f64>(budget_ms)),
    );
    {
        let sizes = [STATE_DIM + N_ACTIONS, 64, 32, 1];
        let acts = [Activation::Tanh, Activation::Tanh, Activation::Identity];
        let mut rng = StdRng::seed_from_u64(2);
        let x: Matrix = Matrix::from_fn(BATCH_H, sizes[0], |_, _| rng.random_range(-1.0..1.0));
        let y: Matrix = Matrix::from_fn(BATCH_H, 1, |_, _| rng.random_range(-1.0..0.0));
        let donor = Mlp::new(&sizes, &acts, 7);
        let mut net = reference::RefMlp::from_mlp(&donor);
        let mut opt = Adam::new(1e-3);
        record(
            "mlp_fwd_bwd_h32_clone_naive",
            bench_ns(budget_ms, || {
                let pred = net.forward(&x);
                let (_, grad) = mse_loss_grad(&pred, &y);
                net.zero_grad();
                net.backward(&grad);
                net.apply_gradients(&mut opt);
            }),
        );
    }

    // ---- DQN train step at paper sizes, both scalar instantiations ----
    record(
        "dqn_train_step_batched",
        with_pool(serial.clone(), || dqn_step_probe::<Elem>(budget_ms)),
    );
    record(
        "dqn_train_step_par",
        with_pool(par.clone(), || dqn_step_probe::<Elem>(budget_ms)),
    );
    record(
        "dqn_train_step_f64",
        with_pool(serial.clone(), || dqn_step_probe::<f64>(budget_ms)),
    );
    {
        let mut agent = reference::OldDqn::new(STATE_DIM, N_ACTIONS, REPLAY_B, BATCH_H);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..REPLAY_B {
            agent.replay.push(random_transition(&mut rng));
        }
        record(
            "dqn_train_step_per_sample",
            bench_ns(budget_ms, || {
                agent.train_step(&mut rng);
            }),
        );
    }

    // ---- rollout act path (select_action_into), both scalars ----------
    // The per-decision kernel every collector actor runs: actor infer →
    // ε-noise → K-NN mapping → batched critic argmax, all through reused
    // scratch. Serial-pinned so the f32/f64 pair is machine-independent.
    record(
        "rollout_act_f32",
        with_pool(serial.clone(), || act_path_probe::<Elem>(budget_ms)),
    );
    record(
        "rollout_act_f64",
        with_pool(serial.clone(), || act_path_probe::<f64>(budget_ms)),
    );

    // ---- quantized rollout act path + policy frame bytes ----------------
    // The same decision as `rollout_act_f32`, run through the rollout
    // quantization profile (`DdpgAgent::rollout_quant_policy`): exact-f32
    // actor, i8 critic bulk, bf16 critic action block and tail. Gated
    // (`quant_rollout_act_over_f32` >= 1.2x): the i8 kernels must keep
    // beating the f32 act path. The two `policy_frame_bytes_*` records
    // hold **bytes** (not ns) — their ratio is the wire-size win a
    // `rollout_quant` worker pull sees, gated at f32/quant >= 2.857x
    // (quant frame <= 0.35x of the full-precision image).
    {
        let (n, m) = (10usize, 10usize);
        let agent: DdpgAgent = DdpgAgent::new(
            STATE_DIM,
            n * m,
            DdpgConfig {
                replay_capacity: 64,
                batch: BATCH_H,
                ..DdpgConfig::default()
            },
        );
        let policy = agent.rollout_quant_policy();
        let mut mapper: KBestMapper = KBestMapper::new(n, m);
        let mut scratch: QuantActScratch<Elem> = QuantActScratch::default();
        let mut rng = StdRng::seed_from_u64(9);
        let state: Vec<Elem> = (0..STATE_DIM)
            .map(|_| <Elem as Scalar>::from_f64(rng.random_range(0.0..1.0)))
            .collect();
        record(
            "quant_rollout_act",
            with_pool(serial.clone(), || {
                bench_ns(budget_ms, || {
                    std::hint::black_box(policy.select_action_into(
                        &state,
                        &mut mapper,
                        0.3,
                        &mut rng,
                        &mut scratch,
                    ));
                })
            }),
        );
        record("policy_frame_bytes_f32", agent.save_policy().len() as f64);
        record("policy_frame_bytes_quant", policy.encode().len() as f64);
    }

    // ---- DDPG train step (batched candidate scoring) -------------------
    {
        let (n, m) = (10, 10);
        let mut agent = DdpgAgent::new(
            STATE_DIM,
            n * m,
            DdpgConfig {
                replay_capacity: REPLAY_B,
                batch: BATCH_H,
                ..DdpgConfig::default()
            },
        );
        let mut mapper = KBestMapper::new(n, m);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..REPLAY_B {
            let t = random_transition::<Elem>(&mut rng);
            let mut onehot = vec![0.0 as Elem; n * m];
            for i in 0..n {
                onehot[i * m + rng.random_range(0..m)] = 1.0;
            }
            agent.store(Transition::new(t.state, onehot, t.reward, t.next_state));
        }
        record(
            "ddpg_train_step_batched",
            with_pool(serial.clone(), || {
                bench_ns(budget_ms, || {
                    agent.train_step(&mut mapper, &mut rng);
                })
            }),
        );
    }

    // ---- replay sampling: clone-free indices vs reference Vec ----------
    {
        let mut buf: ReplayBuffer<usize, Elem> = ReplayBuffer::new(REPLAY_B);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..REPLAY_B {
            let t = random_transition(&mut rng);
            buf.push(t);
        }
        let mut idx = Vec::new();
        record(
            "replay_sample_indices_h32",
            bench_ns(budget_ms, || {
                buf.sample_indices_into(BATCH_H, &mut rng, &mut idx);
                std::hint::black_box(&idx);
            }),
        );
        record(
            "replay_sample_clone_h32",
            bench_ns(budget_ms, || {
                let batch: Vec<Transition<usize, Elem>> =
                    buf.sample(BATCH_H, &mut rng).into_iter().cloned().collect();
                std::hint::black_box(&batch);
            }),
        );
    }

    // ---- sharded replay under writer contention -------------------------
    // One probe iteration = WRITERS × PUSHES transitions. The serial
    // baseline pushes the same total into a single AoS ring on one thread
    // (per-transition row Vecs and all); the sharded probe copies rows
    // into the structure-of-arrays slabs, fanned out over the pool
    // (actor i → shard i) — the parallel collector's write pattern.
    {
        const WRITERS: usize = 4;
        const PUSHES: usize = 250;
        let total = (WRITERS * PUSHES) as f64;
        let mut rng = StdRng::seed_from_u64(6);
        let mut single: ReplayBuffer<usize, Elem> = ReplayBuffer::new(REPLAY_B);
        let mut seq = 0usize;
        record(
            "replay_push_serial_1k",
            bench_ns(budget_ms, || {
                for _ in 0..WRITERS * PUSHES {
                    seq = seq.wrapping_add(1);
                    single.push(Transition::new(vec![seq as Elem], 0, 0.0, vec![0.0]));
                }
            }) / total,
        );
        let sharded: ShardedReplayBuffer<Elem> =
            ShardedReplayBuffer::new(WRITERS, REPLAY_B / 4, 1, 1);
        record(
            "replay_push_sharded_4w_1k",
            bench_ns(budget_ms, || {
                // One chunk per writer, self-scheduled over the pool;
                // chunk index = shard, matching the collector's pattern.
                par.for_each_chunk(WRITERS * PUSHES, PUSHES, |range| {
                    let shard = range.start / PUSHES;
                    for i in range {
                        sharded.push_rows(shard, &[i as Elem], &[0.0], 0.0, &[0.0]);
                    }
                });
            }) / total,
        );
        let mut idx = Vec::new();
        record(
            "replay_sample_sharded_h32",
            bench_ns(budget_ms, || {
                sharded.sample_indices_into(BATCH_H, &mut rng, &mut idx);
                std::hint::black_box(&idx);
            }),
        );
    }

    // ---- tuple-level training backend: SimEnv step throughput -----------
    // ns per deploy-and-measure decision epoch against the live engine on
    // the small continuous-queries scenario (1 s epochs). Ungated: the
    // cost scales with simulated tuple traffic, not with code quality
    // alone — this records the price of high-fidelity training.
    {
        let scenario = Scenario::by_name("cq-small-steady").expect("registry scenario");
        let cfg = ControlConfig {
            sim_epoch_s: 1.0,
            ..ControlConfig::test()
        };
        let mut env = scenario.sim_env(&cfg, 7);
        let workload = scenario.app.workload.clone();
        let solution = scenario.initial_assignment();
        // Warm the engine past the empty-window cold start.
        env.deploy_and_measure(&solution, &workload);
        record(
            "sim_env_step_cq_small",
            bench_ns(budget_ms, || {
                std::hint::black_box(env.deploy_and_measure(&solution, &workload));
            }),
        );
    }

    // ---- control-plane training backend: ClusterEnv step throughput -----
    // The same decision epoch as `sim_env_step_cq_small`, but every step
    // is a full Figure-1 round trip (framed codec, coord CAS, supervisor
    // heartbeats). Ungated; the pair quantifies the control plane's
    // per-epoch overhead on top of the bare engine.
    {
        let scenario = Scenario::by_name("cq-small-steady").expect("registry scenario");
        let cfg = ControlConfig {
            sim_epoch_s: 1.0,
            ..ControlConfig::test()
        };
        let mut env = scenario.cluster_env(&cfg, 7);
        let workload = scenario.app.workload.clone();
        let solution = scenario.initial_assignment();
        env.deploy_and_measure(&solution, &workload);
        record(
            "cluster_env_step_cq_small",
            bench_ns(budget_ms, || {
                std::hint::black_box(env.deploy_and_measure(&solution, &workload));
            }),
        );
    }

    // ---- control-plane backend under chaos: reliable-protocol step ------
    // The same decision epoch as `cluster_env_step_cq_small`, but over the
    // registry's lossy link (15% drop + duplicates + delays + corruption
    // each way): every step pays the sequence-numbered envelopes, the
    // retransmits the chaos forces, and the master-side duplicate
    // suppression. Since the failover PR it also pays *durability*: a
    // chaos plan routes serving through the master pool, which commits an
    // fsynced recovery image (WAL append + coord CAS) after every
    // state-changing reliable request — the clean probe's plain transport
    // bypasses persistence entirely, so the ~3-4x gap to it is almost all
    // commit cost, not retry cost (see the bench README's drift note).
    // Ungated; the gap to the clean cluster probe is the price of riding
    // an unreliable network with a crash-safe master.
    {
        let scenario = Scenario::by_name("cq-small-lossy").expect("registry scenario");
        let cfg = ControlConfig {
            sim_epoch_s: 1.0,
            ..ControlConfig::test()
        };
        let mut env = scenario.cluster_env(&cfg, 7);
        let workload = scenario.app.workload.clone();
        let solution = scenario.initial_assignment();
        env.deploy_and_measure(&solution, &workload);
        record(
            "cluster_env_step_cq_small_lossy",
            bench_ns(budget_ms, || {
                std::hint::black_box(env.deploy_and_measure(&solution, &workload));
            }),
        );
    }

    // ---- crash-safe training: durable checkpoint write ------------------
    // ns per `TrainCheckpoint::save` of a paper-sized training image (a
    // DDPG agent with its full 1000-transition replay ring) through the
    // store crate's atomic blob swap — tmp write, fsync, rename, CRC.
    // Ungated: the cost is dominated by payload size and fsync latency,
    // not code quality; the artifact records what a checkpoint boundary
    // costs so the `every` cadence can be chosen against real numbers.
    // Probe note: the probe now encodes through `save_with` with a reused
    // scratch, matching the durable loop — the 16.7ms → 20.4ms creep was
    // part grow-from-empty realloc of the multi-MB image per save (fixed
    // by scratch reuse) and part fsync jitter on the runner, which still
    // moves the number between artifacts and is why this stays ungated.
    {
        use dss_core::experiment::Method;
        use dss_core::TrainCheckpoint;
        let mut agent: DdpgAgent = DdpgAgent::new(
            STATE_DIM,
            N_ACTIONS,
            DdpgConfig {
                replay_capacity: REPLAY_B,
                batch: BATCH_H,
                ..DdpgConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..REPLAY_B {
            let t = random_transition::<Elem>(&mut rng);
            let mut onehot = vec![0.0 as Elem; N_ACTIONS];
            onehot[rng.random_range(0..N_ACTIONS)] = 1.0;
            agent.store(Transition::new(t.state, onehot, t.reward, t.next_state));
        }
        let ckpt = TrainCheckpoint {
            method: Method::ActorCritic,
            seed: 7,
            completed: 0,
            rewards: dss_metrics::TimeSeries::new(),
            actions: Vec::new(),
            env_image: None,
            scheduler_state: agent.save_state(),
        };
        let dir = std::env::temp_dir().join(format!("dss-bench-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("checkpoint bench dir");
        let path = dir.join("bench.ckpt");
        let mut scratch = Vec::new();
        record(
            "checkpoint_write",
            bench_ns(budget_ms, || {
                ckpt.save_with(&path, &mut scratch)
                    .expect("checkpoint write");
            }),
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    // ---- master failover: recovery-image load + rebuild -----------------
    // ns per standby promotion's recovery half: load the newest committed
    // RecoveryImage (coordination znode / WAL), rebuild the engine from
    // its snapshot, and take over the assignment znode — the work between
    // "election won" and "serving again" on the cq-small cluster, warmed
    // 120 simulated seconds so the image carries real queues. Ungated,
    // recorded so PRs can watch recovery time against session timeouts.
    {
        use dss_coord::{CoordConfig, CoordService};
        use dss_nimbus::{Nimbus, NimbusConfig, RecoveryImage, RecoveryStore};
        let scenario = Scenario::by_name("cq-small-steady").expect("registry scenario");
        let coord = CoordService::new(CoordConfig {
            session_timeout_ms: 30_000,
        });
        let engine = scenario.sim_engine(7);
        let topology = engine.topology().clone();
        let cluster = engine.cluster().clone();
        let sim_config = *engine.config();
        let mut nimbus = Nimbus::launch(
            engine,
            scenario.app.workload.clone(),
            scenario.initial_assignment(),
            &coord,
            NimbusConfig::default(),
        )
        .expect("nimbus launch");
        nimbus.advance(120.0);
        let image = RecoveryImage::capture(&nimbus, 0);
        let dir = std::env::temp_dir().join(format!("dss-bench-wal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut store = RecoveryStore::open(&dir).expect("wal dir");
        let session = coord.connect();
        store.commit(&session, &image).expect("image commit");
        record(
            "master_recover",
            bench_ns(budget_ms, || {
                let img = store
                    .load(&session, topology.name())
                    .expect("image load")
                    .expect("image present");
                std::hint::black_box(
                    img.rebuild(
                        topology.clone(),
                        cluster.clone(),
                        sim_config,
                        &coord,
                        NimbusConfig::default(),
                    )
                    .expect("master rebuild"),
                );
            }),
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    // ---- fleet-scale engine step: event calendar vs dense oracle --------
    // One 0.25 s decision epoch of the cq-fleet scenario (1152 executors,
    // 128 machines, 7 of 8 ingest lanes silent). The dense oracle scans
    // every pending event per pop and keeps idle spouts polling; the
    // event-driven engine pops from a binary heap and parks silent spouts,
    // so its cost follows the ~100 busy executors, not the cluster.
    // Gated (`fleet_engine_step` >= 5x): sublinearity in idle capacity
    // must not regress.
    {
        let scenario = Scenario::by_name("cq-fleet").expect("registry scenario");
        let probe = |dense: bool| {
            let mut engine = scenario.sim_engine_with(SimConfig::steady_state(7));
            engine.set_dense_events(dense);
            engine
                .deploy(scenario.initial_assignment())
                .expect("deployable");
            engine.step_epoch(0.25); // warm past the cold start
            bench_ns(budget_ms, || {
                std::hint::black_box(engine.step_epoch(0.25));
            })
        };
        record("fleet_engine_step_event", probe(false));
        record("fleet_engine_step_dense", probe(true));
    }

    // ---- fleet-scale action mapping: flat K-NN vs hierarchical ----------
    // One K = 8 mapper query on the 1152 x 128 fleet problem. The flat
    // mapper enumerates k-best assignments over all 128 machine columns
    // and materializes all 8 candidates; the hierarchical mapper solves
    // over 16 core-class groups, refines the winners over one group's
    // machines, and prunes to the top 2 candidates before materializing.
    {
        let (n, m) = (1152usize, 128usize);
        let groups = ClusterSpec::fleet(128, 8, 12).machine_groups(16);
        let mut flat: KBestMapper = KBestMapper::new(n, m);
        let mut hier: HierarchicalMapper = HierarchicalMapper::new(n, m, groups, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let proto: Vec<Elem> = (0..n * m).map(|_| rng.random_range(0.0..1.0)).collect();
        let mut out = Vec::new();
        record(
            "fleet_mapper_query_flat",
            with_pool(serial.clone(), || {
                bench_ns(budget_ms, || {
                    flat.nearest_into(&proto, 8, &mut out);
                    std::hint::black_box(&out);
                })
            }),
        );
        record(
            "fleet_mapper_query_hier",
            with_pool(serial.clone(), || {
                bench_ns(budget_ms, || {
                    hier.nearest_into(&proto, 8, &mut out);
                    std::hint::black_box(&out);
                })
            }),
        );
    }

    // ---- fleet-scale rollout act path: flat vs hierarchical+pruned ------
    // One full decision (actor infer -> noise -> mapping -> critic argmax)
    // on the real cq-fleet problem: the state is the featurized one-hot
    // assignment plus rate tail the act path actually sees, so the
    // sparsity-aware scoring runs at its deployed cost. The hierarchical
    // mapper's top-2 pruning also shrinks the critic argmax from 8
    // candidates to 2. Gated (`fleet_rollout_act` >= 2x).
    {
        let scenario = Scenario::by_name("cq-fleet").expect("registry scenario");
        let (n, m) = (scenario.n_executors(), scenario.n_machines());
        let state_dim = scenario.state_dim();
        let agent: DdpgAgent = DdpgAgent::new(
            state_dim,
            n * m,
            DdpgConfig {
                k: 8,
                hidden: [16, 8],
                replay_capacity: 64,
                batch: BATCH_H,
                seed: 13,
                ..DdpgConfig::default()
            },
        );
        let mut flat: KBestMapper = KBestMapper::new(n, m);
        let mut hier: HierarchicalMapper =
            HierarchicalMapper::new(n, m, ClusterSpec::fleet(128, 8, 12).machine_groups(16), 2);
        let mut rng = StdRng::seed_from_u64(9);
        let mut state = Vec::new();
        dss_core::state::featurize_into(
            &scenario.initial_assignment(),
            &scenario.app.workload,
            ControlConfig::paper().rate_scale,
            &mut state,
        );
        assert_eq!(state.len(), state_dim, "featurized fleet state width");
        let mut flat_scratch = ActScratch::default();
        let mut hier_scratch = ActScratch::default();
        record(
            "fleet_rollout_act_flat",
            with_pool(serial.clone(), || {
                bench_ns(budget_ms, || {
                    std::hint::black_box(agent.select_action_into(
                        &state,
                        &mut flat,
                        0.3,
                        &mut rng,
                        &mut flat_scratch,
                    ));
                })
            }),
        );
        record(
            "fleet_rollout_act_hier",
            with_pool(serial.clone(), || {
                bench_ns(budget_ms, || {
                    std::hint::black_box(agent.select_action_into(
                        &state,
                        &mut hier,
                        0.3,
                        &mut rng,
                        &mut hier_scratch,
                    ));
                })
            }),
        );
    }

    // ---- end-to-end rollout throughput at 1/2/4/8 actors ----------------
    // ns per collected transition of the parallel experience-collection
    // driver (tiny 4-executor topology, analytic environment, frozen
    // agent): the scaling headline for Rapid-style actor parallelism.
    {
        let mut b = TopologyBuilder::new("bench");
        let spout = b.spout("s", 1, 0.05);
        let bolt = b.bolt("x", 3, 0.2);
        b.edge(spout, bolt, Grouping::Shuffle, 1.0, 64);
        let topology = b.build().expect("valid bench topology");
        let cluster = ClusterSpec::homogeneous(2);
        let workload = Workload::uniform(&topology, 100.0);
        let cfg = ControlConfig::test();
        let n = topology.n_executors();
        let m = cluster.n_machines();
        let agent = DdpgAgent::new(
            SchedState::feature_dim(n, m, 1),
            n * m,
            DdpgConfig {
                k: 4,
                hidden: [16, 8],
                seed: cfg.seed,
                ..DdpgConfig::default()
            },
        );
        const STEPS: usize = 8;
        for &actors in &[1usize, 2, 4, 8] {
            let mut col = ParallelCollector::new(&topology, &cluster, &workload, &cfg, actors, 512);
            record(
                &format!("rollout_{actors}actors_per_transition"),
                with_pool(par.clone(), || {
                    bench_ns(budget_ms, || {
                        col.collect_round(&agent, 0.3, STEPS);
                    })
                }) / (actors * STEPS) as f64,
            );
        }
    }

    // ---- async training service: parameter server, batch framing, and
    // the async-vs-lockstep collection throughput pair ------------------
    {
        use dss_core::experiment::Backend;
        use dss_trainer::{
            train_service_on, ParameterServer, SyncMode, TrainerConfig, TransitionRows, WorkerLink,
        };

        // Weight publish/pull round trip at the probe agent shape:
        // publish serializes the policy nets and swaps the versioned
        // slot; pull is the copy-on-read Arc handoff workers see.
        let agent: DdpgAgent = DdpgAgent::new(
            STATE_DIM,
            N_ACTIONS,
            DdpgConfig {
                seed: 7,
                ..DdpgConfig::default()
            },
        );
        let ps = ParameterServer::new();
        record(
            "ps_publish",
            bench_ns(budget_ms, || {
                ps.publish(agent.save_policy());
            }),
        );
        record(
            "ps_pull",
            bench_ns(budget_ms, || {
                std::hint::black_box(ps.pull());
            }),
        );

        // Encode+decode of a 256-row worker batch through the frame codec
        // — the per-push wire cost of a remote rollout worker.
        let mut rng = StdRng::seed_from_u64(11);
        let mut batch = TransitionRows::new(3, STATE_DIM, N_ACTIONS);
        for _ in 0..256 {
            let state: Vec<Elem> = (0..STATE_DIM)
                .map(|_| <Elem as Scalar>::from_f64(rng.random_range(-1.0..1.0)))
                .collect();
            let next: Vec<Elem> = (0..STATE_DIM)
                .map(|_| <Elem as Scalar>::from_f64(rng.random_range(-1.0..1.0)))
                .collect();
            let mut action = vec![<Elem as Scalar>::ZERO; N_ACTIONS];
            action[rng.random_range(0..N_ACTIONS)] = <Elem as Scalar>::from_f64(1.0);
            batch.push_row(&state, &action, rng.random_range(-4.0..0.0), &next);
        }
        record(
            "transition_batch_framing",
            bench_ns(budget_ms, || {
                let frame = dss_proto::encode_frame(&batch.to_message());
                std::hint::black_box(dss_proto::decode_frame(&frame).expect("round trip"));
            }),
        );

        // Collection throughput, async service vs deterministic lockstep:
        // one full (small) training run each, normalized to ns per
        // transition accepted by the learner. The async side overlaps
        // collection with optimization across 4 workers, so multi-core
        // hosts must come out ≥ 1.0 (`bench_gate` waives the pair on
        // 1-core hosts, like the `par_*` keys).
        let cfg = ControlConfig {
            offline_samples: 6,
            offline_steps: 8,
            online_epochs: 32,
            eps_decay_epochs: 8,
            sim_epoch_s: 5.0,
            ..ControlConfig::test()
        };
        let sc = Scenario::by_name("cq-small-steady").expect("registry scenario");
        let lockstep_tc = TrainerConfig {
            mode: SyncMode::Lockstep,
            ..TrainerConfig::default()
        };
        let t0 = Instant::now();
        let out = with_pool(par.clone(), || {
            train_service_on(
                Backend::Analytic,
                &sc,
                &cfg,
                &lockstep_tc,
                &WorkerLink::InProcess,
            )
        });
        record(
            "lockstep_ns_per_transition",
            t0.elapsed().as_nanos() as f64 / out.stats.transitions.max(1) as f64,
        );
        let async_tc = TrainerConfig {
            mode: SyncMode::Async,
            n_workers: 4,
            rounds: 8,
            steps_per_round: 4,
            train_per_batch: 4,
            publish_every: 4,
            ..TrainerConfig::default()
        };
        let t0 = Instant::now();
        let out = with_pool(par.clone(), || {
            train_service_on(
                Backend::Analytic,
                &sc,
                &cfg,
                &async_tc,
                &WorkerLink::InProcess,
            )
        });
        record(
            "async_ns_per_transition",
            t0.elapsed().as_nanos() as f64 / out.stats.transitions.max(1) as f64,
        );
    }

    // ---- emit -----------------------------------------------------------
    let json = to_json(&results, quick, par_threads);
    std::fs::write(&out_path, &json).expect("write BENCH_nn.json");
    println!("# wrote {out_path}");
    for (name, speedup) in speedups(&results) {
        println!("# speedup {name}: {speedup:.2}x");
    }
}

fn random_transition<S: Scalar>(rng: &mut StdRng) -> Transition<usize, S> {
    let state: Vec<S> = (0..STATE_DIM)
        .map(|_| S::from_f64(rng.random_range(0.0..1.0)))
        .collect();
    let next: Vec<S> = (0..STATE_DIM)
        .map(|_| S::from_f64(rng.random_range(0.0..1.0)))
        .collect();
    Transition::new(
        state,
        rng.random_range(0..N_ACTIONS),
        S::from_f64(rng.random_range(-2.0..0.0)),
        next,
    )
}

/// One full MLP training step (forward, MSE, backward, Adam) at the
/// paper's critic shape, generic over the element type — the body the
/// `mlp_fwd_bwd_h32_*` probes time.
fn mlp_step_probe<S: Scalar>(budget_ms: u64) -> f64 {
    let sizes = [STATE_DIM + N_ACTIONS, 64, 32, 1];
    let acts = [Activation::Tanh, Activation::Tanh, Activation::Identity];
    let mut rng = StdRng::seed_from_u64(2);
    let x: Matrix<S> = Matrix::from_fn(BATCH_H, sizes[0], |_, _| {
        S::from_f64(rng.random_range(-1.0..1.0))
    });
    let y: Matrix<S> = Matrix::from_fn(BATCH_H, 1, |_, _| S::from_f64(rng.random_range(-1.0..0.0)));
    let mut net: Mlp<S> = Mlp::new(&sizes, &acts, 7);
    let mut opt: Adam<S> = Adam::new(1e-3);
    bench_ns(budget_ms, || {
        let pred = net.forward(&x);
        let (_, grad) = mse_loss_grad(pred, &y);
        net.zero_grad();
        net.backward(&grad);
        net.apply_gradients(&mut opt);
    })
}

/// One production `DqnAgent::train_step` at paper sizes, generic over
/// the element type — the body of the `dqn_train_step_*` probes.
fn dqn_step_probe<S: Scalar>(budget_ms: u64) -> f64 {
    let mut agent: DqnAgent<S> = DqnAgent::new(
        STATE_DIM,
        N_ACTIONS,
        DqnConfig {
            replay_capacity: REPLAY_B,
            batch: BATCH_H,
            ..DqnConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..REPLAY_B {
        agent.store(random_transition(&mut rng));
    }
    bench_ns(budget_ms, || {
        agent.train_step(&mut rng);
    })
}

/// One allocation-free rollout decision (`select_action_into`) on a
/// 10-thread × 10-machine problem, generic over the element type — the
/// body of the `rollout_act_*` probes.
fn act_path_probe<S: Scalar>(budget_ms: u64) -> f64 {
    let (n, m) = (10usize, 10usize);
    let agent: DdpgAgent<S> = DdpgAgent::new(
        STATE_DIM,
        n * m,
        DdpgConfig {
            replay_capacity: 64,
            batch: BATCH_H,
            ..DdpgConfig::default()
        },
    );
    let mut mapper: KBestMapper<S> = KBestMapper::new(n, m);
    let mut scratch: ActScratch<S> = ActScratch::default();
    let mut rng = StdRng::seed_from_u64(9);
    let state: Vec<S> = (0..STATE_DIM)
        .map(|_| S::from_f64(rng.random_range(0.0..1.0)))
        .collect();
    bench_ns(budget_ms, || {
        std::hint::black_box(agent.select_action_into(
            &state,
            &mut mapper,
            0.3,
            &mut rng,
            &mut scratch,
        ));
    })
}

/// Median-of-samples timer: calibrates how many iterations fill one
/// sample window, then reports the median sample's ns/iter.
fn bench_ns(budget_ms: u64, mut f: impl FnMut()) -> f64 {
    const SAMPLES: usize = 7;
    let window = std::time::Duration::from_millis(budget_ms.max(1)) / SAMPLES as u32;
    let t0 = Instant::now();
    let mut calib = 0u64;
    while t0.elapsed() < window {
        f();
        calib += 1;
    }
    let per_sample = calib.max(1);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let s = Instant::now();
        for _ in 0..per_sample {
            f();
        }
        samples.push(s.elapsed().as_nanos() as f64 / per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Before/after pairs appearing in the `speedups` section. Keys with a
/// `par_` prefix compare a multi-thread run against the serial run of the
/// *same* optimized kernel — they measure machine parallelism, not code
/// quality, so `bench_gate` exempts them from the regression gate.
const PAIRS: &[(&str, &str, &str)] = &[
    (
        "matmul_32x2001x64",
        "matmul_32x2001x64_naive",
        "matmul_32x2001x64_blocked",
    ),
    (
        "matmul_128x128x128",
        "matmul_128x128x128_naive",
        "matmul_128x128x128_blocked",
    ),
    (
        "mlp_fwd_bwd",
        "mlp_fwd_bwd_h32_clone_naive",
        "mlp_fwd_bwd_h32_scratch",
    ),
    (
        "dqn_train_step",
        "dqn_train_step_per_sample",
        "dqn_train_step_batched",
    ),
    (
        "replay_sample",
        "replay_sample_clone_h32",
        "replay_sample_indices_h32",
    ),
    (
        "par_matmul_128x128x128",
        "matmul_128x128x128_blocked",
        "matmul_128x128x128_par",
    ),
    (
        "par_matmul_32x2001x64",
        "matmul_32x2001x64_blocked",
        "matmul_32x2001x64_par",
    ),
    (
        "par_matmul_t_b_32x2001x64",
        "matmul_t_b_32x2001x64_blocked",
        "matmul_t_b_32x2001x64_par",
    ),
    (
        "par_mlp_fwd_bwd",
        "mlp_fwd_bwd_h32_scratch",
        "mlp_fwd_bwd_h32_par",
    ),
    (
        "par_dqn_train_step",
        "dqn_train_step_batched",
        "dqn_train_step_par",
    ),
    (
        "par_replay_push_4w",
        "replay_push_serial_1k",
        "replay_push_sharded_4w_1k",
    ),
    (
        "par_rollout_4x",
        "rollout_1actors_per_transition",
        "rollout_4actors_per_transition",
    ),
    // Fleet-scale pairs: event-driven/hierarchical implementations over
    // their dense/flat counterparts on the 1152-executor, 128-machine
    // cq-fleet shape. Gated with per-key thresholds in `bench_gate`
    // (engine step >= 5x, rollout act >= 2x) — sublinear fleet control is
    // a hard acceptance bar, not a best-effort speedup.
    (
        "fleet_engine_step",
        "fleet_engine_step_dense",
        "fleet_engine_step_event",
    ),
    (
        "fleet_mapper_query",
        "fleet_mapper_query_flat",
        "fleet_mapper_query_hier",
    ),
    (
        "fleet_rollout_act",
        "fleet_rollout_act_flat",
        "fleet_rollout_act_hier",
    ),
    // Precision pairs: f64 instantiation over the f32 default of the SAME
    // serial-pinned code. Gated (no par_ prefix): f32 must stay >= 1.0x.
    (
        "f32_over_f64_matmul_32x64x32",
        "matmul_32x64x32_f64_blocked",
        "matmul_32x64x32_blocked",
    ),
    (
        "f32_over_f64_matmul_32x2001x64",
        "matmul_32x2001x64_f64_blocked",
        "matmul_32x2001x64_blocked",
    ),
    (
        "f32_over_f64_matmul_128x128x128",
        "matmul_128x128x128_f64_blocked",
        "matmul_128x128x128_blocked",
    ),
    (
        "f32_over_f64_mlp_fwd_bwd",
        "mlp_fwd_bwd_h32_f64",
        "mlp_fwd_bwd_h32_scratch",
    ),
    (
        "f32_over_f64_dqn_train_step",
        "dqn_train_step_f64",
        "dqn_train_step_batched",
    ),
    (
        "f32_over_f64_rollout_act",
        "rollout_act_f64",
        "rollout_act_f32",
    ),
    // The transposed-RHS pack-amortization gate: with the pack-aware
    // sharding bar the wide-k short-m shape runs the same serial kernel
    // under both pools, so this must sit at ≈ 1.0 — it collapsed to ~0.5
    // when the pool-blind heuristic sharded the product but paid the
    // serial 128k-element `Wᵀ` pack per call. Gated at 0.9 (1-core
    // waived: a 2-thread pool on one core shards without the parallelism
    // to pay for it).
    (
        "t_b_pack_gate_32x2001x64",
        "matmul_t_b_32x2001x64_blocked",
        "matmul_t_b_32x2001x64_par",
    ),
    // Async service vs lockstep, ns per learner-accepted transition:
    // 4 overlapped workers must collect at least as fast as the
    // deterministic sequential mode on a multi-core host (1-core waived).
    (
        "async_over_lockstep_throughput",
        "lockstep_ns_per_transition",
        "async_ns_per_transition",
    ),
    // Quantized rollout pairs. The act pair runs the identical decision
    // (same seed, state, mapper, eps) through the rollout quantization
    // profile vs the f32 agent — gated >= 1.2x. The frame pair divides
    // the full-precision policy image's bytes by the quant frame's bytes
    // (both recorded in the ns field) — gated >= 2.857x, i.e. the quant
    // frame a worker pulls must stay <= 0.35x of the f32 image.
    (
        "quant_rollout_act_over_f32",
        "rollout_act_f32",
        "quant_rollout_act",
    ),
    (
        "quant_weights_frame_bytes",
        "policy_frame_bytes_f32",
        "policy_frame_bytes_quant",
    ),
    // Band pinning: the same parallel 128^3 product with the stable
    // band→worker affinity hint on (default) vs off. Pinning keeps each
    // output band's rows in one worker's cache across repetitions; it is
    // a hint only (idle workers still steal), so the gate is >= 1.0x on
    // multi-core hosts (1-core waived, like the other par-dependent keys).
    (
        "band_pinned_over_unpinned",
        "matmul_128x128x128_par_unpinned",
        "matmul_128x128x128_par",
    ),
];

fn speedups(results: &[(String, f64)]) -> Vec<(String, f64)> {
    let get = |name: &str| results.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    PAIRS
        .iter()
        .filter_map(|(label, before, after)| Some((label.to_string(), get(before)? / get(after)?)))
        .collect()
}

fn to_json(results: &[(String, f64)], quick: bool, par_threads: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"dss-bench/nn-v1\",\n");
    let elem = <Elem as Scalar>::NAME;
    let kernel = microkernel_name();
    // Physical parallelism of the measuring host: the par_* ratios are
    // meaningless without it (a 1-core container measures ≈ 1.0), so the
    // artifact carries it and is self-describing.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    s.push_str(&format!(
        "  \"config\": {{\"replay_b\": {REPLAY_B}, \"batch_h\": {BATCH_H}, \"state_dim\": {STATE_DIM}, \"n_actions\": {N_ACTIONS}, \"quick\": {quick}, \"par_threads\": {par_threads}, \"host_cores\": {host_cores}, \"elem\": \"{elem}\", \"microkernel\": \"{kernel}\"}},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"ns_per_iter\": {ns:.1}}}{comma}\n"
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"speedups\": {\n");
    let sp = speedups(results);
    for (i, (name, x)) in sp.iter().enumerate() {
        let comma = if i + 1 < sp.len() { "," } else { "" };
        s.push_str(&format!("    \"{name}\": {x:.3}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    s
}

/// The seed's pre-optimization implementations, reconstructed verbatim in
/// spirit: naive triple-loop matmul (with the one-hot zero-skip branch),
/// clone-per-forward layer caching, per-sample target evaluation, and
/// clone-collected minibatches. Kept here — not in the production crates —
/// purely as the "before" side of the emitted speedups.
mod reference {
    use super::*;

    /// Naive `a * b` with the seed's zero-skip branch.
    #[allow(clippy::needless_range_loop)]
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul dims");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// Naive `a * bᵀ`.
    pub fn matmul_transpose_b(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_t_b dims");
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            let a_row = a.row(i);
            for j in 0..b.rows() {
                let b_row = b.row(j);
                let mut acc = 0.0;
                for (&x, &w) in a_row.iter().zip(b_row) {
                    acc += x * w;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Naive `aᵀ * b`.
    pub fn matmul_transpose_a(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "matmul_t_a dims");
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for r in 0..a.rows() {
            let a_row = a.row(r);
            let b_row = b.row(r);
            for (k, &a_rk) in a_row.iter().enumerate() {
                if a_rk == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(k);
                for (o, &v) in out_row.iter_mut().zip(b_row) {
                    *o += a_rk * v;
                }
            }
        }
        out
    }

    /// The seed's clone-caching dense layer (over the production element
    /// type, so before/after pairs isolate the *structural* win).
    pub struct RefDense {
        w: Matrix,
        b: Vec<Elem>,
        activation: Activation,
        grad_w: Matrix,
        grad_b: Vec<Elem>,
        cached_input: Option<Matrix>,
        cached_output: Option<Matrix>,
    }

    impl RefDense {
        pub fn forward(&mut self, x: &Matrix) -> Matrix {
            let mut z = matmul_transpose_b(x, &self.w);
            z.add_row_broadcast(&self.b);
            z.map_inplace(|v| self.activation.apply(v));
            self.cached_input = Some(x.clone());
            self.cached_output = Some(z.clone());
            z
        }

        pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
            let input = self.cached_input.as_ref().expect("backward before forward");
            let output = self.cached_output.as_ref().expect("missing cache");
            let act = self.activation;
            let dz = Matrix::from_fn(grad_output.rows(), grad_output.cols(), |r, c| {
                grad_output[(r, c)] * act.derivative_from_output(output[(r, c)])
            });
            let dw = matmul_transpose_a(&dz, input);
            for (g, d) in self.grad_w.data_mut().iter_mut().zip(dw.data()) {
                *g += d;
            }
            for (g, d) in self.grad_b.iter_mut().zip(dz.column_sums()) {
                *g += d;
            }
            matmul(&dz, &self.w)
        }
    }

    /// The seed's Mlp, over [`RefDense`].
    pub struct RefMlp {
        layers: Vec<RefDense>,
    }

    impl RefMlp {
        /// Clones architecture and weights from a production [`Mlp`].
        pub fn from_mlp(net: &Mlp) -> Self {
            let layers = net
                .layers()
                .iter()
                .map(|l| RefDense {
                    w: l.weights().clone(),
                    b: l.bias().to_vec(),
                    activation: l.activation(),
                    grad_w: Matrix::zeros(l.output_size(), l.input_size()),
                    grad_b: vec![0.0 as Elem; l.output_size()],
                    cached_input: None,
                    cached_output: None,
                })
                .collect();
            Self { layers }
        }

        pub fn forward(&mut self, x: &Matrix) -> Matrix {
            let mut h = x.clone();
            for layer in &mut self.layers {
                h = layer.forward(&h);
            }
            h
        }

        /// The seed's cache-free inference: allocates one output per layer.
        pub fn infer(&self, x: &Matrix) -> Matrix {
            let mut h = x.clone();
            for layer in &self.layers {
                let mut z = matmul_transpose_b(&h, &layer.w);
                z.add_row_broadcast(&layer.b);
                z.map_inplace(|v| layer.activation.apply(v));
                h = z;
            }
            h
        }

        pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
            let mut g = grad_output.clone();
            for layer in self.layers.iter_mut().rev() {
                g = layer.backward(&g);
            }
            g
        }

        pub fn zero_grad(&mut self) {
            for layer in &mut self.layers {
                layer.grad_w.data_mut().fill(0.0);
                layer.grad_b.fill(0.0);
            }
        }

        pub fn apply_gradients(&mut self, opt: &mut Adam) {
            for (li, layer) in self.layers.iter_mut().enumerate() {
                opt.update(li * 2, layer.w.data_mut(), layer.grad_w.data());
                opt.update(li * 2 + 1, layer.b.as_mut_slice(), layer.grad_b.as_slice());
            }
        }
    }

    /// The seed's DQN step: clone-collected minibatch, per-transition
    /// matrices built with `from_fn`, allocating forward, full-width
    /// gradient matrix built per step.
    pub struct OldDqn {
        pub q: RefMlp,
        pub target_q: RefMlp,
        pub opt: Adam,
        pub replay: ReplayBuffer<usize, Elem>,
        pub batch: usize,
        state_dim: usize,
        n_actions: usize,
        gamma: Elem,
    }

    impl OldDqn {
        pub fn new(state_dim: usize, n_actions: usize, replay: usize, batch: usize) -> Self {
            let sizes = [state_dim, 64, 32, n_actions];
            let acts = [Activation::Tanh, Activation::Tanh, Activation::Identity];
            let donor = Mlp::new(&sizes, &acts, 42);
            Self {
                q: RefMlp::from_mlp(&donor),
                target_q: RefMlp::from_mlp(&donor),
                opt: Adam::new(1e-3),
                replay: ReplayBuffer::new(replay),
                batch,
                state_dim,
                n_actions,
                gamma: 0.99,
            }
        }

        pub fn train_step(&mut self, rng: &mut StdRng) -> Option<f64> {
            if self.replay.is_empty() {
                return None;
            }
            let batch: Vec<Transition<usize, Elem>> = self
                .replay
                .sample(self.batch, rng)
                .into_iter()
                .cloned()
                .collect();
            let h = batch.len();
            // Seed-faithful target evaluation: a `from_fn`-built matrix and
            // an allocating cache-free inference, then a per-row max.
            let next_states = Matrix::from_fn(h, self.state_dim, |r, c| batch[r].next_state[c]);
            let next_q = self.target_q.infer(&next_states);
            let targets: Vec<Elem> = batch
                .iter()
                .enumerate()
                .map(|(r, t)| {
                    let best = next_q
                        .row(r)
                        .iter()
                        .copied()
                        .fold(Elem::NEG_INFINITY, Elem::max) as Elem;
                    t.reward + self.gamma * best
                })
                .collect();
            let states = Matrix::from_fn(h, self.state_dim, |r, c| batch[r].state[c]);
            let pred = self.q.forward(&states);
            let pred_chosen = Matrix::from_fn(h, 1, |r, _| pred[(r, batch[r].action)]);
            let target_mat = Matrix::from_fn(h, 1, |r, _| targets[r]);
            let (loss, grad_chosen) = mse_loss_grad(&pred_chosen, &target_mat);
            let mut grad_full = Matrix::zeros(h, self.n_actions);
            for (r, t) in batch.iter().enumerate() {
                grad_full[(r, t.action)] = grad_chosen[(r, 0)];
            }
            self.q.zero_grad();
            self.q.backward(&grad_full);
            self.q.apply_gradients(&mut self.opt);
            Some(loss)
        }
    }
}
