//! Figure 7: normalized smoothed reward over online learning — actor-critic
//! vs DQN on the continuous queries topology (large scale, T = 2000 in the
//! paper).

use dss_apps::{continuous_queries, CqScale};
use dss_bench::{emit_records, emit_series, RunOptions};
use dss_core::experiment::{figure_rewards, Method};
use dss_metrics::{ExperimentRecord, ShapeCheck, TimeSeries};

fn main() {
    let opts = RunOptions::from_env();
    let app = continuous_queries(CqScale::Large);
    eprintln!(
        "[fig7] online learning on {} (T = {})",
        app.name, opts.config.online_epochs
    );
    let curves = figure_rewards(&app, &opts.cluster(), &opts.config);
    let labelled: Vec<(&str, &TimeSeries)> = curves.iter().map(|(m, s)| (m.label(), s)).collect();
    emit_series(&opts, "fig7", &labelled);

    let ac = &curves[0].1;
    let dqn = &curves[1].1;
    assert_eq!(curves[0].0, Method::ActorCritic);
    let tail = |s: &TimeSeries| s.tail_mean(s.len() / 10 + 1).unwrap();
    let head = |s: &TimeSeries| s.window_mean(0.0, (s.len() / 10 + 1) as f64).unwrap();
    // The paper reads the DQN's end-of-run average off the curve: 0.44.
    let records = vec![
        ExperimentRecord::new(
            "fig7",
            "final normalized reward, actor-critic",
            None,
            tail(ac),
        ),
        ExperimentRecord::new(
            "fig7",
            "final normalized reward, dqn",
            Some(0.44),
            tail(dqn),
        ),
    ];
    let checks = vec![
        ShapeCheck::new(
            "fig7",
            "actor-critic climbs during online learning",
            tail(ac) > head(ac),
        ),
        ShapeCheck::new("fig7", "actor-critic ends above dqn", tail(ac) > tail(dqn)),
    ];
    emit_records(&opts, "fig7", &records, &checks);
}
