//! The paper's headline summary: stable average tuple processing times for
//! every topology, with the improvement percentages of the actor-critic
//! method over the default scheduler and the model-based method
//! ("reduces average tuple processing by 33.5% and 14.0% respectively on
//! average").

use dss_apps::{continuous_queries, log_stream, word_count, App, CqScale};
use dss_bench::{emit_records, RunOptions};
use dss_core::experiment::{figure_deployment, stable_ms, Method};
use dss_metrics::stats::improvement;
use dss_metrics::{ExperimentRecord, ShapeCheck};

fn main() {
    let opts = RunOptions::from_env();
    let minutes = opts.minutes_or(20.0);
    let apps: Vec<App> = vec![
        continuous_queries(CqScale::Small),
        continuous_queries(CqScale::Medium),
        continuous_queries(CqScale::Large),
        log_stream(),
        word_count(),
    ];
    // Paper stable values per app: [default, model-based, dqn, actor-critic].
    let paper: [[f64; 4]; 5] = [
        [1.96, 1.46, 1.54, 1.33],
        [2.08, 1.61, 1.59, 1.43],
        [2.64, 2.12, 2.45, 1.72],
        [9.61, 7.91, 8.19, 7.20],
        [3.10, 2.16, 2.29, 1.70],
    ];

    let mut records = Vec::new();
    let mut checks = Vec::new();
    let mut imp_default = Vec::new();
    let mut imp_model = Vec::new();

    for (app, paper_row) in apps.iter().zip(paper) {
        eprintln!("[summary] {}", app.name);
        let results = figure_deployment(app, &opts.cluster(), &opts.config, minutes, 30.0);
        let mut stable = std::collections::HashMap::new();
        for ((method, series, _), paper_ms) in results.iter().zip(paper_row) {
            let ms = stable_ms(series);
            stable.insert(*method, ms);
            records.push(ExperimentRecord::new(
                app.name,
                format!("stable avg tuple time, {} (ms)", method.label()),
                Some(paper_ms),
                ms,
            ));
        }
        let ac = stable[&Method::ActorCritic];
        let mb = stable[&Method::ModelBased];
        let df = stable[&Method::Default];
        let dq = stable[&Method::Dqn];
        imp_default.push(improvement(df, ac));
        imp_model.push(improvement(mb, ac));
        checks.push(ShapeCheck::new(
            app.name,
            "actor-critic wins (within 2% of best)",
            ac <= mb * 1.02 && ac < df && ac <= dq * 1.02,
        ));
        checks.push(ShapeCheck::new(app.name, "model-based < default", mb < df));
        checks.push(ShapeCheck::new(
            app.name,
            "dqn does not beat the actor-critic",
            ac <= dq * 1.02,
        ));
    }

    let avg_def = imp_default.iter().sum::<f64>() / imp_default.len() as f64;
    let avg_mb = imp_model.iter().sum::<f64>() / imp_model.len() as f64;
    records.push(ExperimentRecord::new(
        "headline",
        "avg improvement of actor-critic over default (%)",
        Some(33.5),
        avg_def * 100.0,
    ));
    records.push(ExperimentRecord::new(
        "headline",
        "avg improvement of actor-critic over model-based (%)",
        Some(14.0),
        avg_mb * 100.0,
    ));
    checks.push(ShapeCheck::new(
        "headline",
        "avg improvement over default >= 12% (paper: 33.5%)",
        avg_def >= 0.12,
    ));
    checks.push(ShapeCheck::new(
        "headline",
        "avg improvement over model-based >= 3% (paper: 14.0%)",
        avg_mb >= 0.03,
    ));
    emit_records(&opts, "summary", &records, &checks);
}
