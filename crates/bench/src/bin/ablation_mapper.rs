//! Ablation: exact K-best MIQP-NN mapping vs the paper's
//! relaxation-and-rounding fallback for very large action spaces.
//!
//! Compares the two `dss-rl` action mappers on identical proto-actions:
//! candidate quality (distance to proto, critic's achievable max) and
//! mapping latency, across problem sizes.

use std::time::Instant;

use dss_bench::{emit_records, RunOptions};
use dss_metrics::{ExperimentRecord, ShapeCheck};
use dss_rl::{ActionMapper, KBestMapper, RelaxMapper};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let opts = RunOptions::from_env();
    let mut records = Vec::new();
    let mut checks = Vec::new();
    let k = opts.config.k;

    for (n, m) in [(20usize, 10usize), (50, 10), (100, 10), (200, 20)] {
        let mut rng = StdRng::seed_from_u64(opts.config.seed);
        let proto: Vec<f64> = (0..n * m).map(|_| rng.random_range(0.0..1.0)).collect();

        let mut exact = KBestMapper::new(n, m);
        let t0 = Instant::now();
        let exact_cands = exact.nearest(&proto, k);
        let exact_us = t0.elapsed().as_secs_f64() * 1e6;

        let mut approx = RelaxMapper::new(n, m, StdRng::seed_from_u64(opts.config.seed ^ 1));
        let t1 = Instant::now();
        let approx_cands = approx.nearest(&proto, k);
        let approx_us = t1.elapsed().as_secs_f64() * 1e6;

        let label = format!("N={n},M={m}");
        records.push(ExperimentRecord::new(
            "ablation_mapper",
            format!("exact k-best time, {label} (us)"),
            None,
            exact_us,
        ));
        records.push(ExperimentRecord::new(
            "ablation_mapper",
            format!("relax+round time, {label} (us)"),
            None,
            approx_us,
        ));
        let exact_best = exact_cands[0].cost;
        let approx_best = approx_cands[0].cost;
        records.push(ExperimentRecord::new(
            "ablation_mapper",
            format!("nearest-neighbour cost gap, {label}"),
            None,
            approx_best - exact_best,
        ));
        checks.push(ShapeCheck::new(
            "ablation_mapper",
            format!("relaxation finds the exact nearest neighbour ({label})"),
            (approx_best - exact_best).abs() < 1e-9,
        ));
        // The paper: MIQP-NN instances solved "within 10ms" by Gurobi.
        checks.push(ShapeCheck::new(
            "ablation_mapper",
            format!("exact k-best within the paper's 10 ms budget ({label})"),
            exact_us < 10_000.0,
        ));
    }
    emit_records(&opts, "ablation_mapper", &records, &checks);
}
