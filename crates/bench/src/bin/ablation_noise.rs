//! Ablation: the paper's memoryless `R(â) = â + εI` exploration vs
//! DDPG's Ornstein-Uhlenbeck (OU) temporally correlated noise.
//!
//! Algorithm 1 (line 9) perturbs the proto-action with uniform noise under
//! a decaying probability ε. The original DDPG recipe the paper builds on
//! uses an OU process instead. This ablation measures, on the actual
//! proto-action geometry (the `N·M`-dimensional one-hot simplex), how the
//! two noise processes differ in (a) how many *distinct* discrete actions
//! the K-NN mapper reaches during an exploration window and (b) how far
//! from the proto-action the explored actions land.

use dss_bench::{emit_records, RunOptions};
use dss_metrics::{ExperimentRecord, ShapeCheck};
use dss_rl::{explore::perturb_proto, ActionMapper, KBestMapper, OuNoise};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Count distinct mapped actions and mean L2 drift over an exploration
/// window of `steps` epochs.
fn explore_stats(
    n: usize,
    m: usize,
    steps: usize,
    mut next: impl FnMut(&[f64], &mut StdRng) -> Vec<f64>,
) -> (usize, f64) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut mapper = KBestMapper::new(n, m);
    // A fixed proto-action: the actor weakly preferring machine 0 for
    // every thread (a realistic mid-training margin, small enough that
    // exploration noise can actually change the mapped action).
    let mut proto = vec![0.2; n * m];
    for i in 0..n {
        proto[i * m] = 0.3;
    }
    let mut seen = HashSet::new();
    let mut drift = 0.0;
    for _ in 0..steps {
        let noisy = next(&proto, &mut rng);
        let candidates = mapper.nearest(&noisy, 1);
        if let Some(best) = candidates.first() {
            seen.insert(best.choice.clone());
        }
        drift += proto
            .iter()
            .zip(&noisy)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
    }
    (seen.len(), drift / steps as f64)
}

fn main() {
    let opts = RunOptions::from_env();
    let (n, m, steps) = (20usize, 5usize, 400usize);

    // The paper's exploration at a mid-schedule ε.
    let eps = 0.4;
    let (paper_distinct, paper_drift) =
        explore_stats(n, m, steps, |proto, rng| perturb_proto(proto, eps, rng));

    // OU noise at a scale chosen to match the paper's mean drift.
    let mut ou = OuNoise::new(n * m);
    let (ou_distinct, ou_drift) =
        explore_stats(n, m, steps, |proto, rng| ou.perturb(proto, eps, rng));

    let records = vec![
        ExperimentRecord::new(
            "ablation_noise",
            "distinct actions reached, paper eps-uniform noise",
            None,
            paper_distinct as f64,
        ),
        ExperimentRecord::new(
            "ablation_noise",
            "distinct actions reached, OU noise",
            None,
            ou_distinct as f64,
        ),
        ExperimentRecord::new(
            "ablation_noise",
            "mean L2 drift from proto-action, paper noise",
            None,
            paper_drift,
        ),
        ExperimentRecord::new(
            "ablation_noise",
            "mean L2 drift from proto-action, OU noise",
            None,
            ou_drift,
        ),
    ];
    let checks = vec![
        ShapeCheck::new(
            "ablation_noise",
            "both noise processes explore beyond the greedy action",
            paper_distinct > 1 && ou_distinct > 1,
        ),
        ShapeCheck::new(
            "ablation_noise",
            "OU's correlated walk reaches at least as many distinct actions",
            ou_distinct >= paper_distinct,
        ),
    ];
    eprintln!(
        "[ablation_noise] paper: {paper_distinct} distinct / drift {paper_drift:.3}; \
         OU: {ou_distinct} distinct / drift {ou_drift:.3}"
    );
    emit_records(&opts, "ablation_noise", &records, &checks);
}
