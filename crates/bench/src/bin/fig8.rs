//! Figure 8: average tuple processing time over the log stream processing
//! topology (large scale), four methods, 20 minutes after deployment.

use dss_apps::log_stream;
use dss_bench::{emit_records, emit_series, RunOptions};
use dss_core::experiment::{figure_deployment, stable_ms, Method};
use dss_metrics::{ExperimentRecord, ShapeCheck, TimeSeries};

/// Paper stable values: default, model-based, DQN, actor-critic (ms).
const PAPER: [f64; 4] = [9.61, 7.91, 8.19, 7.20];

fn main() {
    let opts = RunOptions::from_env();
    let minutes = opts.minutes_or(20.0);
    let app = log_stream();
    eprintln!("[fig8] training 4 methods on {}", app.name);
    let results = figure_deployment(&app, &opts.cluster(), &opts.config, minutes, 30.0);
    let labelled: Vec<(&str, &TimeSeries)> =
        results.iter().map(|(m, s, _)| (m.label(), s)).collect();
    emit_series(&opts, "fig8", &labelled);

    let mut records = Vec::new();
    let mut stable = std::collections::HashMap::new();
    for ((method, series, _), paper_ms) in results.iter().zip(PAPER) {
        let ms = stable_ms(series);
        stable.insert(*method, ms);
        records.push(ExperimentRecord::new(
            "fig8",
            format!("stable avg tuple time, {} (ms)", method.label()),
            Some(paper_ms),
            ms,
        ));
    }
    let checks = vec![
        ShapeCheck::new(
            "fig8",
            "actor-critic wins",
            stable[&Method::ActorCritic] < stable[&Method::ModelBased]
                && stable[&Method::ActorCritic] < stable[&Method::Default]
                && stable[&Method::ActorCritic] < stable[&Method::Dqn],
        ),
        ShapeCheck::new(
            "fig8",
            "log stream slower than continuous queries (paper: 'more complicated ... longer')",
            stable[&Method::Default] > 4.0,
        ),
    ];
    emit_records(&opts, "fig8", &records, &checks);
}
