//! Bench-regression gate over a `bench_json` artifact.
//!
//! Reads the `speedups` section of a `BENCH_nn.json`-format file and fails
//! (exit 1) when any **serial-baseline** speedup ratio drops below the
//! threshold — i.e. when an optimized kernel stops beating the
//! reconstructed "before" implementation it is paired with. Keys with a
//! `par_` prefix compare multi-thread against serial runs of the *same*
//! kernel; they depend on how many cores the runner has (a 1-core CI
//! machine legitimately measures ≈ 1.0 or below), so they are reported
//! but never gated.
//!
//! ```text
//! bench_gate [PATH] [--min RATIO]
//!
//! PATH     bench_json artifact to check (default: BENCH_nn.json)
//! --min    minimum acceptable serial speedup ratio (default: 1.0)
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut path = "BENCH_nn.json".to_string();
    let mut min = 1.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min" => {
                min = args
                    .next()
                    .expect("--min needs a value")
                    .parse()
                    .expect("--min needs a number");
            }
            other if !other.starts_with('-') => path = other.to_string(),
            other => panic!("unknown flag `{other}`; expected [PATH] [--min RATIO]"),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let speedups = parse_speedups(&text);
    if speedups.is_empty() {
        eprintln!("bench_gate: no speedups section found in {path}");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for (name, ratio) in &speedups {
        let gated = !name.starts_with("par_");
        let ok = !gated || *ratio >= min;
        let tag = match (gated, ok) {
            (false, _) => "ungated",
            (true, true) => "ok",
            (true, false) => "FAIL",
        };
        println!("{tag:<8} {name:<32} {ratio:>8.3}x");
        failed |= !ok;
    }
    if failed {
        eprintln!("bench_gate: serial-baseline speedup regressed below {min:.2}x");
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all serial-baseline speedups >= {min:.2}x");
    ExitCode::SUCCESS
}

/// Extracts `name -> ratio` entries from the artifact's `"speedups"`
/// object. The format is the fixed machine-written subset `bench_json`
/// emits, so line-oriented scanning is enough — no JSON dependency.
fn parse_speedups(text: &str) -> Vec<(String, f64)> {
    let Some(start) = text.find("\"speedups\"") else {
        return Vec::new();
    };
    let body = &text[start..];
    let Some(open) = body.find('{') else {
        return Vec::new();
    };
    let Some(close) = body.find('}') else {
        return Vec::new();
    };
    body[open + 1..close]
        .lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let (name, value) = line.split_once(':')?;
            let name = name.trim().trim_matches('"');
            let value: f64 = value.trim().parse().ok()?;
            (!name.is_empty()).then(|| (name.to_string(), value))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::parse_speedups;

    #[test]
    fn parses_the_emitted_format() {
        let json = r#"{
  "schema": "dss-bench/nn-v1",
  "results": [
    {"name": "x", "ns_per_iter": 1.0}
  ],
  "speedups": {
    "matmul_128x128x128": 2.138,
    "par_rollout_4x": 0.970
  }
}
"#;
        let got = parse_speedups(json);
        assert_eq!(
            got,
            vec![
                ("matmul_128x128x128".to_string(), 2.138),
                ("par_rollout_4x".to_string(), 0.970),
            ]
        );
    }

    #[test]
    fn missing_section_is_empty() {
        assert!(parse_speedups("{}").is_empty());
    }
}
