//! Bench-regression gate over a `bench_json` artifact.
//!
//! Reads the `speedups` section of a `BENCH_nn.json`-format file and fails
//! (exit 1) when any **serial-baseline** speedup ratio drops below its
//! threshold — i.e. when an optimized kernel stops beating the
//! reconstructed "before" implementation it is paired with. Keys with a
//! `par_` prefix compare multi-thread against serial runs of the *same*
//! kernel; they depend on how many cores the runner has (a 1-core CI
//! machine legitimately measures ≈ 1.0 or below), so they are reported
//! but never gated.
//!
//! Most probes gate against the `--min` floor; the fleet-scale pairs
//! carry their own hard thresholds ([`KEY_THRESHOLDS`]): the event-driven
//! engine must stay ≥ 5× the dense oracle under mostly-idle fleet load,
//! and the hierarchical+pruned act path ≥ 2× the flat mapper. A failure
//! names the probe, the measured ratio, its threshold and the artifact's
//! `host_cores`, so a regression report is actionable without re-running.
//!
//! ```text
//! bench_gate [PATH] [--min RATIO]
//!
//! PATH     bench_json artifact to check (default: BENCH_nn.json)
//! --min    minimum acceptable serial speedup ratio (default: 1.0;
//!          keys in the per-key table use their own threshold instead)
//! ```

use std::process::ExitCode;

/// Per-key gate thresholds that replace the `--min` floor outright. The
/// fleet keys are the fleet-scale acceptance bars: sublinear engine
/// stepping and hierarchical action mapping must keep paying at scale.
/// `f32_over_f64_rollout_act` is a documented exception below 1.0: since
/// the act path went sparsity-aware it is gather-bound, not FLOP-bound,
/// so its f32-vs-f64 ratio is measurement noise around 1.0 — the floor
/// only catches a real precision regression, not jitter.
const KEY_THRESHOLDS: &[(&str, f64)] = &[
    ("fleet_engine_step", 5.0),
    ("fleet_rollout_act", 2.0),
    ("f32_over_f64_rollout_act", 0.8),
    ("t_b_pack_gate_32x2001x64", 0.9),
    ("async_over_lockstep_throughput", 1.0),
    // Quantized rollout: the i8/bf16 act path must beat the f32 act path
    // by 1.2x, and the quant policy frame must stay <= 0.35x of the f32
    // image's bytes (the pair records f32-bytes / quant-bytes >= 2.857).
    ("quant_rollout_act_over_f32", 1.2),
    ("quant_weights_frame_bytes", 2.857),
    // Band→worker affinity pinning is a cache hint, not an algorithmic
    // win: it must simply never lose to unpinned sharding (1-core waived).
    ("band_pinned_over_unpinned", 1.0),
];

/// Keys whose contender only wins with real parallelism: gated normally
/// on multi-core hosts, waived (like the `par_*` prefix) when the
/// artifact was measured on a 1-core host — there a 2-thread pool shards
/// without any cores to pay for it, so the ratio is meaningless.
const MULTICORE_ONLY_KEYS: &[&str] = &[
    "t_b_pack_gate_32x2001x64",
    "async_over_lockstep_throughput",
    "band_pinned_over_unpinned",
];

fn main() -> ExitCode {
    let mut path = "BENCH_nn.json".to_string();
    let mut min = 1.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min" => {
                min = args
                    .next()
                    .expect("--min needs a value")
                    .parse()
                    .expect("--min needs a number");
            }
            other if !other.starts_with('-') => path = other.to_string(),
            other => panic!("unknown flag `{other}`; expected [PATH] [--min RATIO]"),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let speedups = parse_speedups(&text);
    if speedups.is_empty() {
        eprintln!("bench_gate: no speedups section found in {path}");
        return ExitCode::FAILURE;
    }

    let host_cores = parse_host_cores(&text);
    let mut failures: Vec<String> = Vec::new();
    for (name, ratio) in &speedups {
        let gated = is_gated(name, host_cores);
        let threshold = threshold_for(name, min);
        let ok = !gated || *ratio >= threshold;
        let tag = match (gated, ok) {
            (false, _) => "ungated",
            (true, true) => "ok",
            (true, false) => "FAIL",
        };
        println!("{tag:<8} {name:<32} {ratio:>8.3}x (threshold {threshold:.2}x)");
        if !ok {
            failures.push(format!(
                "probe `{name}` measured {ratio:.3}x, below its {threshold:.2}x threshold \
                 (host_cores={host_cores})"
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_gate: FAIL: {f}");
        }
        eprintln!(
            "bench_gate: {} gated speedup(s) regressed in {path}",
            failures.len()
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all gated speedups met their thresholds (floor {min:.2}x)");
    ExitCode::SUCCESS
}

/// Whether a speedup key is gated at all: `par_*` keys never are, and
/// [`MULTICORE_ONLY_KEYS`] are waived on a 1-core measuring host.
fn is_gated(name: &str, host_cores: usize) -> bool {
    let waived_on_one_core = host_cores == 1 && MULTICORE_ONLY_KEYS.contains(&name);
    !(name.starts_with("par_") || waived_on_one_core)
}

/// The gate threshold for one speedup key: its [`KEY_THRESHOLDS`] entry
/// when present, the `--min` floor otherwise.
fn threshold_for(name: &str, min: f64) -> f64 {
    KEY_THRESHOLDS
        .iter()
        .find(|(key, _)| *key == name)
        .map(|&(_, t)| t)
        .unwrap_or(min)
}

/// The measuring host's `host_cores` from the artifact's `config` section
/// (`0` when absent — pre-fleet artifacts did not record it).
fn parse_host_cores(text: &str) -> usize {
    let Some(at) = text.find("\"host_cores\"") else {
        return 0;
    };
    text[at + "\"host_cores\"".len()..]
        .trim_start_matches(':')
        .trim_start()
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Extracts `name -> ratio` entries from the artifact's `"speedups"`
/// object. The format is the fixed machine-written subset `bench_json`
/// emits, so line-oriented scanning is enough — no JSON dependency.
fn parse_speedups(text: &str) -> Vec<(String, f64)> {
    let Some(start) = text.find("\"speedups\"") else {
        return Vec::new();
    };
    let body = &text[start..];
    let Some(open) = body.find('{') else {
        return Vec::new();
    };
    let Some(close) = body.find('}') else {
        return Vec::new();
    };
    body[open + 1..close]
        .lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let (name, value) = line.split_once(':')?;
            let name = name.trim().trim_matches('"');
            let value: f64 = value.trim().parse().ok()?;
            (!name.is_empty()).then(|| (name.to_string(), value))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::{is_gated, parse_host_cores, parse_speedups, threshold_for};

    #[test]
    fn parses_the_emitted_format() {
        let json = r#"{
  "schema": "dss-bench/nn-v1",
  "results": [
    {"name": "x", "ns_per_iter": 1.0}
  ],
  "speedups": {
    "matmul_128x128x128": 2.138,
    "par_rollout_4x": 0.970
  }
}
"#;
        let got = parse_speedups(json);
        assert_eq!(
            got,
            vec![
                ("matmul_128x128x128".to_string(), 2.138),
                ("par_rollout_4x".to_string(), 0.970),
            ]
        );
    }

    #[test]
    fn missing_section_is_empty() {
        assert!(parse_speedups("{}").is_empty());
    }

    #[test]
    fn fleet_keys_carry_their_own_thresholds() {
        assert_eq!(threshold_for("fleet_engine_step", 1.0), 5.0);
        assert_eq!(threshold_for("fleet_rollout_act", 1.0), 2.0);
        assert_eq!(threshold_for("matmul_128x128x128", 1.0), 1.0);
        // Per-key thresholds replace the floor in both directions: the
        // fleet bars stay hard under a lax --min, and the noise-bound
        // f32-vs-f64 act pair stays soft under the default.
        assert_eq!(threshold_for("fleet_engine_step", 0.5), 5.0);
        assert_eq!(threshold_for("f32_over_f64_rollout_act", 1.0), 0.8);
    }

    #[test]
    fn trainer_keys_carry_their_own_thresholds() {
        assert_eq!(threshold_for("t_b_pack_gate_32x2001x64", 1.0), 0.9);
        assert_eq!(threshold_for("async_over_lockstep_throughput", 0.5), 1.0);
    }

    #[test]
    fn quant_keys_carry_their_own_thresholds() {
        assert_eq!(threshold_for("quant_rollout_act_over_f32", 1.0), 1.2);
        assert_eq!(threshold_for("quant_weights_frame_bytes", 1.0), 2.857);
        assert_eq!(threshold_for("band_pinned_over_unpinned", 0.5), 1.0);
        // The affinity-hint pair needs real cores to mean anything; the
        // quant pairs are serial-pinned and stay gated everywhere.
        assert!(!is_gated("band_pinned_over_unpinned", 1));
        assert!(is_gated("band_pinned_over_unpinned", 16));
        assert!(is_gated("quant_rollout_act_over_f32", 1));
        assert!(is_gated("quant_weights_frame_bytes", 1));
    }

    #[test]
    fn multicore_only_keys_are_waived_on_one_core_hosts() {
        // Normally gated like any other key...
        assert!(is_gated("t_b_pack_gate_32x2001x64", 16));
        assert!(is_gated("async_over_lockstep_throughput", 16));
        // ...but a 1-core artifact cannot measure a parallel win, so the
        // pair is reported without failing the gate.
        assert!(!is_gated("t_b_pack_gate_32x2001x64", 1));
        assert!(!is_gated("async_over_lockstep_throughput", 1));
        // The waiver is scoped: serial-baseline kernels stay gated on
        // 1-core hosts, and par_* keys stay ungated everywhere.
        assert!(is_gated("matmul_128x128x128", 1));
        assert!(!is_gated("par_rollout_4x", 16));
    }

    #[test]
    fn host_cores_comes_from_the_config_line() {
        let json = r#"{"config": {"quick": false, "host_cores": 16, "par_threads": [1, 2]}}"#;
        assert_eq!(parse_host_cores(json), 16);
        assert_eq!(parse_host_cores("{}"), 0);
    }
}
