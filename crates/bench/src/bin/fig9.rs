//! Figure 9: normalized smoothed reward over online learning on the log
//! stream processing topology (T = 1500 in the paper).

use dss_apps::log_stream;
use dss_bench::{emit_records, emit_series, RunOptions};
use dss_core::experiment::figure_rewards;
use dss_metrics::{ExperimentRecord, ShapeCheck, TimeSeries};

fn main() {
    let mut opts = RunOptions::from_env();
    // Paper: T = 1500 for this topology (vs 2000 for fig7).
    if opts.preset == "paper" {
        opts.config.online_epochs = 1500;
    }
    let app = log_stream();
    eprintln!(
        "[fig9] online learning on {} (T = {})",
        app.name, opts.config.online_epochs
    );
    let curves = figure_rewards(&app, &opts.cluster(), &opts.config);
    let labelled: Vec<(&str, &TimeSeries)> = curves.iter().map(|(m, s)| (m.label(), s)).collect();
    emit_series(&opts, "fig9", &labelled);

    let ac = &curves[0].1;
    let dqn = &curves[1].1;
    let tail = |s: &TimeSeries| s.tail_mean(s.len() / 10 + 1).unwrap();
    let records = vec![
        ExperimentRecord::new(
            "fig9",
            "final normalized reward, actor-critic",
            None,
            tail(ac),
        ),
        ExperimentRecord::new("fig9", "final normalized reward, dqn", None, tail(dqn)),
    ];
    let checks = vec![ShapeCheck::new(
        "fig9",
        "actor-critic ends above dqn",
        tail(ac) > tail(dqn),
    )];
    emit_records(&opts, "fig9", &records, &checks);
}
