//! Figure 11: normalized smoothed reward over online learning on the word
//! count topology (T = 1500 in the paper).

use dss_apps::word_count;
use dss_bench::{emit_records, emit_series, RunOptions};
use dss_core::experiment::figure_rewards;
use dss_metrics::{ExperimentRecord, ShapeCheck, TimeSeries};

fn main() {
    let mut opts = RunOptions::from_env();
    if opts.preset == "paper" {
        opts.config.online_epochs = 1500;
    }
    let app = word_count();
    eprintln!(
        "[fig11] online learning on {} (T = {})",
        app.name, opts.config.online_epochs
    );
    let curves = figure_rewards(&app, &opts.cluster(), &opts.config);
    let labelled: Vec<(&str, &TimeSeries)> = curves.iter().map(|(m, s)| (m.label(), s)).collect();
    emit_series(&opts, "fig11", &labelled);

    let ac = &curves[0].1;
    let dqn = &curves[1].1;
    let tail = |s: &TimeSeries| s.tail_mean(s.len() / 10 + 1).unwrap();
    let records = vec![
        ExperimentRecord::new(
            "fig11",
            "final normalized reward, actor-critic",
            None,
            tail(ac),
        ),
        ExperimentRecord::new("fig11", "final normalized reward, dqn", None, tail(dqn)),
    ];
    let checks = vec![ShapeCheck::new(
        "fig11",
        "actor-critic ends above dqn",
        tail(ac) > tail(dqn),
    )];
    emit_records(&opts, "fig11", &records, &checks);
}
