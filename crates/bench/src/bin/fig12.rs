//! Figure 12: model-based vs actor-critic under a +50% workload step at
//! minute 20, over 50 minutes, for all three large-scale topologies
//! ((a) continuous queries, (b) log stream processing, (c) word count).

use dss_apps::{continuous_queries, log_stream, word_count, CqScale};
use dss_bench::{emit_records, emit_series, RunOptions};
use dss_core::experiment::{train_method, workload_shift_curve, Method};
use dss_metrics::{ExperimentRecord, ShapeCheck, TimeSeries};

/// Paper restabilized values after the shift: (model-based, actor-critic).
const PAPER_AFTER: [(&str, f64, f64); 3] = [
    ("fig12a", 2.17, 1.76),
    ("fig12b", 8.60, 7.50), // read off the curves; the paper states no exact fig12b/c numbers
    ("fig12c", 2.60, 2.20),
];

fn main() {
    let opts = RunOptions::from_env();
    let total_min = opts.minutes_or(50.0);
    let shift_min = total_min * 0.4; // 20 of 50 minutes
    let apps = [
        continuous_queries(CqScale::Large),
        log_stream(),
        word_count(),
    ];
    let mut records = Vec::new();
    let mut checks = Vec::new();

    for (app, (sub, paper_mb, paper_ac)) in apps.into_iter().zip(PAPER_AFTER) {
        eprintln!("[{sub}] workload shift on {}", app.name);
        let cluster = opts.cluster();
        let mut curves: Vec<(&str, TimeSeries)> = Vec::new();
        let mut after = std::collections::HashMap::new();
        let mut before = std::collections::HashMap::new();
        for method in [Method::ModelBased, Method::ActorCritic] {
            let mut outcome = train_method(method, &app, &cluster, &opts.config);
            let curve = workload_shift_curve(
                &app,
                &cluster,
                &opts.config,
                &mut outcome,
                shift_min,
                total_min,
                30.0,
            );
            // Stable levels before and after the workload change.
            let pre = curve
                .window_mean(shift_min * 60.0 * 0.6, shift_min * 60.0)
                .unwrap_or(f64::NAN);
            let post = curve
                .window_mean(total_min * 60.0 * 0.85, total_min * 60.0 + 1.0)
                .unwrap_or(f64::NAN);
            before.insert(method, pre);
            after.insert(method, post);
            curves.push((method.label(), curve));
        }
        let labelled: Vec<(&str, &TimeSeries)> = curves.iter().map(|(l, s)| (*l, s)).collect();
        emit_series(&opts, sub, &labelled);

        let mb = after[&Method::ModelBased];
        let ac = after[&Method::ActorCritic];
        records.push(ExperimentRecord::new(
            sub,
            "restabilized avg tuple time, model-based (ms)",
            Some(paper_mb),
            mb,
        ));
        records.push(ExperimentRecord::new(
            sub,
            "restabilized avg tuple time, actor-critic (ms)",
            Some(paper_ac),
            ac,
        ));
        checks.push(ShapeCheck::new(
            sub,
            "actor-critic restabilizes below model-based",
            ac < mb,
        ));
        checks.push(ShapeCheck::new(
            sub,
            "latency rises only modestly after +50% workload (actor-critic)",
            ac < before[&Method::ActorCritic] * 1.6,
        ));
    }
    emit_records(&opts, "fig12", &records, &checks);
}
