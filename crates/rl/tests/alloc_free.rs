//! Counting-allocator proof that the rollout act path is allocation-free
//! once warm.
//!
//! `DdpgAgent::select_action_into` is the per-step decision kernel every
//! parallel-collector actor runs; the ROADMAP named it the next
//! rollout-throughput win after the learner path went allocation-free.
//! This test wraps the global allocator in a counter, warms the per-actor
//! [`ActScratch`] (plus the mapper's k-best workspace and the thread-local
//! GEMM pack buffers), then asserts that further decisions perform **zero**
//! heap allocations — so a regression that reintroduces a per-step `Vec`
//! or `clone` fails CI instead of silently taxing every actor step.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dss_rl::{ActScratch, DdpgAgent, DdpgConfig, KBestMapper};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// System allocator wrapper counting every allocation/reallocation while
/// `TRACK` is set (deallocations are free to happen — dropping nothing is
/// the caller's concern, acquiring nothing is what we assert).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static TRACK: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_select_action_into_allocates_nothing() {
    // A 6-thread × 4-machine problem at the default K — representative of
    // the collector's per-actor workload, with a state wide enough that
    // the actor/critic forwards run real GEMM tiles.
    let (n, m) = (6usize, 4usize);
    let state_dim = n * m + 1;
    let agent = DdpgAgent::new(state_dim, n * m, DdpgConfig::default());
    let mut mapper = KBestMapper::new(n, m);
    let mut scratch = ActScratch::default();
    let mut rng = StdRng::seed_from_u64(7);
    let mut state = vec![0.0; state_dim];

    let mut step = |rng: &mut StdRng, state: &mut Vec<dss_rl::Elem>, scratch: &mut ActScratch| {
        for v in state.iter_mut() {
            *v = rng.random_range(0.0..1.0);
        }
        // eps = 1.0 keeps the exploration branch (the one that writes
        // noise through the proto buffer) on the measured path.
        agent.select_action_into(state, &mut mapper, 1.0, rng, scratch)
    };

    // Warm-up: fills the act scratch, the mapper's cost/sort/k-best
    // workspaces, the critic-row matrix and the thread-local pack buffers.
    for _ in 0..32 {
        step(&mut rng, &mut state, &mut scratch);
    }

    ALLOCS.store(0, Ordering::SeqCst);
    TRACK.store(true, Ordering::SeqCst);
    let mut picked = 0usize;
    for _ in 0..200 {
        picked += step(&mut rng, &mut state, &mut scratch);
    }
    TRACK.store(false, Ordering::SeqCst);

    // `picked` keeps the loop observable so nothing is optimized away.
    assert!(picked < 200 * agent.config().k, "sanity: indices in range");
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "warm select_action_into must not allocate (saw {allocs} allocations over 200 steps)"
    );
}
