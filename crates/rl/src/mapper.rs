//! Proto-action → feasible-action mapping (the paper's "optimizer" box in
//! Figure 2).
//!
//! The actor emits `â ∈ R^{N·M}`; an [`ActionMapper`] returns the K nearest
//! feasible assignments. [`KBestMapper`] is the exact MIQP-NN solution
//! (what the paper obtains from Gurobi); [`RelaxMapper`] is the paper's
//! suggested relaxation + rounding fallback for very large cases.

use rand::rngs::StdRng;

use dss_miqp::{k_best_assignments_into, relax_and_round, CostMatrix, KBestWorkspace, Solution};
use dss_nn::{Elem, Matrix, Scalar};

/// A feasible action candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAction<S: Scalar = Elem> {
    /// Machine index per thread.
    pub choice: Vec<usize>,
    /// Flat one-hot encoding (`N·M`), the critic's action input.
    pub onehot: Vec<S>,
    /// Distance-to-proto cost (`‖a − â‖²` up to a per-proto constant).
    pub cost: S,
}

/// Maps a proto-action to its K nearest feasible actions.
///
/// The required method is the buffer-reusing [`ActionMapper::nearest_into`];
/// allocating and batched forms are provided on top of it. Implementations
/// with per-shape setup (cost matrices, sorted column orders) keep it as
/// mapper state so back-to-back queries — in particular the `H` per-batch
/// queries of `DdpgAgent::train_step` via
/// [`ActionMapper::nearest_batch_into`] — amortize it instead of
/// rebuilding per transition.
pub trait ActionMapper<S: Scalar = Elem> {
    /// Writes up to `k` candidates, cheapest (nearest) first, into `out`,
    /// reusing its existing `CandidateAction` allocations (the one-hot and
    /// choice buffers) where possible.
    fn nearest_into(&mut self, proto: &[S], k: usize, out: &mut Vec<CandidateAction<S>>);

    /// Problem shape `(n_threads, n_machines)`.
    fn shape(&self) -> (usize, usize);

    /// Returns up to `k` candidates, cheapest first (allocating form).
    fn nearest(&mut self, proto: &[S], k: usize) -> Vec<CandidateAction<S>> {
        let mut out = Vec::new();
        self.nearest_into(proto, k, &mut out);
        out
    }

    /// Batched K-NN: candidate sets for every row of a proto-action batch
    /// (one proto per matrix row — exactly what a batched actor forward
    /// produces), into reused per-row buffers. Taking the `Matrix`
    /// directly keeps the DDPG hot path allocation-free (a slice-of-rows
    /// signature would force callers to build a `Vec<&[f64]>` per step).
    /// The default is the straightforward per-row loop — correct for any
    /// mapper — which already amortizes whatever per-shape state
    /// `nearest_into` keeps across the whole batch.
    fn nearest_batch_into(
        &mut self,
        protos: &Matrix<S>,
        k: usize,
        out: &mut Vec<Vec<CandidateAction<S>>>,
    ) {
        out.resize_with(protos.rows(), Vec::new);
        for (r, row) in out.iter_mut().enumerate() {
            self.nearest_into(protos.row(r), k, row);
        }
    }

    /// Batched K-NN, allocating form.
    fn nearest_batch(&mut self, protos: &Matrix<S>, k: usize) -> Vec<Vec<CandidateAction<S>>> {
        let mut out = Vec::new();
        self.nearest_batch_into(protos, k, &mut out);
        out
    }
}

/// Writes the one-hot encoding of `choice` into `out` (cleared and
/// zero-filled in place — no allocation once capacity suffices).
fn write_onehot<S: Scalar>(choice: &[usize], m: usize, out: &mut Vec<S>) {
    out.clear();
    out.resize(choice.len() * m, S::ZERO);
    for (i, &j) in choice.iter().enumerate() {
        out[i * m + j] = S::ONE;
    }
}

/// Rewrites `out` from borrowed solver solutions, reusing each slot's
/// one-hot *and* choice buffers (with the solver's own solutions living
/// in mapper-held workspace, a warm `nearest_into` allocates nothing).
fn fill_candidates<S: Scalar>(sols: &[Solution<S>], m: usize, out: &mut Vec<CandidateAction<S>>) {
    out.truncate(sols.len());
    for (i, s) in sols.iter().enumerate() {
        if let Some(slot) = out.get_mut(i) {
            write_onehot(&s.choice, m, &mut slot.onehot);
            slot.cost = s.cost;
            slot.choice.clear();
            slot.choice.extend_from_slice(&s.choice);
        } else {
            let mut onehot = Vec::new();
            write_onehot(&s.choice, m, &mut onehot);
            out.push(CandidateAction {
                onehot,
                cost: s.cost,
                choice: s.choice.clone(),
            });
        }
    }
}

/// Exact K-NN via the k-best enumeration in `dss-miqp`, with the cost
/// matrix, per-row sorted column orders, the enumeration workspace and
/// the solution buffer all kept as reusable state — a warm query
/// allocates nothing.
#[derive(Debug, Clone)]
pub struct KBestMapper<S: Scalar = Elem> {
    n: usize,
    m: usize,
    /// Reused MIQP-NN cost matrix (refilled per query in place).
    costs: CostMatrix<S>,
    /// Reused per-row column orders for the enumeration.
    sorted: Vec<Vec<usize>>,
    /// Reused k-best fold state (partials double buffer + frontier heap).
    ws: KBestWorkspace<S>,
    /// Reused solution buffer the enumeration publishes into.
    sols: Vec<Solution<S>>,
}

impl<S: Scalar> KBestMapper<S> {
    /// A mapper for `n` threads over `m` machines.
    ///
    /// # Panics
    /// Panics on a degenerate shape.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "degenerate action space");
        Self {
            n,
            m,
            costs: CostMatrix::new(n, m, vec![S::ZERO; n * m]),
            sorted: Vec::new(),
            ws: KBestWorkspace::default(),
            sols: Vec::new(),
        }
    }
}

impl<S: Scalar> ActionMapper<S> for KBestMapper<S> {
    fn nearest_into(&mut self, proto: &[S], k: usize, out: &mut Vec<CandidateAction<S>>) {
        self.costs.set_proto_action(proto);
        self.costs.sorted_columns_into(&mut self.sorted);
        k_best_assignments_into(&self.costs, k, &self.sorted, &mut self.ws, &mut self.sols);
        fill_candidates(&self.sols, self.m, out);
    }

    fn shape(&self) -> (usize, usize) {
        (self.n, self.m)
    }
}

/// Approximate K-NN via continuous relaxation + randomized rounding — the
/// paper's fallback for very large instances.
#[derive(Debug)]
pub struct RelaxMapper<S: Scalar = Elem> {
    n: usize,
    m: usize,
    rng: StdRng,
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl<S: Scalar> RelaxMapper<S> {
    /// A mapper for `n` threads over `m` machines; `rng` drives the
    /// randomized rounding.
    ///
    /// # Panics
    /// Panics on a degenerate shape.
    pub fn new(n: usize, m: usize, rng: StdRng) -> Self {
        assert!(n > 0 && m > 0, "degenerate action space");
        Self {
            n,
            m,
            rng,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S: Scalar> ActionMapper<S> for RelaxMapper<S> {
    fn nearest_into(&mut self, proto: &[S], k: usize, out: &mut Vec<CandidateAction<S>>) {
        let sols = relax_and_round(proto, self.n, self.m, k, &mut self.rng);
        fill_candidates(&sols, self.m, out);
    }

    fn shape(&self) -> (usize, usize) {
        (self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kbest_candidates_are_feasible_and_sorted() {
        let mut mapper: KBestMapper<f64> = KBestMapper::new(3, 2);
        let proto = vec![0.9, 0.1, 0.4, 0.6, 0.5, 0.5];
        let c = mapper.nearest(&proto, 4);
        assert_eq!(c.len(), 4);
        assert!(c.windows(2).all(|w| w[0].cost <= w[1].cost + 1e-12));
        for cand in &c {
            assert_eq!(cand.choice.len(), 3);
            assert_eq!(cand.onehot.iter().sum::<f64>(), 3.0);
            for (i, &j) in cand.choice.iter().enumerate() {
                assert_eq!(cand.onehot[i * 2 + j], 1.0);
            }
        }
        // Nearest = row-wise argmax of the proto.
        assert_eq!(c[0].choice, vec![0, 1, 0]);
    }

    #[test]
    fn relax_mapper_first_is_argmax() {
        let mut mapper = RelaxMapper::new(2, 3, StdRng::seed_from_u64(1));
        let proto = vec![0.1, 0.8, 0.1, 0.2, 0.2, 0.6];
        let c = mapper.nearest(&proto, 3);
        assert!(!c.is_empty());
        assert_eq!(c[0].choice, vec![1, 2]);
    }

    #[test]
    fn nearest_into_reuses_buffers_and_matches_nearest() {
        let mut mapper = KBestMapper::new(3, 2);
        let proto_a = vec![0.9, 0.1, 0.4, 0.6, 0.5, 0.5];
        let proto_b = vec![0.1, 0.9, 0.7, 0.3, 0.2, 0.8];
        let mut out = Vec::new();
        mapper.nearest_into(&proto_a, 4, &mut out);
        let onehot_ptrs: Vec<*const f64> = out.iter().map(|c| c.onehot.as_ptr()).collect();
        mapper.nearest_into(&proto_b, 4, &mut out);
        // Same answer as a fresh mapper's allocating path...
        assert_eq!(out, KBestMapper::<f64>::new(3, 2).nearest(&proto_b, 4));
        // ...through the same one-hot allocations.
        for (cand, ptr) in out.iter().zip(&onehot_ptrs) {
            assert_eq!(cand.onehot.as_ptr(), *ptr, "one-hot buffer reallocated");
        }
    }

    #[test]
    fn batch_matches_per_call_for_both_mappers() {
        let protos = Matrix::from_fn(5, 6, |r, c| ((r * 6 + c) * 7 % 13) as f64 / 13.0);
        let batch = KBestMapper::<f64>::new(3, 2).nearest_batch(&protos, 3);
        assert_eq!(batch.len(), 5);
        for (r, row) in batch.iter().enumerate() {
            assert_eq!(
                row,
                &KBestMapper::<f64>::new(3, 2).nearest(protos.row(r), 3)
            );
        }
        // RelaxMapper's rounding consumes RNG stream, so per-call parity
        // needs identically seeded mappers.
        let batch = RelaxMapper::new(3, 2, StdRng::seed_from_u64(5)).nearest_batch(&protos, 3);
        let mut fresh = RelaxMapper::new(3, 2, StdRng::seed_from_u64(5));
        for (r, row) in batch.iter().enumerate() {
            assert_eq!(row, &fresh.nearest(protos.row(r), 3));
        }
    }

    #[test]
    fn mappers_agree_on_nearest() {
        let proto: Vec<f64> = (0..12).map(|i| ((i * 7) % 12) as f64 / 12.0).collect();
        let mut exact = KBestMapper::new(4, 3);
        let mut approx = RelaxMapper::new(4, 3, StdRng::seed_from_u64(2));
        let a = exact.nearest(&proto, 1);
        let b = approx.nearest(&proto, 1);
        assert_eq!(a[0].choice, b[0].choice);
        assert_eq!(exact.shape(), (4, 3));
    }
}
