//! Proto-action → feasible-action mapping (the paper's "optimizer" box in
//! Figure 2).
//!
//! The actor emits `â ∈ R^{N·M}`; an [`ActionMapper`] returns the K nearest
//! feasible assignments. [`KBestMapper`] is the exact MIQP-NN solution
//! (what the paper obtains from Gurobi); [`RelaxMapper`] is the paper's
//! suggested relaxation + rounding fallback for very large cases.

use rand::rngs::StdRng;

use dss_miqp::{k_best_assignments_into, relax_and_round, CostMatrix, KBestWorkspace, Solution};
use dss_nn::{Elem, Matrix, Scalar};

/// A feasible action candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAction<S: Scalar = Elem> {
    /// Machine index per thread.
    pub choice: Vec<usize>,
    /// Flat one-hot encoding (`N·M`), the critic's action input.
    pub onehot: Vec<S>,
    /// Distance-to-proto cost (`‖a − â‖²` up to a per-proto constant).
    pub cost: S,
}

/// Maps a proto-action to its K nearest feasible actions.
///
/// The required method is the buffer-reusing [`ActionMapper::nearest_into`];
/// allocating and batched forms are provided on top of it. Implementations
/// with per-shape setup (cost matrices, sorted column orders) keep it as
/// mapper state so back-to-back queries — in particular the `H` per-batch
/// queries of `DdpgAgent::train_step` via
/// [`ActionMapper::nearest_batch_into`] — amortize it instead of
/// rebuilding per transition.
pub trait ActionMapper<S: Scalar = Elem> {
    /// Writes up to `k` candidates, cheapest (nearest) first, into `out`,
    /// reusing its existing `CandidateAction` allocations (the one-hot and
    /// choice buffers) where possible.
    fn nearest_into(&mut self, proto: &[S], k: usize, out: &mut Vec<CandidateAction<S>>);

    /// Problem shape `(n_threads, n_machines)`.
    fn shape(&self) -> (usize, usize);

    /// Returns up to `k` candidates, cheapest first (allocating form).
    fn nearest(&mut self, proto: &[S], k: usize) -> Vec<CandidateAction<S>> {
        let mut out = Vec::new();
        self.nearest_into(proto, k, &mut out);
        out
    }

    /// Batched K-NN: candidate sets for every row of a proto-action batch
    /// (one proto per matrix row — exactly what a batched actor forward
    /// produces), into reused per-row buffers. Taking the `Matrix`
    /// directly keeps the DDPG hot path allocation-free (a slice-of-rows
    /// signature would force callers to build a `Vec<&[f64]>` per step).
    /// The default is the straightforward per-row loop — correct for any
    /// mapper — which already amortizes whatever per-shape state
    /// `nearest_into` keeps across the whole batch.
    fn nearest_batch_into(
        &mut self,
        protos: &Matrix<S>,
        k: usize,
        out: &mut Vec<Vec<CandidateAction<S>>>,
    ) {
        out.resize_with(protos.rows(), Vec::new);
        for (r, row) in out.iter_mut().enumerate() {
            self.nearest_into(protos.row(r), k, row);
        }
    }

    /// Batched K-NN, allocating form.
    fn nearest_batch(&mut self, protos: &Matrix<S>, k: usize) -> Vec<Vec<CandidateAction<S>>> {
        let mut out = Vec::new();
        self.nearest_batch_into(protos, k, &mut out);
        out
    }
}

/// Writes the one-hot encoding of `choice` into `out` (cleared and
/// zero-filled in place — no allocation once capacity suffices).
fn write_onehot<S: Scalar>(choice: &[usize], m: usize, out: &mut Vec<S>) {
    out.clear();
    out.resize(choice.len() * m, S::ZERO);
    for (i, &j) in choice.iter().enumerate() {
        out[i * m + j] = S::ONE;
    }
}

/// Rewrites `out` from borrowed solver solutions, reusing each slot's
/// one-hot *and* choice buffers (with the solver's own solutions living
/// in mapper-held workspace, a warm `nearest_into` allocates nothing).
fn fill_candidates<S: Scalar>(sols: &[Solution<S>], m: usize, out: &mut Vec<CandidateAction<S>>) {
    out.truncate(sols.len());
    for (i, s) in sols.iter().enumerate() {
        if let Some(slot) = out.get_mut(i) {
            write_onehot(&s.choice, m, &mut slot.onehot);
            slot.cost = s.cost;
            slot.choice.clear();
            slot.choice.extend_from_slice(&s.choice);
        } else {
            let mut onehot = Vec::new();
            write_onehot(&s.choice, m, &mut onehot);
            out.push(CandidateAction {
                onehot,
                cost: s.cost,
                choice: s.choice.clone(),
            });
        }
    }
}

/// Exact K-NN via the k-best enumeration in `dss-miqp`, with the cost
/// matrix, per-row sorted column orders, the enumeration workspace and
/// the solution buffer all kept as reusable state — a warm query
/// allocates nothing.
#[derive(Debug, Clone)]
pub struct KBestMapper<S: Scalar = Elem> {
    n: usize,
    m: usize,
    /// Reused MIQP-NN cost matrix (refilled per query in place).
    costs: CostMatrix<S>,
    /// Reused per-row column orders for the enumeration.
    sorted: Vec<Vec<usize>>,
    /// Reused k-best fold state (partials double buffer + frontier heap).
    ws: KBestWorkspace<S>,
    /// Reused solution buffer the enumeration publishes into.
    sols: Vec<Solution<S>>,
}

impl<S: Scalar> KBestMapper<S> {
    /// A mapper for `n` threads over `m` machines.
    ///
    /// # Panics
    /// Panics on a degenerate shape.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "degenerate action space");
        Self {
            n,
            m,
            costs: CostMatrix::new(n, m, vec![S::ZERO; n * m]),
            sorted: Vec::new(),
            ws: KBestWorkspace::default(),
            sols: Vec::new(),
        }
    }
}

impl<S: Scalar> ActionMapper<S> for KBestMapper<S> {
    fn nearest_into(&mut self, proto: &[S], k: usize, out: &mut Vec<CandidateAction<S>>) {
        self.costs.set_proto_action(proto);
        self.costs.sorted_columns_into(&mut self.sorted);
        k_best_assignments_into(&self.costs, k, &self.sorted, &mut self.ws, &mut self.sols);
        fill_candidates(&self.sols, self.m, out);
    }

    fn shape(&self) -> (usize, usize) {
        (self.n, self.m)
    }
}

/// Two-level (group-then-machine) K-NN for fleet-scale clusters.
///
/// Machines are partitioned into `G` groups (by core class /
/// `ClusterSpec` layout — see `dss_sim::ClusterSpec::machine_groups` — or
/// uniformly via [`HierarchicalMapper::uniform`]). A query:
///
/// 1. reduces the `N × M` cost matrix to `N × G` group costs
///    `gc_i(g) = min_{j ∈ g} c_i(j)`, recording each row's argbest machine
///    per group (one `O(N·M)` pass);
/// 2. runs the exact k-best enumeration over the `G`-column matrix
///    (`O(N · K log K)` after an `O(N · G log G)` sort — `G ≪ M`);
/// 3. refines each winning group assignment to machines via the recorded
///    argbests. Because `gc_i(g)` *is* the cost of the refined machine, a
///    group solution's cost equals the true flat cost of its refinement —
///    in particular the rank-1 candidate is always exactly the flat
///    mapper's rank-1 (row-wise argmin), and with `G = M` (singleton
///    groups in index order) the entire candidate list is bit-identical
///    to [`KBestMapper`];
/// 4. optionally truncates to the `prune` cheapest candidates (top-P
///    pruning), so the batched critic argmax downstream scores `H·P`
///    instead of `H·K` candidates.
///
/// All intermediate state (both cost matrices, argbest table, sorted
/// orders, fold workspace, solutions) is mapper-held: warm queries
/// allocate nothing.
#[derive(Debug, Clone)]
pub struct HierarchicalMapper<S: Scalar = Elem> {
    n: usize,
    m: usize,
    groups: Vec<Vec<usize>>,
    prune: usize,
    /// Full `n × m` MIQP-NN costs (refilled per query in place).
    costs: CostMatrix<S>,
    /// Group-reduced `n × G` costs.
    gcosts: CostMatrix<S>,
    /// `argbest[i * G + g]` = cheapest machine of group `g` for row `i`.
    argbest: Vec<usize>,
    /// Reused per-row column orders over the group matrix.
    sorted: Vec<Vec<usize>>,
    ws: KBestWorkspace<S>,
    sols: Vec<Solution<S>>,
}

impl<S: Scalar> HierarchicalMapper<S> {
    /// A mapper for `n` threads over `m` machines partitioned into
    /// `groups` (each machine in exactly one group). `prune == 0` disables
    /// top-P truncation.
    ///
    /// # Panics
    /// Panics on a degenerate shape or when `groups` is not a partition of
    /// `0..m` into non-empty groups.
    pub fn new(n: usize, m: usize, groups: Vec<Vec<usize>>, prune: usize) -> Self {
        assert!(n > 0 && m > 0, "degenerate action space");
        assert!(!groups.is_empty(), "need at least one machine group");
        let mut seen = vec![false; m];
        for g in &groups {
            assert!(!g.is_empty(), "empty machine group");
            for &j in g {
                assert!(j < m, "machine {j} out of range");
                assert!(
                    !std::mem::replace(&mut seen[j], true),
                    "machine {j} in two groups"
                );
            }
        }
        assert!(
            seen.into_iter().all(|s| s),
            "groups must cover every machine"
        );
        let n_groups = groups.len();
        Self {
            n,
            m,
            prune,
            costs: CostMatrix::new(n, m, vec![S::ZERO; n * m]),
            gcosts: CostMatrix::new(n, n_groups, vec![S::ZERO; n * n_groups]),
            argbest: vec![0; n * n_groups],
            sorted: Vec::new(),
            ws: KBestWorkspace::default(),
            sols: Vec::new(),
            groups,
        }
    }

    /// Uniform grouping: `g` contiguous near-equal chunks of `0..m`
    /// (`g` is clamped to `m`). The cluster-layout-agnostic default used
    /// when only the knob values are known.
    pub fn uniform(n: usize, m: usize, g: usize, prune: usize) -> Self {
        assert!(g > 0, "need at least one group");
        let g = g.min(m);
        let (base, rem) = (m / g, m % g);
        let mut groups = Vec::with_capacity(g);
        let mut start = 0;
        for gi in 0..g {
            let len = base + usize::from(gi < rem);
            groups.push((start..start + len).collect());
            start += len;
        }
        Self::new(n, m, groups, prune)
    }

    /// The machine grouping in use.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }
}

impl<S: Scalar> ActionMapper<S> for HierarchicalMapper<S> {
    fn nearest_into(&mut self, proto: &[S], k: usize, out: &mut Vec<CandidateAction<S>>) {
        self.costs.set_proto_action(proto);
        let n_groups = self.groups.len();
        let (costs, groups, argbest) = (&self.costs, &self.groups, &mut self.argbest);
        self.gcosts.fill_with(|i, gi| {
            // Strict `<` keeps the lowest machine index on ties, matching
            // the flat enumeration's deterministic tie-break.
            let mut best_j = groups[gi][0];
            let mut best = costs.cost(i, best_j);
            for &j in &groups[gi][1..] {
                let c = costs.cost(i, j);
                if c < best {
                    best = c;
                    best_j = j;
                }
            }
            argbest[i * n_groups + gi] = best_j;
            best
        });
        self.gcosts.sorted_columns_into(&mut self.sorted);
        k_best_assignments_into(&self.gcosts, k, &self.sorted, &mut self.ws, &mut self.sols);
        // Refine group choices to machines in place (write_solution fully
        // rewrites each slot next query, so this is safe) and apply top-P.
        for sol in &mut self.sols {
            for (i, c) in sol.choice.iter_mut().enumerate() {
                *c = argbest[i * n_groups + *c];
            }
        }
        if self.prune > 0 {
            self.sols.truncate(self.prune);
        }
        fill_candidates(&self.sols, self.m, out);
    }

    fn shape(&self) -> (usize, usize) {
        (self.n, self.m)
    }
}

/// A mapper that picks flat or hierarchical K-NN from config knobs —
/// the single type training stacks hold so `mapper_groups = 0` keeps the
/// paper-exact flat path and a fleet run flips to two-level mapping
/// without code changes.
#[derive(Debug, Clone)]
pub enum ScalableMapper<S: Scalar = Elem> {
    /// Exact flat enumeration ([`KBestMapper`]).
    Flat(KBestMapper<S>),
    /// Two-level group-then-machine mapping ([`HierarchicalMapper`]).
    Hier(HierarchicalMapper<S>),
}

impl<S: Scalar> ScalableMapper<S> {
    /// Flat when `groups == 0`, otherwise hierarchical with `groups`
    /// uniform machine groups and top-`prune` truncation (`prune == 0`
    /// disables truncation).
    pub fn from_knobs(n: usize, m: usize, groups: usize, prune: usize) -> Self {
        if groups == 0 {
            Self::Flat(KBestMapper::new(n, m))
        } else {
            Self::Hier(HierarchicalMapper::uniform(n, m, groups, prune))
        }
    }
}

impl<S: Scalar> ActionMapper<S> for ScalableMapper<S> {
    fn nearest_into(&mut self, proto: &[S], k: usize, out: &mut Vec<CandidateAction<S>>) {
        match self {
            Self::Flat(m) => m.nearest_into(proto, k, out),
            Self::Hier(m) => m.nearest_into(proto, k, out),
        }
    }

    fn shape(&self) -> (usize, usize) {
        match self {
            Self::Flat(m) => m.shape(),
            Self::Hier(m) => m.shape(),
        }
    }
}

/// Approximate K-NN via continuous relaxation + randomized rounding — the
/// paper's fallback for very large instances.
#[derive(Debug)]
pub struct RelaxMapper<S: Scalar = Elem> {
    n: usize,
    m: usize,
    rng: StdRng,
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl<S: Scalar> RelaxMapper<S> {
    /// A mapper for `n` threads over `m` machines; `rng` drives the
    /// randomized rounding.
    ///
    /// # Panics
    /// Panics on a degenerate shape.
    pub fn new(n: usize, m: usize, rng: StdRng) -> Self {
        assert!(n > 0 && m > 0, "degenerate action space");
        Self {
            n,
            m,
            rng,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S: Scalar> ActionMapper<S> for RelaxMapper<S> {
    fn nearest_into(&mut self, proto: &[S], k: usize, out: &mut Vec<CandidateAction<S>>) {
        let sols = relax_and_round(proto, self.n, self.m, k, &mut self.rng);
        fill_candidates(&sols, self.m, out);
    }

    fn shape(&self) -> (usize, usize) {
        (self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kbest_candidates_are_feasible_and_sorted() {
        let mut mapper: KBestMapper<f64> = KBestMapper::new(3, 2);
        let proto = vec![0.9, 0.1, 0.4, 0.6, 0.5, 0.5];
        let c = mapper.nearest(&proto, 4);
        assert_eq!(c.len(), 4);
        assert!(c.windows(2).all(|w| w[0].cost <= w[1].cost + 1e-12));
        for cand in &c {
            assert_eq!(cand.choice.len(), 3);
            assert_eq!(cand.onehot.iter().sum::<f64>(), 3.0);
            for (i, &j) in cand.choice.iter().enumerate() {
                assert_eq!(cand.onehot[i * 2 + j], 1.0);
            }
        }
        // Nearest = row-wise argmax of the proto.
        assert_eq!(c[0].choice, vec![0, 1, 0]);
    }

    #[test]
    fn relax_mapper_first_is_argmax() {
        let mut mapper = RelaxMapper::new(2, 3, StdRng::seed_from_u64(1));
        let proto = vec![0.1, 0.8, 0.1, 0.2, 0.2, 0.6];
        let c = mapper.nearest(&proto, 3);
        assert!(!c.is_empty());
        assert_eq!(c[0].choice, vec![1, 2]);
    }

    #[test]
    fn nearest_into_reuses_buffers_and_matches_nearest() {
        let mut mapper = KBestMapper::new(3, 2);
        let proto_a = vec![0.9, 0.1, 0.4, 0.6, 0.5, 0.5];
        let proto_b = vec![0.1, 0.9, 0.7, 0.3, 0.2, 0.8];
        let mut out = Vec::new();
        mapper.nearest_into(&proto_a, 4, &mut out);
        let onehot_ptrs: Vec<*const f64> = out.iter().map(|c| c.onehot.as_ptr()).collect();
        mapper.nearest_into(&proto_b, 4, &mut out);
        // Same answer as a fresh mapper's allocating path...
        assert_eq!(out, KBestMapper::<f64>::new(3, 2).nearest(&proto_b, 4));
        // ...through the same one-hot allocations.
        for (cand, ptr) in out.iter().zip(&onehot_ptrs) {
            assert_eq!(cand.onehot.as_ptr(), *ptr, "one-hot buffer reallocated");
        }
    }

    #[test]
    fn batch_matches_per_call_for_both_mappers() {
        let protos = Matrix::from_fn(5, 6, |r, c| ((r * 6 + c) * 7 % 13) as f64 / 13.0);
        let batch = KBestMapper::<f64>::new(3, 2).nearest_batch(&protos, 3);
        assert_eq!(batch.len(), 5);
        for (r, row) in batch.iter().enumerate() {
            assert_eq!(
                row,
                &KBestMapper::<f64>::new(3, 2).nearest(protos.row(r), 3)
            );
        }
        // RelaxMapper's rounding consumes RNG stream, so per-call parity
        // needs identically seeded mappers.
        let batch = RelaxMapper::new(3, 2, StdRng::seed_from_u64(5)).nearest_batch(&protos, 3);
        let mut fresh = RelaxMapper::new(3, 2, StdRng::seed_from_u64(5));
        for (r, row) in batch.iter().enumerate() {
            assert_eq!(row, &fresh.nearest(protos.row(r), 3));
        }
    }

    #[test]
    fn mappers_agree_on_nearest() {
        let proto: Vec<f64> = (0..12).map(|i| ((i * 7) % 12) as f64 / 12.0).collect();
        let mut exact = KBestMapper::new(4, 3);
        let mut approx = RelaxMapper::new(4, 3, StdRng::seed_from_u64(2));
        let a = exact.nearest(&proto, 1);
        let b = approx.nearest(&proto, 1);
        assert_eq!(a[0].choice, b[0].choice);
        assert_eq!(exact.shape(), (4, 3));
    }

    #[test]
    fn hierarchical_singleton_groups_match_flat_exactly() {
        // G = M with one machine per group in index order degenerates to
        // the flat enumeration: identical candidate lists, bit for bit.
        let proto: Vec<f64> = (0..24).map(|i| ((i * 5) % 17) as f64 / 17.0).collect();
        let mut flat = KBestMapper::<f64>::new(4, 6);
        let mut hier = HierarchicalMapper::<f64>::uniform(4, 6, 6, 0);
        assert_eq!(hier.groups().len(), 6);
        assert_eq!(hier.nearest(&proto, 8), flat.nearest(&proto, 8));
    }

    #[test]
    fn hierarchical_rank_one_equals_flat_rank_one() {
        // The group-min of per-group minima is the row-wise minimum, so
        // rank 1 is always the flat rank 1 regardless of grouping.
        let proto: Vec<f64> = (0..40).map(|i| ((i * 11) % 23) as f64 / 23.0).collect();
        let mut flat = KBestMapper::<f64>::new(5, 8);
        for g in [1, 2, 3, 4] {
            let mut hier = HierarchicalMapper::<f64>::uniform(5, 8, g, 0);
            let h = hier.nearest(&proto, 3);
            let f = flat.nearest(&proto, 3);
            assert_eq!(h[0].choice, f[0].choice, "g = {g}");
            assert!((h[0].cost - f[0].cost).abs() < 1e-12);
        }
    }

    #[test]
    fn hierarchical_prunes_to_top_p() {
        let proto: Vec<f64> = (0..18).map(|i| ((i * 7) % 13) as f64 / 13.0).collect();
        let mut hier = HierarchicalMapper::<f64>::uniform(3, 6, 3, 2);
        let c = hier.nearest(&proto, 8);
        assert_eq!(c.len(), 2, "top-P truncation");
        assert!(c[0].cost <= c[1].cost);
        // Same query unpruned: the pruned list is its prefix.
        let full = HierarchicalMapper::<f64>::uniform(3, 6, 3, 0).nearest(&proto, 8);
        assert_eq!(c[..], full[..2]);
    }

    #[test]
    fn hierarchical_warm_queries_reuse_buffers() {
        let proto_a: Vec<f64> = (0..18).map(|i| ((i * 7) % 13) as f64 / 13.0).collect();
        let proto_b: Vec<f64> = (0..18).map(|i| ((i * 5) % 11) as f64 / 11.0).collect();
        let mut hier = HierarchicalMapper::<f64>::uniform(3, 6, 2, 0);
        let mut out = Vec::new();
        hier.nearest_into(&proto_a, 4, &mut out);
        let onehot_ptrs: Vec<*const f64> = out.iter().map(|c| c.onehot.as_ptr()).collect();
        hier.nearest_into(&proto_b, 4, &mut out);
        assert_eq!(
            out,
            HierarchicalMapper::<f64>::uniform(3, 6, 2, 0).nearest(&proto_b, 4)
        );
        for (cand, ptr) in out.iter().zip(&onehot_ptrs) {
            assert_eq!(cand.onehot.as_ptr(), *ptr, "one-hot buffer reallocated");
        }
    }

    #[test]
    fn scalable_mapper_picks_backend_from_knobs() {
        let proto: Vec<f64> = (0..12).map(|i| ((i * 7) % 12) as f64 / 12.0).collect();
        let mut flat = ScalableMapper::<f64>::from_knobs(4, 3, 0, 0);
        let mut hier = ScalableMapper::<f64>::from_knobs(4, 3, 2, 2);
        assert!(matches!(flat, ScalableMapper::Flat(_)));
        assert!(matches!(hier, ScalableMapper::Hier(_)));
        assert_eq!(flat.shape(), (4, 3));
        assert_eq!(hier.shape(), (4, 3));
        assert_eq!(
            flat.nearest(&proto, 2),
            KBestMapper::<f64>::new(4, 3).nearest(&proto, 2)
        );
        assert_eq!(hier.nearest(&proto, 5).len(), 2, "prune applies");
    }

    #[test]
    #[should_panic(expected = "in two groups")]
    fn hierarchical_rejects_overlapping_groups() {
        let _ = HierarchicalMapper::<f64>::new(2, 3, vec![vec![0, 1], vec![1, 2]], 0);
    }

    #[test]
    #[should_panic(expected = "cover every machine")]
    fn hierarchical_rejects_partial_cover() {
        let _ = HierarchicalMapper::<f64>::new(2, 3, vec![vec![0], vec![2]], 0);
    }

    mod hierarchical_properties {
        use super::*;
        use proptest::prelude::*;

        /// A random shape, proto-action and group count with N ≤ 6, M ≤ 8.
        fn small_instance() -> impl Strategy<Value = (usize, usize, usize, usize, Vec<f64>)> {
            (1usize..=6, 1usize..=8).prop_flat_map(|(n, m)| {
                (
                    Just(n),
                    Just(m),
                    1usize..=m,
                    0usize..=4,
                    prop::collection::vec(-1.0..2.0f64, n * m),
                )
            })
        }

        proptest! {
            /// The hierarchical mapper always returns feasible candidates
            /// whose stated cost is the true flat cost of the choice, and
            /// its best candidate costs exactly the flat optimum (the
            /// group decomposition is lossless at rank 1).
            #[test]
            fn feasible_and_rank_one_exact((n, m, g, prune, proto) in small_instance()) {
                let mut hier = HierarchicalMapper::<f64>::uniform(n, m, g, prune);
                let mut flat = KBestMapper::<f64>::new(n, m);
                let h = hier.nearest(&proto, 6);
                let f = flat.nearest(&proto, 6);
                prop_assert!(!h.is_empty());
                if prune > 0 {
                    prop_assert!(h.len() <= prune);
                }
                let costs = dss_miqp::CostMatrix::from_proto_action(&proto, n, m);
                for cand in &h {
                    prop_assert_eq!(cand.choice.len(), n);
                    for &j in &cand.choice {
                        prop_assert!(j < m, "machine out of range");
                    }
                    // Stated cost == true flat cost of the refined choice.
                    let true_cost = costs.total(&cand.choice);
                    prop_assert!((cand.cost - true_cost).abs() < 1e-9);
                    // Bounded suboptimality: no candidate can beat the flat
                    // optimum.
                    prop_assert!(cand.cost >= f[0].cost - 1e-9);
                }
                // Lossless at rank 1.
                prop_assert!((h[0].cost - f[0].cost).abs() < 1e-9,
                    "hier best {} vs flat best {}", h[0].cost, f[0].cost);
                prop_assert!(h.windows(2).all(|w| w[0].cost <= w[1].cost + 1e-12));
            }

            /// With one machine per group the decomposition is the identity:
            /// candidate lists match the flat mapper bit for bit.
            #[test]
            fn singleton_groups_are_flat((n, m, _g, _p, proto) in small_instance()) {
                let mut hier = HierarchicalMapper::<f64>::uniform(n, m, m, 0);
                let mut flat = KBestMapper::<f64>::new(n, m);
                prop_assert_eq!(hier.nearest(&proto, 5), flat.nearest(&proto, 5));
            }
        }
    }
}
