//! Proto-action → feasible-action mapping (the paper's "optimizer" box in
//! Figure 2).
//!
//! The actor emits `â ∈ R^{N·M}`; an [`ActionMapper`] returns the K nearest
//! feasible assignments. [`KBestMapper`] is the exact MIQP-NN solution
//! (what the paper obtains from Gurobi); [`RelaxMapper`] is the paper's
//! suggested relaxation + rounding fallback for very large cases.

use rand::rngs::StdRng;

use dss_miqp::{k_best_assignments, relax_and_round, CostMatrix};

/// A feasible action candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAction {
    /// Machine index per thread.
    pub choice: Vec<usize>,
    /// Flat one-hot encoding (`N·M`), the critic's action input.
    pub onehot: Vec<f64>,
    /// Distance-to-proto cost (`‖a − â‖²` up to a per-proto constant).
    pub cost: f64,
}

/// Maps a proto-action to its K nearest feasible actions.
pub trait ActionMapper {
    /// Returns up to `k` candidates, cheapest (nearest) first.
    fn nearest(&mut self, proto: &[f64], k: usize) -> Vec<CandidateAction>;

    /// Problem shape `(n_threads, n_machines)`.
    fn shape(&self) -> (usize, usize);
}

fn to_onehot(choice: &[usize], m: usize) -> Vec<f64> {
    let mut x = vec![0.0; choice.len() * m];
    for (i, &j) in choice.iter().enumerate() {
        x[i * m + j] = 1.0;
    }
    x
}

/// Exact K-NN via the k-best enumeration in `dss-miqp`.
#[derive(Debug, Clone)]
pub struct KBestMapper {
    n: usize,
    m: usize,
}

impl KBestMapper {
    /// A mapper for `n` threads over `m` machines.
    ///
    /// # Panics
    /// Panics on a degenerate shape.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "degenerate action space");
        Self { n, m }
    }
}

impl ActionMapper for KBestMapper {
    fn nearest(&mut self, proto: &[f64], k: usize) -> Vec<CandidateAction> {
        let costs = CostMatrix::from_proto_action(proto, self.n, self.m);
        k_best_assignments(&costs, k)
            .into_iter()
            .map(|s| CandidateAction {
                onehot: to_onehot(&s.choice, self.m),
                cost: s.cost,
                choice: s.choice,
            })
            .collect()
    }

    fn shape(&self) -> (usize, usize) {
        (self.n, self.m)
    }
}

/// Approximate K-NN via continuous relaxation + randomized rounding — the
/// paper's fallback for very large instances.
#[derive(Debug)]
pub struct RelaxMapper {
    n: usize,
    m: usize,
    rng: StdRng,
}

impl RelaxMapper {
    /// A mapper for `n` threads over `m` machines; `rng` drives the
    /// randomized rounding.
    ///
    /// # Panics
    /// Panics on a degenerate shape.
    pub fn new(n: usize, m: usize, rng: StdRng) -> Self {
        assert!(n > 0 && m > 0, "degenerate action space");
        Self { n, m, rng }
    }
}

impl ActionMapper for RelaxMapper {
    fn nearest(&mut self, proto: &[f64], k: usize) -> Vec<CandidateAction> {
        relax_and_round(proto, self.n, self.m, k, &mut self.rng)
            .into_iter()
            .map(|s| CandidateAction {
                onehot: to_onehot(&s.choice, self.m),
                cost: s.cost,
                choice: s.choice,
            })
            .collect()
    }

    fn shape(&self) -> (usize, usize) {
        (self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kbest_candidates_are_feasible_and_sorted() {
        let mut mapper = KBestMapper::new(3, 2);
        let proto = vec![0.9, 0.1, 0.4, 0.6, 0.5, 0.5];
        let c = mapper.nearest(&proto, 4);
        assert_eq!(c.len(), 4);
        assert!(c.windows(2).all(|w| w[0].cost <= w[1].cost + 1e-12));
        for cand in &c {
            assert_eq!(cand.choice.len(), 3);
            assert_eq!(cand.onehot.iter().sum::<f64>(), 3.0);
            for (i, &j) in cand.choice.iter().enumerate() {
                assert_eq!(cand.onehot[i * 2 + j], 1.0);
            }
        }
        // Nearest = row-wise argmax of the proto.
        assert_eq!(c[0].choice, vec![0, 1, 0]);
    }

    #[test]
    fn relax_mapper_first_is_argmax() {
        let mut mapper = RelaxMapper::new(2, 3, StdRng::seed_from_u64(1));
        let proto = vec![0.1, 0.8, 0.1, 0.2, 0.2, 0.6];
        let c = mapper.nearest(&proto, 3);
        assert!(!c.is_empty());
        assert_eq!(c[0].choice, vec![1, 2]);
    }

    #[test]
    fn mappers_agree_on_nearest() {
        let proto: Vec<f64> = (0..12).map(|i| ((i * 7) % 12) as f64 / 12.0).collect();
        let mut exact = KBestMapper::new(4, 3);
        let mut approx = RelaxMapper::new(4, 3, StdRng::seed_from_u64(2));
        let a = exact.nearest(&proto, 1);
        let b = approx.nearest(&proto, 1);
        assert_eq!(a[0].choice, b[0].choice);
        assert_eq!(exact.shape(), (4, 3));
    }
}
