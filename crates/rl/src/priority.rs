//! Prioritized experience replay (proportional variant).
//!
//! The paper samples its replay buffer uniformly (§2.3, §3.2.1). This
//! module provides the standard proportional-prioritization alternative —
//! `P(i) ∝ p_i^α` with importance-sampling weights `w_i = (N·P(i))^{-β}` —
//! used by the `replay-priority` ablation bench to quantify how much the
//! choice matters for this control problem.
//!
//! Priorities live in a **sum tree**: a complete binary tree whose leaves
//! hold `p_i^α` and whose internal nodes hold subtree sums, giving `O(log
//! n)` sampling by prefix-sum descent and `O(log n)` priority updates.

use dss_nn::{Elem, Scalar};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::transition::Transition;

/// A fixed-capacity sum tree over `f64` priorities.
#[derive(Debug, Clone)]
pub struct SumTree {
    /// Node storage: `nodes[0]` is the root; leaf `i` lives at
    /// `leaf_base + i`.
    nodes: Vec<f64>,
    leaf_base: usize,
    capacity: usize,
}

impl SumTree {
    /// Tree with `capacity` leaves, all zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sum tree needs at least one leaf");
        let leaf_base = capacity.next_power_of_two() - 1;
        SumTree {
            nodes: vec![0.0; leaf_base + capacity.next_power_of_two()],
            leaf_base,
            capacity,
        }
    }

    /// Number of leaves.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total priority mass (the root).
    pub fn total(&self) -> f64 {
        self.nodes[0]
    }

    /// Current priority of leaf `i`.
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.capacity, "leaf index out of range");
        self.nodes[self.leaf_base + i]
    }

    /// Set leaf `i` to `priority`, updating ancestor sums.
    pub fn set(&mut self, i: usize, priority: f64) {
        assert!(i < self.capacity, "leaf index out of range");
        assert!(priority >= 0.0 && priority.is_finite(), "bad priority");
        let mut node = self.leaf_base + i;
        let delta = priority - self.nodes[node];
        self.nodes[node] = priority;
        while node > 0 {
            node = (node - 1) / 2;
            self.nodes[node] += delta;
        }
    }

    /// Find the leaf whose cumulative-priority interval contains `prefix`
    /// (`0 <= prefix < total`). Ties break toward the left leaf.
    pub fn find(&self, mut prefix: f64) -> usize {
        debug_assert!(prefix >= 0.0);
        let mut node = 0usize;
        while node < self.leaf_base {
            let left = 2 * node + 1;
            let left_sum = self.nodes.get(left).copied().unwrap_or(0.0);
            if prefix < left_sum {
                node = left;
            } else {
                prefix -= left_sum;
                node = left + 1;
            }
        }
        (node - self.leaf_base).min(self.capacity - 1)
    }
}

/// Tuning for prioritized replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityConfig {
    /// Priority exponent α (0 = uniform, 1 = fully proportional).
    pub alpha: f64,
    /// Importance-sampling exponent β.
    pub beta: f64,
    /// Small constant keeping every sample reachable.
    pub epsilon: f64,
}

impl Default for PriorityConfig {
    fn default() -> Self {
        PriorityConfig {
            alpha: 0.6,
            beta: 0.4,
            epsilon: 1e-3,
        }
    }
}

/// A sampled batch entry: index (for priority updates after the TD step),
/// importance-sampling weight, and the transition itself.
#[derive(Debug, Clone)]
pub struct PrioritizedSample<A, S: Scalar = Elem> {
    /// Slot index to pass back to [`PrioritizedReplay::update_priority`].
    pub index: usize,
    /// Importance-sampling weight, normalized so `max w == 1`.
    pub weight: f64,
    /// The stored transition.
    pub transition: Transition<A, S>,
}

/// Fixed-capacity prioritized replay buffer (proportional variant).
/// Priorities and weights stay `f64` — they are scalar bookkeeping, not
/// bulk storage; only the transitions themselves carry the element type.
#[derive(Debug, Clone)]
pub struct PrioritizedReplay<A, S: Scalar = Elem> {
    items: Vec<Option<Transition<A, S>>>,
    tree: SumTree,
    config: PriorityConfig,
    /// Next slot to overwrite (ring order, like the paper's buffer).
    head: usize,
    len: usize,
    max_priority: f64,
}

impl<A: Clone, S: Scalar> PrioritizedReplay<A, S> {
    /// Empty buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize, config: PriorityConfig) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        PrioritizedReplay {
            items: vec![None; capacity],
            tree: SumTree::new(capacity),
            config,
            head: 0,
            len: 0,
            max_priority: 1.0,
        }
    }

    /// Stored transitions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.items.len()
    }

    /// Insert with maximal priority (new samples should be seen soon),
    /// evicting the oldest when full.
    pub fn push(&mut self, t: Transition<A, S>) {
        let i = self.head;
        self.items[i] = Some(t);
        let p = self
            .max_priority
            .powf(self.config.alpha)
            .max(self.config.epsilon);
        self.tree.set(i, p);
        self.head = (self.head + 1) % self.items.len();
        self.len = (self.len + 1).min(self.items.len());
    }

    /// Sample `h` transitions by priority mass (with replacement), with
    /// normalized importance weights.
    pub fn sample(&self, h: usize, rng: &mut StdRng) -> Vec<PrioritizedSample<A, S>> {
        if self.is_empty() {
            return Vec::new();
        }
        let total = self.tree.total();
        if total <= 0.0 {
            return Vec::new();
        }
        let n = self.len as f64;
        let mut out = Vec::with_capacity(h);
        let mut max_w: f64 = 0.0;
        for _ in 0..h {
            let prefix = rng.random_range(0.0..total);
            let index = self.tree.find(prefix);
            let Some(t) = &self.items[index] else {
                continue; // numerically possible only for zero-priority holes
            };
            let p = self.tree.get(index) / total;
            let w = (n * p).powf(-self.config.beta);
            max_w = max_w.max(w);
            out.push(PrioritizedSample {
                index,
                weight: w,
                transition: t.clone(),
            });
        }
        if max_w > 0.0 {
            for s in &mut out {
                s.weight /= max_w;
            }
        }
        out
    }

    /// Feed back a sample's TD error to reshape the distribution.
    pub fn update_priority(&mut self, index: usize, td_error: f64) {
        let p = (td_error.abs() + self.config.epsilon).powf(self.config.alpha);
        self.max_priority = self.max_priority.max(td_error.abs() + self.config.epsilon);
        self.tree.set(index, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sum_tree_total_tracks_sets() {
        let mut t = SumTree::new(5);
        t.set(0, 1.0);
        t.set(3, 2.5);
        assert!((t.total() - 3.5).abs() < 1e-12);
        t.set(0, 0.5);
        assert!((t.total() - 3.0).abs() < 1e-12);
        assert_eq!(t.get(3), 2.5);
    }

    #[test]
    fn sum_tree_find_respects_intervals() {
        let mut t = SumTree::new(4);
        // Intervals: [0,1) -> 0, [1,3) -> 1, [3,6) -> 2, [6,10) -> 3.
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        t.set(3, 4.0);
        assert_eq!(t.find(0.0), 0);
        assert_eq!(t.find(0.999), 0);
        assert_eq!(t.find(1.0), 1);
        assert_eq!(t.find(2.999), 1);
        assert_eq!(t.find(3.0), 2);
        assert_eq!(t.find(5.999), 2);
        assert_eq!(t.find(6.0), 3);
        assert_eq!(t.find(9.999), 3);
    }

    #[test]
    fn sum_tree_works_for_non_power_of_two() {
        let mut t = SumTree::new(3);
        t.set(0, 1.0);
        t.set(1, 1.0);
        t.set(2, 1.0);
        assert!((t.total() - 3.0).abs() < 1e-12);
        assert_eq!(t.find(2.5), 2);
    }

    fn tr(v: f64) -> Transition<usize, f64> {
        Transition::new(vec![v], 0, v, vec![v])
    }

    #[test]
    fn push_evicts_oldest_in_ring_order() {
        let mut buf = PrioritizedReplay::new(3, PriorityConfig::default());
        for i in 0..5 {
            buf.push(tr(i as f64));
        }
        assert_eq!(buf.len(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        let rewards: std::collections::HashSet<i64> = buf
            .sample(64, &mut rng)
            .into_iter()
            .map(|s| s.transition.reward as i64)
            .collect();
        // Only 2, 3, 4 survive.
        assert!(rewards.iter().all(|&r| r >= 2));
    }

    #[test]
    fn high_priority_samples_dominate() {
        let mut buf = PrioritizedReplay::new(
            8,
            PriorityConfig {
                alpha: 1.0,
                beta: 0.0,
                epsilon: 1e-6,
            },
        );
        for i in 0..8 {
            buf.push(tr(i as f64));
        }
        // Give slot 5 a hundredfold priority.
        for i in 0..8 {
            buf.update_priority(i, if i == 5 { 100.0 } else { 1.0 });
        }
        let mut rng = StdRng::seed_from_u64(7);
        let hits = buf
            .sample(1000, &mut rng)
            .into_iter()
            .filter(|s| s.index == 5)
            .count();
        assert!(hits > 800, "slot 5 drew only {hits}/1000");
    }

    #[test]
    fn importance_weights_are_normalized_and_downweight_frequent() {
        let mut buf = PrioritizedReplay::new(
            4,
            PriorityConfig {
                alpha: 1.0,
                beta: 1.0,
                epsilon: 1e-6,
            },
        );
        for i in 0..4 {
            buf.push(tr(i as f64));
        }
        buf.update_priority(0, 10.0);
        for i in 1..4 {
            buf.update_priority(i, 1.0);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let samples = buf.sample(500, &mut rng);
        let max_w = samples.iter().map(|s| s.weight).fold(0.0, f64::max);
        assert!((max_w - 1.0).abs() < 1e-9, "weights must be normalized");
        let w0: Vec<f64> = samples
            .iter()
            .filter(|s| s.index == 0)
            .map(|s| s.weight)
            .collect();
        let w1: Vec<f64> = samples
            .iter()
            .filter(|s| s.index == 1)
            .map(|s| s.weight)
            .collect();
        if let (Some(&a), Some(&b)) = (w0.first(), w1.first()) {
            assert!(a < b, "frequent sample must carry a smaller weight");
        }
    }

    #[test]
    fn uniform_alpha_zero_behaves_uniformly() {
        let mut buf = PrioritizedReplay::new(
            4,
            PriorityConfig {
                alpha: 0.0,
                beta: 0.0,
                epsilon: 1e-6,
            },
        );
        for i in 0..4 {
            buf.push(tr(i as f64));
        }
        for i in 0..4 {
            buf.update_priority(i, (i + 1) as f64 * 10.0);
        }
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for s in buf.sample(4000, &mut rng) {
            counts[s.index] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?} not uniform");
        }
    }
}
