//! The paper's actor-critic method (Algorithm 1).
//!
//! Actor `f(s; θπ)` → proto-action; MIQP-NN mapper → K nearest feasible
//! actions; critic `Q(s, a; θQ)` picks the best. Training uses experience
//! replay, target networks with soft updates, the critic MSE target
//! `y_i = r_i + γ · max_{a ∈ A_{i+1,K}} Q'(s_{i+1}, a)`, and the
//! deterministic policy gradient `∇_â Q(s, â)|_{â=f(s)} · ∇_θπ f(s)`.
//!
//! # Hot-path layout
//!
//! [`DdpgAgent::train_step`] batches everything that used to run
//! per-sample: the target actor's proto-actions for all `H` next-states
//! come from one forward pass, and the target critic scores *all* `H·K`
//! candidate actions in a single batched forward instead of `H·K`
//! one-row inferences. Minibatches assemble into persistent matrices from
//! ring-buffer slot indices (no transition clones). The only remaining
//! per-sample work is the K-NN mapper query, whose candidate sets are
//! genuinely data-dependent.

use rand::rngs::StdRng;

use dss_nn::{Activation, Adam, Elem, Matrix, Mlp, Scalar};

use crate::explore::{perturb_proto, perturb_proto_into};
use crate::mapper::{ActionMapper, CandidateAction};
use crate::replay::{ReplayBuffer, ShardSlot, ShardedReplayBuffer};
use crate::snapshot::{self, Reader, SnapshotError, Writer};
use crate::transition::Transition;

/// Hyperparameters (defaults are the paper's where it states them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdpgConfig {
    /// Discount factor γ (paper: 0.99).
    pub gamma: f64,
    /// Target soft-update rate τ (paper: 0.01).
    pub tau: f64,
    /// Replay capacity |B| (paper: 1000).
    pub replay_capacity: usize,
    /// Mini-batch size H (paper: 32).
    pub batch: usize,
    /// Nearest neighbours K consulted per decision (paper leaves K
    /// unstated; 8 balances decision quality and MIQP time — see the
    /// `fig_ablation_k` bench).
    pub k: usize,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Hidden layer widths (paper: 64 and 32, tanh).
    pub hidden: [usize; 2],
    /// Weight-init / sampling seed.
    pub seed: u64,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            tau: 0.01,
            replay_capacity: 1000,
            batch: 32,
            k: 8,
            actor_lr: 1e-2,
            critic_lr: 3e-3,
            hidden: [64, 32],
            seed: 42,
        }
    }
}

/// Persistent minibatch workspace; resized in place every step so
/// steady-state training avoids reallocation.
#[derive(Debug, Default)]
struct TrainScratch<S: Scalar> {
    /// Sampled replay slot indices (own ring buffer).
    idx: Vec<usize>,
    /// Sampled `(shard, slot)` addresses (external sharded replay).
    shard_idx: Vec<ShardSlot>,
    /// Minibatch states (H × state_dim).
    states: Matrix<S>,
    /// Minibatch next-states (H × state_dim).
    next_states: Matrix<S>,
    /// Minibatch rewards (so the update core never re-reads the replay).
    rewards: Vec<S>,
    /// Per-row K-NN candidate sets, buffers reused across steps.
    cands: Vec<Vec<CandidateAction<S>>>,
    /// All candidate `[next_state ‖ onehot]` rows across the batch
    /// (Σ candidates × (state_dim + action_dim)).
    cand_rows: Matrix<S>,
    /// TD targets y_i.
    targets: Vec<S>,
    /// Critic training input `[state ‖ action]` (H × (state+action)).
    critic_in: Matrix<S>,
    /// Critic input at the *current* actor's protos (actor update).
    critic_in2: Matrix<S>,
    /// Deterministic-policy-gradient signal for the actor (H × action).
    actor_grad: Matrix<S>,
    /// Critic MSE gradient column (H × 1).
    critic_grad: Matrix<S>,
}

/// Per-actor scratch for [`DdpgAgent::select_action_into`] — everything a
/// rollout decision touches, owned by the caller so the shared-`&self`
/// agent can serve many actors concurrently with **zero allocations once
/// warm** (asserted by the counting-allocator test in
/// `tests/alloc_free.rs`).
#[derive(Debug, Default)]
pub struct ActScratch<S: Scalar = Elem> {
    /// Ascending support (nonzero coordinates) of the current state.
    /// Featurized control states are a one-hot `X` block plus a short
    /// rate tail, so at fleet scale this holds ~N entries, not N·M.
    nz: Vec<usize>,
    /// Row-form ping/pong buffers for the actor and critic layer stacks.
    row_a: Vec<S>,
    row_b: Vec<S>,
    /// Explored proto-action (`R(â) = â + εI`).
    proto: Vec<S>,
    /// Candidate set of the last query; [`DdpgAgent::select_action_into`]
    /// returns an index into this.
    pub cands: Vec<CandidateAction<S>>,
    /// Critic layer-1 pre-activation over the state alone — shared by
    /// every candidate in the argmax.
    h_state: Vec<S>,
    /// Hot action columns (`state_dim + i·m + cᵢ`) of one candidate.
    hot: Vec<usize>,
}

/// The actor-critic agent, generic over the training element type
/// (default [`Elem`] = f32; see `dss-nn`'s crate docs).
pub struct DdpgAgent<S: Scalar = Elem> {
    actor: Mlp<S>,
    critic: Mlp<S>,
    target_actor: Mlp<S>,
    target_critic: Mlp<S>,
    actor_opt: Adam<S>,
    critic_opt: Adam<S>,
    replay: ReplayBuffer<Vec<S>, S>,
    config: DdpgConfig,
    state_dim: usize,
    action_dim: usize,
    train_steps: u64,
    scratch: TrainScratch<S>,
}

impl<S: Scalar> DdpgAgent<S> {
    /// Builds an agent for `state_dim`-dimensional states and
    /// `action_dim`-dimensional one-hot action encodings (`N·M`).
    ///
    /// Actor: `state → [64 tanh, 32 tanh] → action_dim sigmoid` (sigmoid
    /// keeps proto-entries in `[0, 1]`, matching the uniform-`[0, 1]`
    /// exploration noise). Critic: `[state ‖ action] → [64 tanh, 32 tanh]
    /// → 1 linear`.
    pub fn new(state_dim: usize, action_dim: usize, config: DdpgConfig) -> Self {
        assert!(state_dim > 0 && action_dim > 0, "degenerate dimensions");
        let [h1, h2] = config.hidden;
        let actor = Mlp::new(
            &[state_dim, h1, h2, action_dim],
            &[Activation::Tanh, Activation::Tanh, Activation::Sigmoid],
            config.seed,
        );
        let critic = Mlp::new(
            &[state_dim + action_dim, h1, h2, 1],
            &[Activation::Tanh, Activation::Tanh, Activation::Identity],
            config.seed.wrapping_add(1),
        );
        let mut target_actor = actor.clone();
        target_actor.copy_params_from(&actor);
        let mut target_critic = critic.clone();
        target_critic.copy_params_from(&critic);
        Self {
            actor_opt: Adam::new(config.actor_lr),
            critic_opt: Adam::new(config.critic_lr),
            replay: ReplayBuffer::new(config.replay_capacity),
            actor,
            critic,
            target_actor,
            target_critic,
            config,
            state_dim,
            action_dim,
            train_steps: 0,
            scratch: TrainScratch::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DdpgConfig {
        &self.config
    }

    /// State width the agent acts on.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// One-hot action width (`N·M`).
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Serializes every mutable field of the agent — all four networks,
    /// both optimizers' Adam moments, the replay ring in slot order, and
    /// the train-step counter — into a versioned byte image (see
    /// [`crate::snapshot`]). Together with the caller's RNG state this is
    /// a complete training checkpoint: a [`DdpgAgent::restore_state`]d
    /// agent continues the training trajectory bit-for-bit.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.save_state_append(&mut out);
        out
    }

    /// [`DdpgAgent::save_state`], appended to a caller-owned buffer. A
    /// periodic checkpoint loop clears and re-passes the same scratch so
    /// the multi-megabyte image (the replay ring dominates) reuses one
    /// allocation instead of growing a fresh `Vec` every save.
    pub fn save_state_append(&self, out: &mut Vec<u8>) {
        let mut w = Writer::header_in(std::mem::take(out), snapshot::KIND_DDPG);
        w.usize(self.state_dim);
        w.usize(self.action_dim);
        w.f64(self.config.gamma);
        w.f64(self.config.tau);
        w.usize(self.config.replay_capacity);
        w.usize(self.config.batch);
        w.usize(self.config.k);
        w.f64(self.config.actor_lr);
        w.f64(self.config.critic_lr);
        w.usize(self.config.hidden[0]);
        w.usize(self.config.hidden[1]);
        w.u64(self.config.seed);
        w.u64(self.train_steps);
        w.net(&self.actor);
        w.net(&self.critic);
        w.net(&self.target_actor);
        w.net(&self.target_critic);
        w.adam(&self.actor_opt);
        w.adam(&self.critic_opt);
        let action_dim = self.action_dim;
        snapshot::put_replay(&mut w, &self.replay, |w, a: &Vec<S>| {
            debug_assert_eq!(a.len(), action_dim, "stored action width");
            w.row(a);
        });
        *out = w.buf;
    }

    /// Rebuilds an agent from an image captured by
    /// [`DdpgAgent::save_state`]. The restored agent's decisions and
    /// training updates continue the original's bit-for-bit given the
    /// same RNG stream; foreign or corrupt bytes fail with a typed
    /// [`SnapshotError`], never a panic.
    pub fn restore_state(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::open(bytes, snapshot::KIND_DDPG)?;
        let state_dim = r.usize()?;
        let action_dim = r.usize()?;
        if state_dim == 0 || action_dim == 0 {
            return Err(SnapshotError::BadStructure("degenerate dimensions"));
        }
        let config = DdpgConfig {
            gamma: r.f64()?,
            tau: r.f64()?,
            replay_capacity: r.usize()?,
            batch: r.usize()?,
            k: r.usize()?,
            actor_lr: r.f64()?,
            critic_lr: r.f64()?,
            hidden: [r.usize()?, r.usize()?],
            seed: r.u64()?,
        };
        let lr_ok = |lr: f64| lr.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if config.replay_capacity == 0 || !lr_ok(config.actor_lr) || !lr_ok(config.critic_lr) {
            return Err(SnapshotError::BadStructure("invalid hyperparameters"));
        }
        let train_steps = r.u64()?;
        let actor: Mlp<S> = r.net()?;
        let critic: Mlp<S> = r.net()?;
        let target_actor: Mlp<S> = r.net()?;
        let target_critic: Mlp<S> = r.net()?;
        let shapes_ok = actor.layers().first().map(|l| l.input_size()) == Some(state_dim)
            && actor.layers().last().map(|l| l.output_size()) == Some(action_dim)
            && critic.layers().first().map(|l| l.input_size()) == Some(state_dim + action_dim)
            && target_actor.param_count() == actor.param_count()
            && target_critic.param_count() == critic.param_count();
        if !shapes_ok {
            return Err(SnapshotError::BadStructure("network shape mismatch"));
        }
        let actor_opt = r.adam(config.actor_lr)?;
        let critic_opt = r.adam(config.critic_lr)?;
        let replay = snapshot::get_replay(&mut r, state_dim, |r| {
            let a: Vec<S> = r.row(action_dim)?;
            Ok(a)
        })?;
        r.done()?;
        Ok(Self {
            actor,
            critic,
            target_actor,
            target_critic,
            actor_opt,
            critic_opt,
            replay,
            config,
            state_dim,
            action_dim,
            train_steps,
            scratch: TrainScratch::default(),
        })
    }

    /// Serializes the *policy alone* — dimensions, the train-step counter,
    /// and the online actor + critic networks — into a versioned byte
    /// image. This is the blob a parameter server publishes: everything a
    /// rollout worker needs to run [`DdpgAgent::select_action_into`], at a
    /// fraction of the full [`DdpgAgent::save_state`] checkpoint (no
    /// target nets, no optimizer moments, no replay ring).
    pub fn save_policy(&self) -> Vec<u8> {
        let mut w = Writer::header(snapshot::KIND_POLICY);
        w.usize(self.state_dim);
        w.usize(self.action_dim);
        w.u64(self.train_steps);
        w.net(&self.actor);
        w.net(&self.critic);
        w.buf
    }

    /// Installs a [`DdpgAgent::save_policy`] image into this agent's
    /// online actor and critic in place (targets, optimizers and replay
    /// are untouched — a worker replica never trains). Returns the
    /// publishing agent's train-step counter. Foreign bytes, a wrong
    /// snapshot kind, or a shape mismatch against this agent fail typed;
    /// the agent is unmodified on any error.
    pub fn apply_policy(&mut self, bytes: &[u8]) -> Result<u64, SnapshotError> {
        let mut r = Reader::open(bytes, snapshot::KIND_POLICY)?;
        let state_dim = r.usize()?;
        let action_dim = r.usize()?;
        if state_dim != self.state_dim || action_dim != self.action_dim {
            return Err(SnapshotError::BadStructure("policy dimension mismatch"));
        }
        let train_steps = r.u64()?;
        let actor: Mlp<S> = r.net()?;
        let critic: Mlp<S> = r.net()?;
        r.done()?;
        if actor.param_count() != self.actor.param_count()
            || critic.param_count() != self.critic.param_count()
            || actor.layers().len() != self.actor.layers().len()
            || critic.layers().len() != self.critic.layers().len()
        {
            return Err(SnapshotError::BadStructure("policy network shape"));
        }
        self.actor.copy_params_from(&actor);
        self.critic.copy_params_from(&critic);
        Ok(train_steps)
    }

    /// Number of stored transitions.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Training steps performed.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Read access to the actor (serialization, inspection).
    pub fn actor(&self) -> &Mlp<S> {
        &self.actor
    }

    /// Read access to the critic.
    pub fn critic(&self) -> &Mlp<S> {
        &self.critic
    }

    /// The raw proto-action `f(s)` for a state.
    pub fn proto_action(&self, state: &[S]) -> Vec<S> {
        assert_eq!(state.len(), self.state_dim, "state width");
        self.actor.infer_one(state)
    }

    /// Critic value `Q(s, a)`.
    pub fn q_value(&self, state: &[S], action: &[S]) -> S {
        assert_eq!(action.len(), self.action_dim, "action width");
        let mut input = Vec::with_capacity(self.state_dim + self.action_dim);
        input.extend_from_slice(state);
        input.extend_from_slice(action);
        self.critic.infer_one(&input)[0]
    }

    /// Full decision step (Algorithm 1, lines 8–11): proto-action,
    /// exploration noise with probability `eps`, K-NN mapping, critic
    /// argmax. Returns the selected candidate.
    ///
    /// # Panics
    /// Panics if the mapper returns no candidates.
    pub fn select_action(
        &self,
        state: &[S],
        mapper: &mut dyn ActionMapper<S>,
        eps: f64,
        rng: &mut StdRng,
    ) -> CandidateAction<S> {
        self.select_action_with_extras(state, mapper, eps, rng, Vec::new())
    }

    /// Allocation-free decision step over caller-owned [`ActScratch`]:
    /// actor inference, exploration noise, K-NN mapping and the critic
    /// argmax all run through reused buffers (zero allocations once
    /// scratch is warm). Returns the index of the selected candidate in
    /// `scratch.cands`. Consumes the RNG stream identically to
    /// [`DdpgAgent::select_action`] and selects the same candidate.
    ///
    /// The whole path is sparsity-aware so its cost follows the problem's
    /// *support*, not its width: the actor/critic first layers gather
    /// only the state's nonzero coordinates (featurized control states
    /// are a one-hot assignment block plus a short rate tail), each
    /// candidate's critic score adds its N hot action columns instead of
    /// streaming an `N·M`-wide one-hot row, and the tail layers run in
    /// row form without the per-call `Wᵀ` GEMM pack. Every step is
    /// bitwise identical to the dense batched forward (exact-zero terms
    /// leave the IEEE accumulator chains untouched — see
    /// `Dense::accumulate_cols`), so flat and hierarchical mappers, and
    /// old and new act paths, stay on the same decision stream.
    ///
    /// # Panics
    /// Panics if the mapper returns no candidates or its shape disagrees
    /// with the agent's action width.
    pub fn select_action_into(
        &self,
        state: &[S],
        mapper: &mut dyn ActionMapper<S>,
        eps: f64,
        rng: &mut StdRng,
        scratch: &mut ActScratch<S>,
    ) -> usize {
        assert_eq!(state.len(), self.state_dim, "state width");
        let ActScratch {
            nz,
            row_a,
            row_b,
            proto,
            cands,
            h_state,
            hot,
        } = scratch;
        nz.clear();
        nz.extend((0..state.len()).filter(|&l| state[l] != S::ZERO));

        // Actor forward in row form: sparse first layer, streamed tail.
        let layers = self.actor.layers();
        row_a.clear();
        row_a.resize(layers[0].output_size(), S::ZERO);
        layers[0].accumulate_cols(nz, state, row_a);
        layers[0].finish_row(row_a);
        let mut in_a = true;
        for layer in &layers[1..] {
            if in_a {
                layer.infer_row_into(row_a, row_b);
            } else {
                layer.infer_row_into(row_b, row_a);
            }
            in_a = !in_a;
        }
        let actor_out: &[S] = if in_a { row_a } else { row_b };
        perturb_proto_into(actor_out, eps, rng, proto);
        mapper.nearest_into(proto, self.config.k, cands);
        assert!(!cands.is_empty(), "no candidates to select from");

        // Critic argmax: the layer-1 state part is accumulated once and
        // shared; each candidate contributes its N hot action columns.
        let (n, m) = mapper.shape();
        assert_eq!(n * m, self.action_dim, "mapper/agent action shape");
        let clayers = self.critic.layers();
        h_state.clear();
        h_state.resize(clayers[0].output_size(), S::ZERO);
        clayers[0].accumulate_cols(nz, state, h_state);
        let mut best = 0;
        let mut best_q = S::NEG_INFINITY;
        for (ci, cand) in cands.iter().enumerate() {
            assert_eq!(cand.choice.len(), n, "candidate executor count");
            hot.clear();
            hot.extend(
                cand.choice
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| self.state_dim + i * m + c),
            );
            row_a.clear();
            row_a.extend_from_slice(h_state);
            clayers[0].accumulate_hot_cols(hot, row_a);
            clayers[0].finish_row(row_a);
            let mut in_a = true;
            for layer in &clayers[1..] {
                if in_a {
                    layer.infer_row_into(row_a, row_b);
                } else {
                    layer.infer_row_into(row_b, row_a);
                }
                in_a = !in_a;
            }
            let q = if in_a { row_a[0] } else { row_b[0] };
            if q > best_q {
                best_q = q;
                best = ci;
            }
        }
        best
    }

    /// Like [`DdpgAgent::select_action`] but with extra caller-supplied
    /// candidates (e.g. elite actions remembered from the transition
    /// database) competing in the critic argmax alongside the K-NN of the
    /// proto-action.
    ///
    /// # Panics
    /// Panics if both the mapper and `extras` yield no candidates.
    pub fn select_action_with_extras(
        &self,
        state: &[S],
        mapper: &mut dyn ActionMapper<S>,
        eps: f64,
        rng: &mut StdRng,
        extras: Vec<CandidateAction<S>>,
    ) -> CandidateAction<S> {
        let proto = self.proto_action(state);
        let explored = perturb_proto(&proto, eps, rng);
        let mut candidates = mapper.nearest(&explored, self.config.k);
        candidates.extend(extras);
        assert!(!candidates.is_empty(), "no candidates to select from");
        self.best_by_critic(&self.critic, state, candidates)
    }

    /// Stores an experience sample.
    pub fn store(&mut self, t: Transition<Vec<S>, S>) {
        assert_eq!(t.state.len(), self.state_dim, "state width");
        assert_eq!(t.action.len(), self.action_dim, "action width");
        self.replay.push(t);
    }

    /// One training step (Algorithm 1, lines 14–18) over the agent's own
    /// replay buffer. Returns the critic loss, or `None` when the replay
    /// buffer is still empty.
    pub fn train_step(
        &mut self,
        mapper: &mut dyn ActionMapper<S>,
        rng: &mut StdRng,
    ) -> Option<f64> {
        if self.replay.is_empty() {
            return None;
        }
        let scratch = &mut self.scratch;
        self.replay
            .sample_indices_into(self.config.batch, rng, &mut scratch.idx);
        let h = scratch.idx.len();
        let in_dim = self.state_dim + self.action_dim;

        // Assemble the minibatch in place from replay slots.
        scratch.states.resize(h, self.state_dim);
        scratch.next_states.resize(h, self.state_dim);
        scratch.critic_in.resize(h, in_dim);
        scratch.rewards.clear();
        for (r, &slot) in scratch.idx.iter().enumerate() {
            let t = self.replay.get(slot);
            scratch.states.row_mut(r).copy_from_slice(&t.state);
            scratch
                .next_states
                .row_mut(r)
                .copy_from_slice(&t.next_state);
            let row = scratch.critic_in.row_mut(r);
            row[..self.state_dim].copy_from_slice(&t.state);
            row[self.state_dim..].copy_from_slice(&t.action);
            scratch.rewards.push(t.reward);
        }
        Some(self.train_on_minibatch(mapper))
    }

    /// One training step sampling from an external [`ShardedReplayBuffer`]
    /// — the learner side of parallel-actor collection: N actors push into
    /// their shards while this consumes uniform cross-shard minibatches.
    /// Minibatch assembly is a strided copy straight out of the buffer's
    /// structure-of-arrays slabs into the training matrices.
    /// Returns `None` while the sharded buffer is empty.
    ///
    /// # Panics
    /// Panics when the buffer's row widths do not match this agent's
    /// state/action dimensions.
    pub fn train_step_from(
        &mut self,
        replay: &ShardedReplayBuffer<S>,
        mapper: &mut dyn ActionMapper<S>,
        rng: &mut StdRng,
    ) -> Option<f64> {
        assert_eq!(replay.state_dim(), self.state_dim, "state width");
        assert_eq!(replay.action_dim(), self.action_dim, "action width");
        let scratch = &mut self.scratch;
        replay.sample_indices_into(self.config.batch, rng, &mut scratch.shard_idx);
        let h = scratch.shard_idx.len();
        if h == 0 {
            return None;
        }
        let in_dim = self.state_dim + self.action_dim;
        scratch.states.resize(h, self.state_dim);
        scratch.next_states.resize(h, self.state_dim);
        scratch.critic_in.resize(h, in_dim);
        scratch.rewards.clear();
        for (r, &slot) in scratch.shard_idx.iter().enumerate() {
            replay.with_rows(slot, |state, action, reward, next_state| {
                scratch.states.row_mut(r).copy_from_slice(state);
                scratch.next_states.row_mut(r).copy_from_slice(next_state);
                let row = scratch.critic_in.row_mut(r);
                row[..self.state_dim].copy_from_slice(state);
                row[self.state_dim..].copy_from_slice(action);
                scratch.rewards.push(reward);
            });
        }
        Some(self.train_on_minibatch(mapper))
    }

    /// The shared update core: consumes the assembled minibatch
    /// (`states`, `next_states`, `critic_in`, `rewards` in scratch) and
    /// runs Algorithm 1's critic/actor/target updates. Returns the critic
    /// loss.
    fn train_on_minibatch(&mut self, mapper: &mut dyn ActionMapper<S>) -> f64 {
        let scratch = &mut self.scratch;
        let h = scratch.states.rows();
        let in_dim = self.state_dim + self.action_dim;

        // Targets (line 15): proto-actions for all H next-states in one
        // batched target-actor forward; their K-NN candidate sets from
        // one batched mapper query over the proto matrix (cost-matrix
        // setup amortized across the batch through mapper state,
        // candidate buffers reused); then every candidate stacked into
        // one matrix and scored by a single batched target-critic
        // forward — H·K Q-values per call instead of per sample.
        let protos_next = self.target_actor.forward(&scratch.next_states);
        mapper.nearest_batch_into(protos_next, self.config.k, &mut scratch.cands);
        let mut total = 0usize;
        scratch.cand_rows.resize(0, in_dim);
        for (r, candidates) in scratch.cands.iter().enumerate() {
            scratch.cand_rows.resize(total + candidates.len(), in_dim);
            for (c, cand) in candidates.iter().enumerate() {
                let row = scratch.cand_rows.row_mut(total + c);
                row[..self.state_dim].copy_from_slice(scratch.next_states.row(r));
                row[self.state_dim..].copy_from_slice(&cand.onehot);
            }
            total += candidates.len();
        }
        let cand_q = self.target_critic.forward(&scratch.cand_rows);
        scratch.targets.clear();
        let gamma = S::from_f64(self.config.gamma);
        let mut offset = 0;
        for r in 0..h {
            let n_cand = scratch.cands[r].len();
            let best = (offset..offset + n_cand)
                .map(|i| cand_q[(i, 0)])
                .fold(S::NEG_INFINITY, S::max);
            offset += n_cand;
            scratch.targets.push(scratch.rewards[r] + gamma * best);
        }

        // Critic update (line 16): MSE against the TD targets, with loss
        // and gradient folded in place (matches `mse_loss_grad` over the
        // H×1 prediction column: loss = Σd²/H, grad = 2d/H).
        let pred = self.critic.forward(&scratch.critic_in);
        scratch.critic_grad.resize(h, 1);
        let grad_scale = S::from_f64(2.0 / h as f64);
        let mut loss = 0.0f64;
        for r in 0..h {
            let d = pred[(r, 0)] - scratch.targets[r];
            loss += d.to_f64() * d.to_f64();
            scratch.critic_grad[(r, 0)] = grad_scale * d;
        }
        loss /= h as f64;
        self.critic.zero_grad();
        self.critic.backward(&scratch.critic_grad);
        self.critic.apply_gradients(&mut self.critic_opt);

        // Actor update (line 17): ascend Q by the chain rule through the
        // critic's action input, with the whole batch of protos from one
        // actor forward.
        let protos = self.actor.forward(&scratch.states);
        scratch.critic_in2.resize(h, in_dim);
        for r in 0..h {
            let row = scratch.critic_in2.row_mut(r);
            row[..self.state_dim].copy_from_slice(scratch.states.row(r));
            row[self.state_dim..].copy_from_slice(protos.row(r));
        }
        let full_grad = self.critic.input_gradient(&scratch.critic_in2);
        // −dQ/da, averaged over the batch (descent on −Q = ascent on Q).
        scratch.actor_grad.resize(h, self.action_dim);
        let inv_h = S::from_f64(1.0 / h as f64);
        for r in 0..h {
            let src = &full_grad.row(r)[self.state_dim..];
            for (g, &d) in scratch.actor_grad.row_mut(r).iter_mut().zip(src) {
                *g = -(d * inv_h);
            }
        }
        self.actor.zero_grad();
        self.actor.backward(&scratch.actor_grad);
        self.actor.apply_gradients(&mut self.actor_opt);

        // Target soft updates (line 18).
        self.target_critic
            .soft_update_from(&self.critic, self.config.tau);
        self.target_actor
            .soft_update_from(&self.actor, self.config.tau);
        self.train_steps += 1;
        loss
    }

    /// Offline pre-training (Algorithm 1, line 4): trains on the full
    /// historical sample set (the paper collects 10,000 random-action
    /// samples), then seeds the bounded online replay buffer with the most
    /// recent `|B|` of them.
    pub fn pretrain(
        &mut self,
        samples: Vec<Transition<Vec<S>, S>>,
        steps: usize,
        mapper: &mut dyn ActionMapper<S>,
        rng: &mut StdRng,
    ) {
        if samples.is_empty() {
            return;
        }
        // Swap in a buffer big enough for the whole historical set.
        let online = std::mem::replace(&mut self.replay, ReplayBuffer::new(samples.len().max(1)));
        drop(online);
        for s in samples {
            self.store(s);
        }
        for _ in 0..steps {
            self.train_step(mapper, rng);
        }
        // Restore the paper's bounded online buffer, keeping the freshest
        // samples as its initial contents.
        let mut online = ReplayBuffer::new(self.config.replay_capacity);
        let skip = self
            .replay
            .len()
            .saturating_sub(self.config.replay_capacity);
        for t in self.replay.iter().skip(skip) {
            online.push(t.clone());
        }
        self.replay = online;
    }

    fn q_of(&self, critic: &Mlp<S>, state: &[S], action: &[S]) -> S {
        let mut input = Vec::with_capacity(self.state_dim + self.action_dim);
        input.extend_from_slice(state);
        input.extend_from_slice(action);
        critic.infer_one(&input)[0]
    }

    fn best_by_critic(
        &self,
        critic: &Mlp<S>,
        state: &[S],
        candidates: Vec<CandidateAction<S>>,
    ) -> CandidateAction<S> {
        let mut best_idx = 0;
        let mut best_q = S::NEG_INFINITY;
        for (i, c) in candidates.iter().enumerate() {
            let q = self.q_of(critic, state, &c.onehot);
            if q > best_q {
                best_q = q;
                best_idx = i;
            }
        }
        candidates.into_iter().nth(best_idx).expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::KBestMapper;
    use rand::SeedableRng;

    /// A 2-thread / 2-machine toy problem where co-locating both threads on
    /// machine 0 yields reward 0 and anything else −1. State: the current
    /// one-hot assignment.
    fn toy_reward(choice: &[usize]) -> f64 {
        if choice == [0, 0] {
            0.0
        } else {
            -1.0
        }
    }

    fn toy_config() -> DdpgConfig {
        DdpgConfig {
            replay_capacity: 256,
            batch: 16,
            k: 2,
            actor_lr: 1e-2,
            critic_lr: 5e-3,
            hidden: [16, 8],
            seed: 3,
            ..DdpgConfig::default()
        }
    }

    #[test]
    fn dimensions_and_determinism() {
        let agent = DdpgAgent::new(6, 4, toy_config());
        let proto = agent.proto_action(&[0.0, 1.0, 0.5, 0.2, 0.1, 0.9]);
        assert_eq!(proto.len(), 4);
        assert!(proto.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let agent2 = DdpgAgent::new(6, 4, toy_config());
        assert_eq!(agent2.proto_action(&[0.0, 1.0, 0.5, 0.2, 0.1, 0.9]), proto);
    }

    #[test]
    fn select_action_returns_feasible_candidate() {
        let agent = DdpgAgent::new(4, 4, toy_config());
        let mut mapper = KBestMapper::new(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let c = agent.select_action(&[1.0, 0.0, 0.0, 1.0], &mut mapper, 0.5, &mut rng);
        assert_eq!(c.choice.len(), 2);
        assert!(c.choice.iter().all(|&j| j < 2));
    }

    #[test]
    fn learns_toy_preference() {
        // Train on random transitions of the toy problem; the greedy policy
        // must end up selecting the rewarded assignment. A moderate γ keeps
        // the K=2-candidate bootstrap stable so the final ranking reflects
        // learning rather than the drift of half-converged value estimates
        // (γ=0.99 left the ordering seed-sensitive).
        let mut agent = DdpgAgent::new(
            4,
            4,
            DdpgConfig {
                gamma: 0.3,
                ..toy_config()
            },
        );
        let mut mapper = KBestMapper::new(2, 2);
        let mut rng = StdRng::seed_from_u64(7);
        use rand::RngExt;
        for _ in 0..300 {
            let choice = [rng.random_range(0..2), rng.random_range(0..2)];
            // One-hot: row i, machine j -> index i*2+j.
            let mut a = vec![0.0; 4];
            a[choice[0]] = 1.0;
            a[2 + choice[1]] = 1.0;
            let state = a.clone(); // state = current assignment
            let reward = toy_reward(&choice);
            agent.store(Transition::new(state.clone(), a, reward, state));
            agent.train_step(&mut mapper, &mut rng);
        }
        assert!(agent.train_steps() > 0);
        // Greedy decision from any state should pick [0, 0].
        let state = vec![0.0, 1.0, 0.0, 1.0];
        let action = agent.select_action(&state, &mut mapper, 0.0, &mut rng);
        assert_eq!(action.choice, vec![0, 0], "learned the rewarded action");
    }

    #[test]
    fn critic_loss_decreases_on_fixed_target() {
        let mut agent = DdpgAgent::new(2, 4, toy_config());
        let mut mapper = KBestMapper::new(2, 2);
        let mut rng = StdRng::seed_from_u64(9);
        // Constant reward everywhere: Q should converge to r/(1-γ)-ish and
        // loss should drop substantially.
        for _ in 0..50 {
            agent.store(Transition::new(
                vec![0.5, 0.5],
                vec![1.0, 0.0, 1.0, 0.0],
                -2.0,
                vec![0.5, 0.5],
            ));
        }
        let first = agent.train_step(&mut mapper, &mut rng).unwrap();
        let mut last = first;
        for _ in 0..400 {
            last = agent.train_step(&mut mapper, &mut rng).unwrap();
        }
        assert!(
            last < first * 0.5,
            "critic loss should shrink: {first} -> {last}"
        );
    }

    #[test]
    fn train_step_from_sharded_replay_learns_fixed_target() {
        use crate::replay::ShardedReplayBuffer;
        let mut agent = DdpgAgent::new(2, 4, toy_config());
        let mut mapper = KBestMapper::new(2, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let replay: ShardedReplayBuffer<f64> = ShardedReplayBuffer::new(2, 64, 2, 4);
        assert_eq!(agent.train_step_from(&replay, &mut mapper, &mut rng), None);
        for i in 0..40 {
            replay.push_rows(i % 2, &[0.5, 0.5], &[1.0, 0.0, 1.0, 0.0], -2.0, &[0.5, 0.5]);
        }
        let first = agent
            .train_step_from(&replay, &mut mapper, &mut rng)
            .unwrap();
        let mut last = first;
        for _ in 0..400 {
            last = agent
                .train_step_from(&replay, &mut mapper, &mut rng)
                .unwrap();
        }
        assert!(last < first * 0.5, "loss should shrink: {first} -> {last}");
        assert_eq!(agent.train_steps(), 401);
    }

    #[test]
    fn select_action_into_matches_allocating_path() {
        use crate::ddpg::ActScratch;
        let agent: DdpgAgent<f64> = DdpgAgent::new(4, 4, toy_config());
        let mut mapper = KBestMapper::new(2, 2);
        let mut scratch = ActScratch::default();
        for (seed, eps) in [(1u64, 0.0), (2, 0.5), (3, 1.0), (4, 0.9)] {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let state = [0.3, 0.7, 0.1, 0.9];
            let want = agent.select_action(&state, &mut mapper, eps, &mut rng_a);
            let idx = agent.select_action_into(&state, &mut mapper, eps, &mut rng_b, &mut scratch);
            assert_eq!(scratch.cands[idx], want, "seed {seed} eps {eps}");
        }
    }

    #[test]
    fn train_step_without_data_is_none() {
        let mut agent: DdpgAgent<f64> = DdpgAgent::new(2, 4, toy_config());
        let mut mapper = KBestMapper::new(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(agent.train_step(&mut mapper, &mut rng), None);
    }

    #[test]
    fn policy_blob_transfers_decisions_bit_identically() {
        use dss_nn::Elem;
        let e = Elem::from_f64;
        let mut donor: DdpgAgent = DdpgAgent::new(4, 4, toy_config());
        let mut mapper = KBestMapper::new(2, 2);
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..30 {
            let mut state = vec![e(0.0); 4];
            state[i % 4] = e(1.0);
            let c = donor.select_action(&state, &mut mapper, 0.5, &mut rng);
            let r = e(toy_reward(&c.choice));
            donor.store(Transition::new(state.clone(), c.onehot.clone(), r, state));
            donor.train_step(&mut mapper, &mut rng);
        }

        // A fresh same-shape replica with a different seed starts on a
        // different policy; applying the blob puts it on the donor's.
        let blob = donor.save_policy();
        assert!(
            blob.len() < donor.save_state().len() / 2,
            "policy blob should be much smaller than a full checkpoint"
        );
        let mut replica: DdpgAgent = DdpgAgent::new(
            4,
            4,
            DdpgConfig {
                seed: 999,
                ..toy_config()
            },
        );
        let steps = replica.apply_policy(&blob).unwrap();
        assert_eq!(steps, donor.train_steps());
        let state = [e(0.0), e(1.0), e(1.0), e(0.0)];
        let pa = donor.proto_action(&state);
        let pb = replica.proto_action(&state);
        for (a, b) in pa.iter().zip(&pb) {
            assert_eq!(a.to_f64().to_bits(), b.to_f64().to_bits());
        }
        let qa = donor.q_value(&state, &[e(1.0), e(0.0), e(0.0), e(1.0)]);
        let qb = replica.q_value(&state, &[e(1.0), e(0.0), e(0.0), e(1.0)]);
        assert_eq!(qa.to_f64().to_bits(), qb.to_f64().to_bits());

        // Typed failures: wrong kind, wrong shape, trailing bytes.
        assert!(matches!(
            replica.apply_policy(&donor.save_state()),
            Err(SnapshotError::WrongKind(_))
        ));
        let mut narrow: DdpgAgent = DdpgAgent::new(2, 4, toy_config());
        assert!(matches!(
            narrow.apply_policy(&blob),
            Err(SnapshotError::BadStructure(_))
        ));
        let mut trailing = blob.clone();
        trailing.push(0);
        assert!(matches!(
            replica.apply_policy(&trailing),
            Err(SnapshotError::BadStructure(_))
        ));
    }

    #[test]
    fn snapshot_round_trip_continues_training_bit_identically() {
        use dss_nn::Elem;
        let e = Elem::from_f64;
        let cfg = DdpgConfig {
            replay_capacity: 24, // small enough to wrap during warm-up
            batch: 8,
            k: 2,
            hidden: [8, 4],
            seed: 11,
            ..DdpgConfig::default()
        };
        let mut agent: DdpgAgent = DdpgAgent::new(4, 4, cfg);
        let mut mapper = KBestMapper::new(2, 2);
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..40 {
            let mut state = vec![e(0.0); 4];
            state[i % 4] = e(1.0);
            let c = agent.select_action(&state, &mut mapper, 0.5, &mut rng);
            let r = e(toy_reward(&c.choice));
            let mut next = vec![e(0.0); 4];
            next[(i + 1) % 4] = e(1.0);
            agent.store(Transition::new(state, c.onehot.clone(), r, next));
            agent.train_step(&mut mapper, &mut rng);
        }

        let image = agent.save_state();
        let mut restored: DdpgAgent = DdpgAgent::restore_state(&image).unwrap();
        assert_eq!(restored.train_steps(), agent.train_steps());
        assert_eq!(restored.replay_len(), agent.replay_len());

        // Continue both agents in lockstep from the same RNG state.
        let mut rng_b = StdRng::from_state(rng.state());
        let mut mapper_b = KBestMapper::new(2, 2);
        for i in 0..20 {
            let mut state = vec![e(0.0); 4];
            state[(3 * i) % 4] = e(1.0);
            let ca = agent.select_action(&state, &mut mapper, 0.3, &mut rng);
            let cb = restored.select_action(&state, &mut mapper_b, 0.3, &mut rng_b);
            assert_eq!(ca, cb, "step {i} diverged");
            let r = e(toy_reward(&ca.choice));
            let next = state.clone();
            agent.store(Transition::new(
                state.clone(),
                ca.onehot.clone(),
                r,
                next.clone(),
            ));
            restored.store(Transition::new(state, cb.onehot.clone(), r, next));
            let la = agent.train_step(&mut mapper, &mut rng);
            let lb = restored.train_step(&mut mapper_b, &mut rng_b);
            assert_eq!(
                la.map(f64::to_bits),
                lb.map(f64::to_bits),
                "loss diverged at step {i}"
            );
        }
        let s = [e(0.25), e(0.5), e(0.75), e(1.0)];
        let pa = agent.proto_action(&s);
        let pb = restored.proto_action(&s);
        for (a, b) in pa.iter().zip(&pb) {
            assert_eq!(a.to_f64().to_bits(), b.to_f64().to_bits());
        }
    }
}
