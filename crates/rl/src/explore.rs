//! Exploration policies.
//!
//! The paper's online exploration (Algorithm 1, line 9) is
//! `R(â) = â + εI`, where ε "determines the probability to add a random
//! noise to the proto-action rather than take the derived action", ε decays
//! with the decision epoch, and `I` is uniform noise with each element in
//! `[0, 1]`. The DQN baseline uses classic ε-greedy over its discrete
//! action space.

use dss_nn::{Elem, Scalar};
use rand::rngs::StdRng;
use rand::RngExt;

/// Linearly decaying ε schedule: `start` at epoch 0 down to `end` at
/// `decay_epochs`, constant afterwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonSchedule {
    /// Initial ε.
    pub start: f64,
    /// Final ε.
    pub end: f64,
    /// Epochs over which ε decays linearly.
    pub decay_epochs: usize,
}

impl EpsilonSchedule {
    /// Builds a schedule.
    ///
    /// # Panics
    /// Panics unless `0 ≤ end ≤ start ≤ 1` and `decay_epochs > 0`.
    pub fn new(start: f64, end: f64, decay_epochs: usize) -> Self {
        assert!((0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end));
        assert!(end <= start, "epsilon must decay");
        assert!(decay_epochs > 0, "decay epochs must be positive");
        Self {
            start,
            end,
            decay_epochs,
        }
    }

    /// The paper-flavoured default: heavy early exploration decaying over
    /// the first half of a 2000-epoch run.
    pub fn standard() -> Self {
        Self::new(0.8, 0.05, 1000)
    }

    /// ε at epoch `t`.
    pub fn value(&self, t: usize) -> f64 {
        if t >= self.decay_epochs {
            return self.end;
        }
        let frac = t as f64 / self.decay_epochs as f64;
        self.start + (self.end - self.start) * frac
    }
}

/// Applies the paper's proto-action exploration `R(â) = â + εI`: with
/// probability `eps`, adds elementwise uniform `[0, 1]` noise scaled by
/// `eps`; otherwise returns the proto-action unchanged. Noise is drawn
/// in `f64` whatever the element type, so the decision stream is
/// precision-independent.
pub fn perturb_proto<S: Scalar>(proto: &[S], eps: f64, rng: &mut StdRng) -> Vec<S> {
    let mut out = Vec::new();
    perturb_proto_into(proto, eps, rng, &mut out);
    out
}

/// [`perturb_proto`] into a caller-owned buffer (cleared and refilled in
/// place) — the allocation-free form the rollout act path uses. Consumes
/// the RNG stream identically to the allocating form.
pub fn perturb_proto_into<S: Scalar>(proto: &[S], eps: f64, rng: &mut StdRng, out: &mut Vec<S>) {
    assert!((0.0..=1.0).contains(&eps), "eps must be a probability");
    out.clear();
    if eps == 0.0 || rng.random_range(0.0..1.0) >= eps {
        out.extend_from_slice(proto);
        return;
    }
    out.extend(
        proto
            .iter()
            .map(|&v| v + S::from_f64(eps * rng.random_range(0.0..1.0))),
    );
}

/// Ornstein-Uhlenbeck exploration noise — the temporally correlated
/// process the original DDPG paper (the paper's reference \[26\]) adds to
/// actor outputs for continuous control.
///
/// Each call to [`OuNoise::sample`] advances
/// `x <- x + θ(μ - x) + σ ξ`, `ξ ~ U(-1, 1)` per element, so consecutive
/// perturbations are correlated (unlike the paper's memoryless `εI`).
/// The `exploration-noise` ablation compares the two.
#[derive(Debug, Clone)]
pub struct OuNoise<S: Scalar = Elem> {
    state: Vec<S>,
    /// Mean-reversion target μ.
    pub mu: f64,
    /// Mean-reversion rate θ.
    pub theta: f64,
    /// Noise scale σ.
    pub sigma: f64,
}

impl<S: Scalar> OuNoise<S> {
    /// Process of dimension `dim` with DDPG's customary θ=0.15, σ=0.2.
    pub fn new(dim: usize) -> Self {
        Self::with_params(dim, 0.0, 0.15, 0.2)
    }

    /// Fully parameterized process.
    ///
    /// # Panics
    /// Panics if `theta` is outside `[0, 1]` or `sigma` is negative.
    pub fn with_params(dim: usize, mu: f64, theta: f64, sigma: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        OuNoise {
            state: vec![S::from_f64(mu); dim],
            mu,
            theta,
            sigma,
        }
    }

    /// Advance the process one step and return the current noise vector.
    pub fn sample(&mut self, rng: &mut StdRng) -> &[S] {
        let mu = S::from_f64(self.mu);
        let theta = S::from_f64(self.theta);
        let sigma = S::from_f64(self.sigma);
        for x in &mut self.state {
            let xi = S::from_f64(rng.random_range(-1.0..1.0));
            *x += theta * (mu - *x) + sigma * xi;
        }
        &self.state
    }

    /// Reset to the mean (start of an episode).
    pub fn reset(&mut self) {
        self.state.fill(S::from_f64(self.mu));
    }

    /// Add the next noise step to a proto-action, scaled by `scale`.
    pub fn perturb(&mut self, proto: &[S], scale: f64, rng: &mut StdRng) -> Vec<S> {
        assert_eq!(proto.len(), self.state.len(), "dimension mismatch");
        let scale = S::from_f64(scale);
        let noise = self.sample(rng).to_vec();
        proto
            .iter()
            .zip(noise)
            .map(|(&v, n)| v + scale * n)
            .collect()
    }
}

/// Classic ε-greedy index selection for the DQN baseline: random action
/// with probability `eps`, otherwise the argmax of `q_values`.
///
/// # Panics
/// Panics on empty `q_values`.
pub fn epsilon_greedy<S: Scalar>(q_values: &[S], eps: f64, rng: &mut StdRng) -> usize {
    assert!(!q_values.is_empty(), "no actions to choose from");
    if rng.random_range(0.0..1.0) < eps {
        return rng.random_range(0..q_values.len());
    }
    q_values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN Q value"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schedule_decays_linearly() {
        let s = EpsilonSchedule::new(1.0, 0.0, 100);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.5).abs() < 1e-12);
        assert_eq!(s.value(100), 0.0);
        assert_eq!(s.value(10_000), 0.0);
    }

    #[test]
    fn zero_eps_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let proto = vec![0.2, 0.8];
        assert_eq!(perturb_proto(&proto, 0.0, &mut rng), proto);
    }

    #[test]
    fn full_eps_always_perturbs_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let proto = vec![0.5; 16];
        let out = perturb_proto(&proto, 1.0, &mut rng);
        assert_ne!(out, proto);
        for (o, p) in out.iter().zip(&proto) {
            assert!(*o >= *p && *o <= *p + 1.0);
        }
    }

    #[test]
    fn perturbation_probability_matches_eps() {
        let mut rng = StdRng::seed_from_u64(3);
        let proto = vec![0.5];
        let n = 20_000;
        let perturbed = (0..n)
            .filter(|_| perturb_proto(&proto, 0.3, &mut rng) != proto)
            .count();
        let frac = perturbed as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "{frac}");
    }

    #[test]
    fn greedy_picks_argmax_at_zero_eps() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(epsilon_greedy(&[0.1, 0.9, 0.5], 0.0, &mut rng), 1);
    }

    #[test]
    fn full_eps_explores_all_actions() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[epsilon_greedy(&[0.0, 0.0, 1.0], 1.0, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ou_noise_reverts_to_mean() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ou: OuNoise<f64> = OuNoise::with_params(1, 0.0, 0.2, 0.0); // no randomness
        ou.state[0] = 10.0;
        for _ in 0..200 {
            ou.sample(&mut rng);
        }
        assert!(ou.state[0].abs() < 1e-12, "deterministic OU must decay");
    }

    #[test]
    fn ou_noise_is_temporally_correlated() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ou: OuNoise<f64> = OuNoise::new(1);
        let xs: Vec<f64> = (0..2_000).map(|_| ou.sample(&mut rng)[0]).collect();
        // Lag-1 autocorrelation of an OU process with theta=0.15 is ~0.85;
        // iid noise would be ~0.
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
        let cov: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let rho = cov / var;
        assert!(rho > 0.5, "lag-1 autocorrelation {rho} too low for OU");
    }

    #[test]
    fn ou_reset_returns_to_mu() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut ou: OuNoise<f64> = OuNoise::with_params(3, 0.5, 0.15, 0.3);
        ou.sample(&mut rng);
        ou.reset();
        assert_eq!(ou.state, vec![0.5; 3]);
    }

    #[test]
    fn ou_perturb_adds_scaled_noise() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ou: OuNoise<f64> = OuNoise::new(2);
        let proto = vec![0.3, 0.7];
        let zero_scale = ou.clone().perturb(&proto, 0.0, &mut rng);
        assert_eq!(zero_scale, proto);
        let perturbed = ou.perturb(&proto, 1.0, &mut rng);
        assert_ne!(perturbed, proto);
    }
}
