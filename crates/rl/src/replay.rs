//! Experience replay buffer (§2.3 / Algorithm 1 line 13–14).
//!
//! Bounded FIFO: "since the size of B is limited, the oldest sample will be
//! discarded when B is full". Uniform sampling breaks the correlation
//! between consecutive samples (the property the paper cites for stable
//! SGD training). Paper sizes: `|B| = 1000`, mini-batch `H = 32`.
//!
//! Implemented as a fixed ring over a `Vec`: a full buffer overwrites the
//! slot at `head` in place (no pop/push shuffling, no reallocation ever),
//! and the sampling path hands out *slot indices* so the training loop can
//! read transitions by reference while assembling its minibatch — zero
//! transition clones per step.
//!
//! [`ShardedReplayBuffer`] scales replay to N parallel actors feeding one
//! learner (Rapid-style): one mutex-striped ring per actor shard, so
//! concurrent pushes contend only within a shard (never across actors
//! writing their own shards), and uniform cross-shard index sampling on
//! the learner side. Its shard storage is **structure-of-arrays**: each
//! shard owns four flat slabs (states, action one-hots, rewards,
//! next-states) sized `capacity × dim`, so a push is three row `memcpy`s
//! into preowned storage — no per-transition `Vec` allocations, ever —
//! and minibatch assembly on the learner side is a strided copy from the
//! slabs into the training matrices.

use std::cell::RefCell;

use dss_nn::{Elem, Scalar};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::transition::Transition;

thread_local! {
    /// Per-shard length snapshot reused across sampling calls, keeping
    /// the learner's minibatch sampling allocation-free.
    static SHARD_LENS: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Bounded uniform-replay ring buffer.
#[derive(Debug, Clone)]
pub struct ReplayBuffer<A, S: Scalar = Elem> {
    /// Ring storage; `len() < capacity` while filling, then constant.
    buf: Vec<Transition<A, S>>,
    capacity: usize,
    /// Slot holding the *oldest* transition once the ring is full
    /// (always 0 before the first wrap).
    head: usize,
}

impl<A: Clone, S: Scalar> ReplayBuffer<A, S> {
    /// A buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
        }
    }

    /// Stores a transition, overwriting the oldest slot when full.
    pub fn push(&mut self, t: Transition<A, S>) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The transition in ring slot `i` (`i < len()`). Slot order is
    /// arbitrary with respect to insertion age; uniform sampling over
    /// slots is uniform over stored transitions.
    pub fn get(&self, i: usize) -> &Transition<A, S> {
        &self.buf[i]
    }

    /// Uniformly samples `h` slot indices with replacement into `out`
    /// (cleared first) — the allocation-free sampling path used by the
    /// training loops: callers read each transition in place via
    /// [`ReplayBuffer::get`]. No-op when the buffer is empty.
    pub fn sample_indices_into(&self, h: usize, rng: &mut StdRng, out: &mut Vec<usize>) {
        out.clear();
        if self.buf.is_empty() {
            return;
        }
        out.extend((0..h).map(|_| rng.random_range(0..self.buf.len())));
    }

    /// Uniformly samples `h` transitions with replacement (standard DQN
    /// practice; with-replacement keeps sampling O(h) and is statistically
    /// indistinguishable for `h << len`).
    ///
    /// Returns an empty vec when the buffer is empty.
    pub fn sample(&self, h: usize, rng: &mut StdRng) -> Vec<&Transition<A, S>> {
        if self.buf.is_empty() {
            return Vec::new();
        }
        (0..h)
            .map(|_| &self.buf[rng.random_range(0..self.buf.len())])
            .collect()
    }

    /// Iterates over the stored transitions, oldest first (wrap-aware).
    pub fn iter(&self) -> impl Iterator<Item = &Transition<A, S>> {
        let (older, newer) = self.buf.split_at(self.head);
        newer.iter().chain(older)
    }

    /// Ring internals for checkpointing: the stored transitions in **slot
    /// order** (not age order) plus the head index. Slot order matters:
    /// [`ReplayBuffer::sample_indices_into`] addresses storage slots, so a
    /// bit-identical restore must reproduce the exact slot layout — merely
    /// re-pushing the FIFO contents would rotate a wrapped ring and remap
    /// every sampled index.
    pub fn ring(&self) -> (&[Transition<A, S>], usize) {
        (&self.buf, self.head)
    }

    /// Rebuilds a buffer from ring internals captured by
    /// [`ReplayBuffer::ring`]. The restored buffer's sampling and eviction
    /// behaviour continues the original's bit-for-bit.
    ///
    /// # Panics
    /// Panics on an inconsistent image: zero capacity, more slots than
    /// capacity, a nonzero head before the ring has wrapped, or a head
    /// outside the ring.
    pub fn from_ring(capacity: usize, slots: Vec<Transition<A, S>>, head: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(slots.len() <= capacity, "more slots than capacity");
        if slots.len() < capacity {
            assert_eq!(head, 0, "head must be 0 before the ring wraps");
        } else {
            assert!(head < capacity, "head outside the ring");
        }
        let mut buf = Vec::with_capacity(capacity);
        buf.extend(slots);
        Self {
            buf,
            capacity,
            head,
        }
    }
}

/// A slot address in a [`ShardedReplayBuffer`]: `(shard, ring slot)`.
pub type ShardSlot = (u32, u32);

/// One shard of a [`ShardedReplayBuffer`]: a bounded FIFO ring whose
/// storage is four flat structure-of-arrays slabs. Slot `i`'s state lives
/// at `states[i·state_dim .. (i+1)·state_dim]` (and likewise for the other
/// rows), so pushing copies rows into preowned storage and never allocates
/// once the ring has wrapped (the slabs grow monotonically to
/// `capacity × dim` while filling, then stay put — same growth discipline
/// as [`ReplayBuffer`]'s `Vec<Transition>`, minus the per-transition row
/// `Vec`s).
#[derive(Debug)]
struct SoaRing<S> {
    states: Vec<S>,
    actions: Vec<S>,
    rewards: Vec<S>,
    next_states: Vec<S>,
    capacity: usize,
    state_dim: usize,
    action_dim: usize,
    /// Stored transitions (`≤ capacity`).
    len: usize,
    /// Slot holding the oldest transition once full (0 before the wrap).
    head: usize,
}

impl<S: Scalar> SoaRing<S> {
    fn new(capacity: usize, state_dim: usize, action_dim: usize) -> Self {
        Self {
            states: Vec::new(),
            actions: Vec::new(),
            rewards: Vec::new(),
            next_states: Vec::new(),
            capacity,
            state_dim,
            action_dim,
            len: 0,
            head: 0,
        }
    }

    fn push_rows(&mut self, state: &[S], action: &[S], reward: S, next_state: &[S]) {
        assert_eq!(state.len(), self.state_dim, "state width");
        assert_eq!(action.len(), self.action_dim, "action width");
        assert_eq!(next_state.len(), self.state_dim, "next-state width");
        if self.len < self.capacity {
            self.states.extend_from_slice(state);
            self.actions.extend_from_slice(action);
            self.rewards.push(reward);
            self.next_states.extend_from_slice(next_state);
            self.len += 1;
        } else {
            let slot = self.head;
            let sd = self.state_dim;
            let ad = self.action_dim;
            self.states[slot * sd..(slot + 1) * sd].copy_from_slice(state);
            self.actions[slot * ad..(slot + 1) * ad].copy_from_slice(action);
            self.rewards[slot] = reward;
            self.next_states[slot * sd..(slot + 1) * sd].copy_from_slice(next_state);
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn rows(&self, slot: usize) -> (&[S], &[S], S, &[S]) {
        let sd = self.state_dim;
        let ad = self.action_dim;
        (
            &self.states[slot * sd..(slot + 1) * sd],
            &self.actions[slot * ad..(slot + 1) * ad],
            self.rewards[slot],
            &self.next_states[slot * sd..(slot + 1) * sd],
        )
    }
}

/// Mutex-striped sharded replay over structure-of-arrays shard slabs: one
/// bounded FIFO ring per actor shard.
///
/// Row widths are fixed at construction (`state_dim`, `action_dim` — the
/// actor-critic's one-hot action encoding), which is what lets the
/// storage be flat slabs instead of per-transition `Vec`s: a push is
/// three row copies into the shard's slabs through an (almost always
/// uncontended) shard lock, and the learner assembles minibatches by
/// strided copies out of the slabs via [`ShardedReplayBuffer::with_rows`].
///
/// Writers push through `&self` (each actor to its own shard); the
/// learner samples uniformly over *all* stored transitions by weighting
/// shards by their current lengths. Sampled slot addresses stay valid
/// across concurrent pushes: a ring's length never shrinks and its slots
/// are overwritten, never removed (a racing push can at worst make a
/// sampled slot refer to a *newer* transition, which is indistinguishable
/// from having sampled later).
#[derive(Debug)]
pub struct ShardedReplayBuffer<S: Scalar = Elem> {
    shards: Vec<Mutex<SoaRing<S>>>,
    shard_capacity: usize,
    state_dim: usize,
    action_dim: usize,
}

impl<S: Scalar> ShardedReplayBuffer<S> {
    /// `n_shards` rings of `shard_capacity` transitions each, storing
    /// `state_dim`-wide state rows and `action_dim`-wide action rows.
    ///
    /// # Panics
    /// Panics when `n_shards == 0` or `shard_capacity == 0`.
    pub fn new(
        n_shards: usize,
        shard_capacity: usize,
        state_dim: usize,
        action_dim: usize,
    ) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        assert!(shard_capacity > 0, "shard capacity must be positive");
        Self {
            shards: (0..n_shards)
                .map(|_| Mutex::new(SoaRing::new(shard_capacity, state_dim, action_dim)))
                .collect(),
            shard_capacity,
            state_dim,
            action_dim,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard ring capacity.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Width of stored state rows.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Width of stored action rows.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shard_capacity
    }

    /// Total stored transitions (snapshot; other threads may be pushing).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().len == 0)
    }

    /// Stored transitions in one shard.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard % self.shards.len()].lock().len
    }

    /// Stores one transition's rows in `shard` (wrapped modulo the shard
    /// count), evicting that ring's oldest transition when full. The rows
    /// are copied into the shard's slabs — the caller keeps (and reuses)
    /// its buffers, which is what makes a warm collector step
    /// allocation-free end to end.
    ///
    /// # Panics
    /// Panics when a row width does not match the buffer's dimensions.
    pub fn push_rows(&self, shard: usize, state: &[S], action: &[S], reward: S, next_state: &[S]) {
        self.shards[shard % self.shards.len()]
            .lock()
            .push_rows(state, action, reward, next_state);
    }

    /// Uniformly samples `h` slot addresses with replacement over all
    /// stored transitions — shards weighted by length, slots uniform
    /// within a shard — into `out` (cleared first). No-op when empty.
    pub fn sample_indices_into(&self, h: usize, rng: &mut StdRng, out: &mut Vec<ShardSlot>) {
        out.clear();
        SHARD_LENS.with(|lens| {
            let mut lens = lens.borrow_mut();
            lens.clear();
            lens.extend(self.shards.iter().map(|s| s.lock().len));
            let total: usize = lens.iter().sum();
            if total == 0 {
                return;
            }
            out.extend((0..h).map(|_| {
                let mut r = rng.random_range(0..total);
                let shard = lens
                    .iter()
                    .position(|&len| {
                        if r < len {
                            true
                        } else {
                            r -= len;
                            false
                        }
                    })
                    .expect("r < total");
                (shard as u32, r as u32)
            }));
        });
    }

    /// Reads the transition at `slot` in place as
    /// `(state, action, reward, next_state)` slab rows (the shard stays
    /// locked for the duration of `f` — keep it short: copy the rows you
    /// need out).
    pub fn with_rows<R>(
        &self,
        (shard, slot): ShardSlot,
        f: impl FnOnce(&[S], &[S], S, &[S]) -> R,
    ) -> R {
        let guard = self.shards[shard as usize].lock();
        let (s, a, r, n) = guard.rows(slot as usize);
        f(s, a, r, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(reward: f64) -> Transition<usize, f64> {
        Transition::new(vec![reward], 0, reward, vec![reward])
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f64));
        }
        assert_eq!(b.len(), 3);
        let rewards: Vec<f64> = b.iter().map(|x| x.reward).collect();
        assert_eq!(rewards, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn wrap_around_eviction_order_is_fifo() {
        // Capacity 4, 11 pushes: the ring wraps twice; iteration must
        // always present the 4 newest, oldest first.
        let mut b = ReplayBuffer::new(4);
        for i in 0..11usize {
            b.push(t(i as f64));
            let got: Vec<f64> = b.iter().map(|x| x.reward).collect();
            let lo = (i + 1).saturating_sub(4);
            let want: Vec<f64> = (lo..=i).map(|v| v as f64).collect();
            assert_eq!(got, want, "after push {i}");
        }
    }

    #[test]
    fn len_and_is_empty_across_the_wrap_boundary() {
        let mut b = ReplayBuffer::new(3);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        for i in 0..3 {
            b.push(t(i as f64));
            assert_eq!(b.len(), i + 1);
        }
        for i in 3..10 {
            b.push(t(i as f64)); // wrapping overwrites; len pinned at cap
            assert_eq!(b.len(), 3);
            assert!(!b.is_empty());
        }
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn push_never_reallocates_after_fill() {
        let mut b = ReplayBuffer::new(8);
        for i in 0..8 {
            b.push(t(i as f64));
        }
        let ptr = b.buf.as_ptr();
        for i in 8..100 {
            b.push(t(i as f64));
        }
        assert_eq!(b.buf.as_ptr(), ptr, "ring storage moved");
    }

    #[test]
    fn sample_size_and_membership() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = b.sample(32, &mut rng);
        assert_eq!(s.len(), 32);
        assert!(s.iter().all(|x| (0.0..10.0).contains(&x.reward)));
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let b: ReplayBuffer<usize, f64> = ReplayBuffer::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(b.sample(4, &mut rng).is_empty());
        let mut idx = vec![1, 2, 3];
        b.sample_indices_into(4, &mut rng, &mut idx);
        assert!(idx.is_empty(), "stale indices must be cleared");
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut b = ReplayBuffer::new(4);
        for i in 0..4 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for s in b.sample(40_000, &mut rng) {
            counts[s.reward as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn index_sampling_is_roughly_uniform_after_wrap() {
        // Push 2.5× capacity so head sits mid-ring, then check the
        // index-based path is still uniform over live slots.
        let mut b = ReplayBuffer::new(4);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut idx = Vec::new();
        b.sample_indices_into(40_000, &mut rng, &mut idx);
        assert_eq!(idx.len(), 40_000);
        let mut counts = [0usize; 4];
        for &i in &idx {
            counts[i] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02, "{counts:?}");
        }
        // Every sampled slot dereferences to a live transition.
        assert!(idx.iter().all(|&i| b.get(i).reward >= 6.0));
    }

    #[test]
    fn ring_round_trip_preserves_slot_layout_and_sampling() {
        // Wrap the ring so head sits mid-buffer, snapshot, rebuild, and
        // check both representations sample identically and keep evicting
        // in the same order.
        let mut b = ReplayBuffer::new(4);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let (slots, head) = b.ring();
        assert_eq!(head, 2, "10 pushes into 4 slots leave head at 2");
        let mut restored = ReplayBuffer::from_ring(4, slots.to_vec(), head);
        // Identical slot layout → identical index-sampled transitions.
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let (mut ia, mut ib) = (Vec::new(), Vec::new());
        b.sample_indices_into(64, &mut rng_a, &mut ia);
        restored.sample_indices_into(64, &mut rng_b, &mut ib);
        assert_eq!(ia, ib);
        for &i in &ia {
            assert_eq!(b.get(i).reward, restored.get(i).reward);
        }
        // Continued pushes evict the same slots in both.
        b.push(t(99.0));
        restored.push(t(99.0));
        let got: Vec<f64> = restored.iter().map(|x| x.reward).collect();
        let want: Vec<f64> = b.iter().map(|x| x.reward).collect();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "head must be 0")]
    fn from_ring_rejects_head_before_wrap() {
        let _ = ReplayBuffer::from_ring(4, vec![t(0.0)], 1);
    }

    /// Pushes one sharded row keyed by `id` (state/next carry the id too,
    /// so slab-row integrity is checkable end to end).
    fn push_id(buf: &ShardedReplayBuffer<f64>, shard: usize, id: f64) {
        buf.push_rows(shard, &[id, -id], &[id], id, &[id + 0.5, id - 0.5]);
    }

    #[test]
    fn sharded_rows_roundtrip_and_evict_fifo() {
        let buf: ShardedReplayBuffer<f64> = ShardedReplayBuffer::new(1, 3, 2, 1);
        assert_eq!((buf.state_dim(), buf.action_dim()), (2, 1));
        for i in 0..5 {
            push_id(&buf, 0, i as f64);
        }
        assert_eq!(buf.shard_len(0), 3);
        // Ring of 3 after 5 pushes: slots hold {3, 4, 2} (head overwrote
        // the two oldest in place); all rows stay consistent per slot.
        let mut ids: Vec<f64> = (0..3)
            .map(|slot| {
                buf.with_rows((0, slot), |s, a, r, n| {
                    assert_eq!(s, &[r, -r]);
                    assert_eq!(a, &[r]);
                    assert_eq!(n, &[r + 0.5, r - 0.5]);
                    r
                })
            })
            .collect();
        ids.sort_by(f64::total_cmp);
        assert_eq!(ids, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn sharded_push_never_allocates_after_wrap() {
        let buf: ShardedReplayBuffer<f64> = ShardedReplayBuffer::new(1, 8, 2, 1);
        for i in 0..8 {
            push_id(&buf, 0, i as f64);
        }
        let ptr = buf.shards[0].lock().states.as_ptr();
        for i in 8..100 {
            push_id(&buf, 0, i as f64);
        }
        assert_eq!(
            buf.shards[0].lock().states.as_ptr(),
            ptr,
            "slab storage moved"
        );
    }

    #[test]
    fn sharded_concurrent_pushes_lose_and_duplicate_nothing() {
        // 4 writer tasks × 500 pushes of globally unique ids into their
        // own shards, through the workpool the production collector uses.
        // Capacity is ample, so every id must be present exactly once.
        const WRITERS: usize = 4;
        const PER_WRITER: usize = 500;
        let buf: ShardedReplayBuffer<f64> = ShardedReplayBuffer::new(WRITERS, PER_WRITER, 2, 1);
        let pool = workpool::Pool::new(WRITERS);
        pool.scope(|s| {
            let buf = &buf;
            for w in 0..WRITERS {
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        push_id(buf, w, (w * PER_WRITER + i) as f64);
                    }
                });
            }
        });
        assert_eq!(buf.len(), WRITERS * PER_WRITER);
        let mut seen = std::collections::HashSet::new();
        for shard in 0..WRITERS {
            assert_eq!(buf.shard_len(shard), PER_WRITER);
            for slot in 0..PER_WRITER {
                let id = buf.with_rows((shard as u32, slot as u32), |s, _, r, _| {
                    assert_eq!(s, &[r, -r], "torn row");
                    r as usize
                });
                assert!(seen.insert(id), "duplicated transition {id}");
            }
        }
        assert_eq!(seen.len(), WRITERS * PER_WRITER, "lost transitions");
    }

    #[test]
    fn sharded_concurrent_sampling_while_pushing_stays_valid() {
        // Readers sample while writers push: every address handed out must
        // dereference without panicking (slots never disappear), and every
        // row read must be internally consistent (no torn writes).
        let buf: ShardedReplayBuffer<f64> = ShardedReplayBuffer::new(2, 64, 2, 1);
        push_id(&buf, 0, 0.0);
        push_id(&buf, 1, 1.0);
        let pool = workpool::Pool::new(4);
        pool.scope(|s| {
            let buf = &buf;
            for w in 0..2usize {
                s.spawn(move || {
                    for i in 0..2000 {
                        push_id(buf, w, i as f64);
                    }
                });
            }
            for r in 0..2u64 {
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(r);
                    let mut idx = Vec::new();
                    for _ in 0..200 {
                        buf.sample_indices_into(16, &mut rng, &mut idx);
                        for &slot in &idx {
                            buf.with_rows(slot, |s, _, r, _| {
                                assert!(r >= 0.0);
                                assert_eq!(s, &[r, -r], "torn row");
                            });
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn sharded_sampling_is_uniform_within_and_across_shards() {
        // 3 shards with unequal fill (8 / 16 / 32): cross-shard sampling
        // must weight shards by length, and a χ² test per shard must not
        // reject within-shard uniformity.
        let buf: ShardedReplayBuffer<f64> = ShardedReplayBuffer::new(3, 32, 2, 1);
        let fills = [8usize, 16, 32];
        for (shard, &fill) in fills.iter().enumerate() {
            for i in 0..fill {
                push_id(&buf, shard, i as f64);
            }
        }
        let total: usize = fills.iter().sum();
        let draws = 56_000usize;
        let mut rng = StdRng::seed_from_u64(9);
        let mut idx = Vec::new();
        buf.sample_indices_into(draws, &mut rng, &mut idx);
        assert_eq!(idx.len(), draws);

        let mut shard_counts = [0usize; 3];
        let mut slot_counts = vec![vec![0usize; 32]; 3];
        for &(shard, slot) in &idx {
            shard_counts[shard as usize] += 1;
            slot_counts[shard as usize][slot as usize] += 1;
        }
        // Across shards: proportional to fill within 3 σ.
        for (shard, &fill) in fills.iter().enumerate() {
            let p = fill as f64 / total as f64;
            let expect = draws as f64 * p;
            let sigma = (draws as f64 * p * (1.0 - p)).sqrt();
            let dev = (shard_counts[shard] as f64 - expect).abs();
            assert!(dev < 3.0 * sigma, "shard {shard}: {shard_counts:?}");
        }
        // Within each shard: Pearson χ² against uniform. 99.9th-percentile
        // critical values for df = fill − 1.
        let chi_crit = [24.32, 37.70, 61.10];
        for (shard, &fill) in fills.iter().enumerate() {
            let expect = shard_counts[shard] as f64 / fill as f64;
            let chi2: f64 = slot_counts[shard][..fill]
                .iter()
                .map(|&c| {
                    let d = c as f64 - expect;
                    d * d / expect
                })
                .sum();
            assert!(
                chi2 < chi_crit[shard],
                "shard {shard} χ² = {chi2:.1} (crit {})",
                chi_crit[shard]
            );
            // And no slot above the fill is ever produced.
            assert!(slot_counts[shard][fill..].iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn sharded_empty_sample_is_noop() {
        let buf: ShardedReplayBuffer<f64> = ShardedReplayBuffer::new(2, 4, 2, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut idx = vec![(7u32, 7u32)];
        buf.sample_indices_into(5, &mut rng, &mut idx);
        assert!(idx.is_empty(), "stale indices must be cleared");
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "state width")]
    fn sharded_rejects_mismatched_row_width() {
        let buf: ShardedReplayBuffer<f64> = ShardedReplayBuffer::new(1, 4, 2, 1);
        buf.push_rows(0, &[1.0], &[0.0], 0.0, &[0.0, 0.0]);
    }
}
