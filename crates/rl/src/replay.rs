//! Experience replay buffer (§2.3 / Algorithm 1 line 13–14).
//!
//! Bounded FIFO: "since the size of B is limited, the oldest sample will be
//! discarded when B is full". Uniform sampling breaks the correlation
//! between consecutive samples (the property the paper cites for stable
//! SGD training). Paper sizes: `|B| = 1000`, mini-batch `H = 32`.
//!
//! Implemented as a fixed ring over a `Vec`: a full buffer overwrites the
//! slot at `head` in place (no pop/push shuffling, no reallocation ever),
//! and the sampling path hands out *slot indices* so the training loop can
//! read transitions by reference while assembling its minibatch — zero
//! transition clones per step.
//!
//! [`ShardedReplayBuffer`] scales the same ring to N parallel actors
//! feeding one learner (Rapid-style): one mutex-striped ring per actor
//! shard, so concurrent pushes contend only within a shard (never across
//! actors writing their own shards), and uniform cross-shard index
//! sampling on the learner side.

use std::cell::RefCell;

use dss_nn::{Elem, Scalar};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::transition::Transition;

thread_local! {
    /// Per-shard length snapshot reused across sampling calls, keeping
    /// the learner's minibatch sampling allocation-free.
    static SHARD_LENS: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Bounded uniform-replay ring buffer.
#[derive(Debug, Clone)]
pub struct ReplayBuffer<A, S: Scalar = Elem> {
    /// Ring storage; `len() < capacity` while filling, then constant.
    buf: Vec<Transition<A, S>>,
    capacity: usize,
    /// Slot holding the *oldest* transition once the ring is full
    /// (always 0 before the first wrap).
    head: usize,
}

impl<A: Clone, S: Scalar> ReplayBuffer<A, S> {
    /// A buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
        }
    }

    /// Stores a transition, overwriting the oldest slot when full.
    pub fn push(&mut self, t: Transition<A, S>) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The transition in ring slot `i` (`i < len()`). Slot order is
    /// arbitrary with respect to insertion age; uniform sampling over
    /// slots is uniform over stored transitions.
    pub fn get(&self, i: usize) -> &Transition<A, S> {
        &self.buf[i]
    }

    /// Uniformly samples `h` slot indices with replacement into `out`
    /// (cleared first) — the allocation-free sampling path used by the
    /// training loops: callers read each transition in place via
    /// [`ReplayBuffer::get`]. No-op when the buffer is empty.
    pub fn sample_indices_into(&self, h: usize, rng: &mut StdRng, out: &mut Vec<usize>) {
        out.clear();
        if self.buf.is_empty() {
            return;
        }
        out.extend((0..h).map(|_| rng.random_range(0..self.buf.len())));
    }

    /// Uniformly samples `h` transitions with replacement (standard DQN
    /// practice; with-replacement keeps sampling O(h) and is statistically
    /// indistinguishable for `h << len`).
    ///
    /// Returns an empty vec when the buffer is empty.
    pub fn sample(&self, h: usize, rng: &mut StdRng) -> Vec<&Transition<A, S>> {
        if self.buf.is_empty() {
            return Vec::new();
        }
        (0..h)
            .map(|_| &self.buf[rng.random_range(0..self.buf.len())])
            .collect()
    }

    /// Iterates over the stored transitions, oldest first (wrap-aware).
    pub fn iter(&self) -> impl Iterator<Item = &Transition<A, S>> {
        let (older, newer) = self.buf.split_at(self.head);
        newer.iter().chain(older)
    }
}

/// A slot address in a [`ShardedReplayBuffer`]: `(shard, ring slot)`.
pub type ShardSlot = (u32, u32);

/// Mutex-striped sharded replay: one bounded FIFO ring per actor shard.
///
/// Writers push through `&self` (each actor to its own shard, so the
/// common case is an uncontended lock); the learner samples uniformly over
/// *all* stored transitions by weighting shards by their current lengths
/// and reads minibatch rows in place via [`ShardedReplayBuffer::with`].
/// Sampled slot addresses stay valid across concurrent pushes: a ring's
/// length never shrinks and its slots are overwritten, never removed (a
/// racing push can at worst make a sampled slot refer to a *newer*
/// transition, which is indistinguishable from having sampled later).
#[derive(Debug)]
pub struct ShardedReplayBuffer<A, S: Scalar = Elem> {
    shards: Vec<Mutex<ReplayBuffer<A, S>>>,
    shard_capacity: usize,
}

impl<A: Clone, S: Scalar> ShardedReplayBuffer<A, S> {
    /// `n_shards` rings of `shard_capacity` transitions each.
    ///
    /// # Panics
    /// Panics when `n_shards == 0` or `shard_capacity == 0`.
    pub fn new(n_shards: usize, shard_capacity: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        Self {
            shards: (0..n_shards)
                .map(|_| Mutex::new(ReplayBuffer::new(shard_capacity)))
                .collect(),
            shard_capacity,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard ring capacity.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shard_capacity
    }

    /// Total stored transitions (snapshot; other threads may be pushing).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Stored transitions in one shard.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard % self.shards.len()].lock().len()
    }

    /// Stores `t` in `shard` (wrapped modulo the shard count), evicting
    /// that ring's oldest transition when full.
    pub fn push(&self, shard: usize, t: Transition<A, S>) {
        self.shards[shard % self.shards.len()].lock().push(t);
    }

    /// Uniformly samples `h` slot addresses with replacement over all
    /// stored transitions — shards weighted by length, slots uniform
    /// within a shard — into `out` (cleared first). No-op when empty.
    pub fn sample_indices_into(&self, h: usize, rng: &mut StdRng, out: &mut Vec<ShardSlot>) {
        out.clear();
        SHARD_LENS.with(|lens| {
            let mut lens = lens.borrow_mut();
            lens.clear();
            lens.extend(self.shards.iter().map(|s| s.lock().len()));
            let total: usize = lens.iter().sum();
            if total == 0 {
                return;
            }
            out.extend((0..h).map(|_| {
                let mut r = rng.random_range(0..total);
                let shard = lens
                    .iter()
                    .position(|&len| {
                        if r < len {
                            true
                        } else {
                            r -= len;
                            false
                        }
                    })
                    .expect("r < total");
                (shard as u32, r as u32)
            }));
        });
    }

    /// Reads the transition at `slot` in place (the shard stays locked for
    /// the duration of `f` — keep it short: copy the rows you need out).
    pub fn with<R>(&self, (shard, slot): ShardSlot, f: impl FnOnce(&Transition<A, S>) -> R) -> R {
        f(self.shards[shard as usize].lock().get(slot as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(reward: f64) -> Transition<usize, f64> {
        Transition::new(vec![reward], 0, reward, vec![reward])
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f64));
        }
        assert_eq!(b.len(), 3);
        let rewards: Vec<f64> = b.iter().map(|x| x.reward).collect();
        assert_eq!(rewards, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn wrap_around_eviction_order_is_fifo() {
        // Capacity 4, 11 pushes: the ring wraps twice; iteration must
        // always present the 4 newest, oldest first.
        let mut b = ReplayBuffer::new(4);
        for i in 0..11usize {
            b.push(t(i as f64));
            let got: Vec<f64> = b.iter().map(|x| x.reward).collect();
            let lo = (i + 1).saturating_sub(4);
            let want: Vec<f64> = (lo..=i).map(|v| v as f64).collect();
            assert_eq!(got, want, "after push {i}");
        }
    }

    #[test]
    fn len_and_is_empty_across_the_wrap_boundary() {
        let mut b = ReplayBuffer::new(3);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        for i in 0..3 {
            b.push(t(i as f64));
            assert_eq!(b.len(), i + 1);
        }
        for i in 3..10 {
            b.push(t(i as f64)); // wrapping overwrites; len pinned at cap
            assert_eq!(b.len(), 3);
            assert!(!b.is_empty());
        }
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn push_never_reallocates_after_fill() {
        let mut b = ReplayBuffer::new(8);
        for i in 0..8 {
            b.push(t(i as f64));
        }
        let ptr = b.buf.as_ptr();
        for i in 8..100 {
            b.push(t(i as f64));
        }
        assert_eq!(b.buf.as_ptr(), ptr, "ring storage moved");
    }

    #[test]
    fn sample_size_and_membership() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = b.sample(32, &mut rng);
        assert_eq!(s.len(), 32);
        assert!(s.iter().all(|x| (0.0..10.0).contains(&x.reward)));
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let b: ReplayBuffer<usize, f64> = ReplayBuffer::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(b.sample(4, &mut rng).is_empty());
        let mut idx = vec![1, 2, 3];
        b.sample_indices_into(4, &mut rng, &mut idx);
        assert!(idx.is_empty(), "stale indices must be cleared");
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut b = ReplayBuffer::new(4);
        for i in 0..4 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for s in b.sample(40_000, &mut rng) {
            counts[s.reward as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn index_sampling_is_roughly_uniform_after_wrap() {
        // Push 2.5× capacity so head sits mid-ring, then check the
        // index-based path is still uniform over live slots.
        let mut b = ReplayBuffer::new(4);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut idx = Vec::new();
        b.sample_indices_into(40_000, &mut rng, &mut idx);
        assert_eq!(idx.len(), 40_000);
        let mut counts = [0usize; 4];
        for &i in &idx {
            counts[i] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02, "{counts:?}");
        }
        // Every sampled slot dereferences to a live transition.
        assert!(idx.iter().all(|&i| b.get(i).reward >= 6.0));
    }

    #[test]
    fn sharded_concurrent_pushes_lose_and_duplicate_nothing() {
        // 4 writer tasks × 500 pushes of globally unique ids into their
        // own shards, through the workpool the production collector uses.
        // Capacity is ample, so every id must be present exactly once.
        const WRITERS: usize = 4;
        const PER_WRITER: usize = 500;
        let buf: ShardedReplayBuffer<usize, f64> = ShardedReplayBuffer::new(WRITERS, PER_WRITER);
        let pool = workpool::Pool::new(WRITERS);
        pool.scope(|s| {
            let buf = &buf;
            for w in 0..WRITERS {
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        buf.push(w, t((w * PER_WRITER + i) as f64));
                    }
                });
            }
        });
        assert_eq!(buf.len(), WRITERS * PER_WRITER);
        let mut seen = std::collections::HashSet::new();
        for shard in 0..WRITERS {
            assert_eq!(buf.shard_len(shard), PER_WRITER);
            for slot in 0..PER_WRITER {
                let id = buf.with((shard as u32, slot as u32), |t| t.reward as usize);
                assert!(seen.insert(id), "duplicated transition {id}");
            }
        }
        assert_eq!(seen.len(), WRITERS * PER_WRITER, "lost transitions");
    }

    #[test]
    fn sharded_concurrent_sampling_while_pushing_stays_valid() {
        // Readers sample while writers push: every address handed out must
        // dereference without panicking (slots never disappear).
        let buf: ShardedReplayBuffer<usize, f64> = ShardedReplayBuffer::new(2, 64);
        buf.push(0, t(0.0));
        buf.push(1, t(1.0));
        let pool = workpool::Pool::new(4);
        pool.scope(|s| {
            let buf = &buf;
            for w in 0..2usize {
                s.spawn(move || {
                    for i in 0..2000 {
                        buf.push(w, t(i as f64));
                    }
                });
            }
            for r in 0..2u64 {
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(r);
                    let mut idx = Vec::new();
                    for _ in 0..200 {
                        buf.sample_indices_into(16, &mut rng, &mut idx);
                        for &slot in &idx {
                            buf.with(slot, |t| assert!(t.reward >= 0.0));
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn sharded_sampling_is_uniform_within_and_across_shards() {
        // 3 shards with unequal fill (8 / 16 / 32): cross-shard sampling
        // must weight shards by length, and a χ² test per shard must not
        // reject within-shard uniformity.
        let buf: ShardedReplayBuffer<usize, f64> = ShardedReplayBuffer::new(3, 32);
        let fills = [8usize, 16, 32];
        for (shard, &fill) in fills.iter().enumerate() {
            for i in 0..fill {
                buf.push(shard, t(i as f64));
            }
        }
        let total: usize = fills.iter().sum();
        let draws = 56_000usize;
        let mut rng = StdRng::seed_from_u64(9);
        let mut idx = Vec::new();
        buf.sample_indices_into(draws, &mut rng, &mut idx);
        assert_eq!(idx.len(), draws);

        let mut shard_counts = [0usize; 3];
        let mut slot_counts = vec![vec![0usize; 32]; 3];
        for &(shard, slot) in &idx {
            shard_counts[shard as usize] += 1;
            slot_counts[shard as usize][slot as usize] += 1;
        }
        // Across shards: proportional to fill within 3 σ.
        for (shard, &fill) in fills.iter().enumerate() {
            let p = fill as f64 / total as f64;
            let expect = draws as f64 * p;
            let sigma = (draws as f64 * p * (1.0 - p)).sqrt();
            let dev = (shard_counts[shard] as f64 - expect).abs();
            assert!(dev < 3.0 * sigma, "shard {shard}: {shard_counts:?}");
        }
        // Within each shard: Pearson χ² against uniform. 99.9th-percentile
        // critical values for df = fill − 1.
        let chi_crit = [24.32, 37.70, 61.10];
        for (shard, &fill) in fills.iter().enumerate() {
            let expect = shard_counts[shard] as f64 / fill as f64;
            let chi2: f64 = slot_counts[shard][..fill]
                .iter()
                .map(|&c| {
                    let d = c as f64 - expect;
                    d * d / expect
                })
                .sum();
            assert!(
                chi2 < chi_crit[shard],
                "shard {shard} χ² = {chi2:.1} (crit {})",
                chi_crit[shard]
            );
            // And no slot above the fill is ever produced.
            assert!(slot_counts[shard][fill..].iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn sharded_empty_sample_is_noop() {
        let buf: ShardedReplayBuffer<usize, f64> = ShardedReplayBuffer::new(2, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut idx = vec![(7u32, 7u32)];
        buf.sample_indices_into(5, &mut rng, &mut idx);
        assert!(idx.is_empty(), "stale indices must be cleared");
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 8);
    }
}
