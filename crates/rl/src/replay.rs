//! Experience replay buffer (§2.3 / Algorithm 1 line 13–14).
//!
//! Bounded FIFO: "since the size of B is limited, the oldest sample will be
//! discarded when B is full". Uniform sampling breaks the correlation
//! between consecutive samples (the property the paper cites for stable
//! SGD training). Paper sizes: `|B| = 1000`, mini-batch `H = 32`.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::transition::Transition;

/// Bounded uniform-replay buffer.
#[derive(Debug, Clone)]
pub struct ReplayBuffer<A> {
    buf: VecDeque<Transition<A>>,
    capacity: usize,
}

impl<A: Clone> ReplayBuffer<A> {
    /// A buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition<A>) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(t);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Uniformly samples `h` transitions with replacement (standard DQN
    /// practice; with-replacement keeps sampling O(h) and is statistically
    /// indistinguishable for `h << len`).
    ///
    /// Returns an empty vec when the buffer is empty.
    pub fn sample(&self, h: usize, rng: &mut StdRng) -> Vec<&Transition<A>> {
        if self.buf.is_empty() {
            return Vec::new();
        }
        (0..h)
            .map(|_| &self.buf[rng.random_range(0..self.buf.len())])
            .collect()
    }

    /// Iterates over the stored transitions, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Transition<A>> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(reward: f64) -> Transition<usize> {
        Transition::new(vec![reward], 0, reward, vec![reward])
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f64));
        }
        assert_eq!(b.len(), 3);
        let rewards: Vec<f64> = b.iter().map(|x| x.reward).collect();
        assert_eq!(rewards, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn sample_size_and_membership() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = b.sample(32, &mut rng);
        assert_eq!(s.len(), 32);
        assert!(s.iter().all(|x| (0.0..10.0).contains(&x.reward)));
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let b: ReplayBuffer<usize> = ReplayBuffer::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(b.sample(4, &mut rng).is_empty());
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut b = ReplayBuffer::new(4);
        for i in 0..4 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for s in b.sample(40_000, &mut rng) {
            counts[s.reward as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02, "{counts:?}");
        }
    }
}
