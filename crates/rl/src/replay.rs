//! Experience replay buffer (§2.3 / Algorithm 1 line 13–14).
//!
//! Bounded FIFO: "since the size of B is limited, the oldest sample will be
//! discarded when B is full". Uniform sampling breaks the correlation
//! between consecutive samples (the property the paper cites for stable
//! SGD training). Paper sizes: `|B| = 1000`, mini-batch `H = 32`.
//!
//! Implemented as a fixed ring over a `Vec`: a full buffer overwrites the
//! slot at `head` in place (no pop/push shuffling, no reallocation ever),
//! and the sampling path hands out *slot indices* so the training loop can
//! read transitions by reference while assembling its minibatch — zero
//! transition clones per step.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::transition::Transition;

/// Bounded uniform-replay ring buffer.
#[derive(Debug, Clone)]
pub struct ReplayBuffer<A> {
    /// Ring storage; `len() < capacity` while filling, then constant.
    buf: Vec<Transition<A>>,
    capacity: usize,
    /// Slot holding the *oldest* transition once the ring is full
    /// (always 0 before the first wrap).
    head: usize,
}

impl<A: Clone> ReplayBuffer<A> {
    /// A buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
        }
    }

    /// Stores a transition, overwriting the oldest slot when full.
    pub fn push(&mut self, t: Transition<A>) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The transition in ring slot `i` (`i < len()`). Slot order is
    /// arbitrary with respect to insertion age; uniform sampling over
    /// slots is uniform over stored transitions.
    pub fn get(&self, i: usize) -> &Transition<A> {
        &self.buf[i]
    }

    /// Uniformly samples `h` slot indices with replacement into `out`
    /// (cleared first) — the allocation-free sampling path used by the
    /// training loops: callers read each transition in place via
    /// [`ReplayBuffer::get`]. No-op when the buffer is empty.
    pub fn sample_indices_into(&self, h: usize, rng: &mut StdRng, out: &mut Vec<usize>) {
        out.clear();
        if self.buf.is_empty() {
            return;
        }
        out.extend((0..h).map(|_| rng.random_range(0..self.buf.len())));
    }

    /// Uniformly samples `h` transitions with replacement (standard DQN
    /// practice; with-replacement keeps sampling O(h) and is statistically
    /// indistinguishable for `h << len`).
    ///
    /// Returns an empty vec when the buffer is empty.
    pub fn sample(&self, h: usize, rng: &mut StdRng) -> Vec<&Transition<A>> {
        if self.buf.is_empty() {
            return Vec::new();
        }
        (0..h)
            .map(|_| &self.buf[rng.random_range(0..self.buf.len())])
            .collect()
    }

    /// Iterates over the stored transitions, oldest first (wrap-aware).
    pub fn iter(&self) -> impl Iterator<Item = &Transition<A>> {
        let (older, newer) = self.buf.split_at(self.head);
        newer.iter().chain(older)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(reward: f64) -> Transition<usize> {
        Transition::new(vec![reward], 0, reward, vec![reward])
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f64));
        }
        assert_eq!(b.len(), 3);
        let rewards: Vec<f64> = b.iter().map(|x| x.reward).collect();
        assert_eq!(rewards, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn wrap_around_eviction_order_is_fifo() {
        // Capacity 4, 11 pushes: the ring wraps twice; iteration must
        // always present the 4 newest, oldest first.
        let mut b = ReplayBuffer::new(4);
        for i in 0..11usize {
            b.push(t(i as f64));
            let got: Vec<f64> = b.iter().map(|x| x.reward).collect();
            let lo = (i + 1).saturating_sub(4);
            let want: Vec<f64> = (lo..=i).map(|v| v as f64).collect();
            assert_eq!(got, want, "after push {i}");
        }
    }

    #[test]
    fn len_and_is_empty_across_the_wrap_boundary() {
        let mut b = ReplayBuffer::new(3);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        for i in 0..3 {
            b.push(t(i as f64));
            assert_eq!(b.len(), i + 1);
        }
        for i in 3..10 {
            b.push(t(i as f64)); // wrapping overwrites; len pinned at cap
            assert_eq!(b.len(), 3);
            assert!(!b.is_empty());
        }
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn push_never_reallocates_after_fill() {
        let mut b = ReplayBuffer::new(8);
        for i in 0..8 {
            b.push(t(i as f64));
        }
        let ptr = b.buf.as_ptr();
        for i in 8..100 {
            b.push(t(i as f64));
        }
        assert_eq!(b.buf.as_ptr(), ptr, "ring storage moved");
    }

    #[test]
    fn sample_size_and_membership() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = b.sample(32, &mut rng);
        assert_eq!(s.len(), 32);
        assert!(s.iter().all(|x| (0.0..10.0).contains(&x.reward)));
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let b: ReplayBuffer<usize> = ReplayBuffer::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(b.sample(4, &mut rng).is_empty());
        let mut idx = vec![1, 2, 3];
        b.sample_indices_into(4, &mut rng, &mut idx);
        assert!(idx.is_empty(), "stale indices must be cleared");
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut b = ReplayBuffer::new(4);
        for i in 0..4 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for s in b.sample(40_000, &mut rng) {
            counts[s.reward as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn index_sampling_is_roughly_uniform_after_wrap() {
        // Push 2.5× capacity so head sits mid-ring, then check the
        // index-based path is still uniform over live slots.
        let mut b = ReplayBuffer::new(4);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut idx = Vec::new();
        b.sample_indices_into(40_000, &mut rng, &mut idx);
        assert_eq!(idx.len(), 40_000);
        let mut counts = [0usize; 4];
        for &i in &idx {
            counts[i] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02, "{counts:?}");
        }
        // Every sampled slot dereferences to a live transition.
        assert!(idx.iter().all(|&i| b.get(i).reward >= 6.0));
    }
}
