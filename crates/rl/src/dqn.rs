//! The DQN-based baseline (§3.2).
//!
//! To make the assignment problem's `M^N` action space DQN-tractable, the
//! paper restricts each action to *assigning one thread to one machine*
//! (`|A| = N·M`). The Q-network maps a state to one Q-value per such move;
//! ε-greedy selects among them; training is classic DQN with experience
//! replay and a periodically synchronized target network. The paper's point
//! — and this reproduction's Figures 6c/7 — is that this restriction
//! explores the full space poorly at scale.

use rand::rngs::StdRng;

use dss_nn::{mse_loss_grad, Activation, Adam, Matrix, Mlp};

use crate::explore::epsilon_greedy;
use crate::replay::ReplayBuffer;
use crate::transition::Transition;

/// DQN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DqnConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// Replay capacity |B|.
    pub replay_capacity: usize,
    /// Mini-batch size H.
    pub batch: usize,
    /// Target-network hard-sync period in train steps (the paper's
    /// "updated every C > 1 epochs").
    pub target_sync_every: u64,
    /// Learning rate.
    pub lr: f64,
    /// Hidden widths (64/32 as in the actor-critic nets).
    pub hidden: [usize; 2],
    /// Seed.
    pub seed: u64,
    /// Double DQN (the paper's reference \[23\]): evaluate the *online*
    /// network's argmax with the *target* network, curbing the max
    /// operator's overestimation bias. Off by default — the paper's
    /// baseline is plain DQN — and exercised by the `double-dqn` ablation.
    pub double: bool,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            replay_capacity: 1000,
            batch: 32,
            target_sync_every: 25,
            lr: 1e-3,
            hidden: [64, 32],
            seed: 42,
            double: false,
        }
    }
}

/// The DQN agent over single-move actions.
pub struct DqnAgent {
    q: Mlp,
    target_q: Mlp,
    opt: Adam,
    replay: ReplayBuffer<usize>,
    config: DqnConfig,
    state_dim: usize,
    n_actions: usize,
    train_steps: u64,
}

impl DqnAgent {
    /// Builds an agent with `n_actions = N·M` single-move actions.
    pub fn new(state_dim: usize, n_actions: usize, config: DqnConfig) -> Self {
        assert!(state_dim > 0 && n_actions > 0, "degenerate dimensions");
        let [h1, h2] = config.hidden;
        let q = Mlp::new(
            &[state_dim, h1, h2, n_actions],
            &[Activation::Tanh, Activation::Tanh, Activation::Identity],
            config.seed,
        );
        let mut target_q = q.clone();
        target_q.copy_params_from(&q);
        Self {
            opt: Adam::new(config.lr),
            replay: ReplayBuffer::new(config.replay_capacity),
            q,
            target_q,
            config,
            state_dim,
            n_actions,
            train_steps: 0,
        }
    }

    /// Number of discrete actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Stored transitions.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Training steps performed.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Q-values for all actions in `state`.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.state_dim, "state width");
        self.q.infer_one(state)
    }

    /// ε-greedy action selection.
    pub fn select_action(&self, state: &[f64], eps: f64, rng: &mut StdRng) -> usize {
        epsilon_greedy(&self.q_values(state), eps, rng)
    }

    /// Stores an experience sample.
    pub fn store(&mut self, t: Transition<usize>) {
        assert_eq!(t.state.len(), self.state_dim, "state width");
        assert!(t.action < self.n_actions, "action index out of range");
        self.replay.push(t);
    }

    /// One DQN training step; returns the TD loss, or `None` when no data.
    pub fn train_step(&mut self, rng: &mut StdRng) -> Option<f64> {
        if self.replay.is_empty() {
            return None;
        }
        let batch: Vec<Transition<usize>> = self
            .replay
            .sample(self.config.batch, rng)
            .into_iter()
            .cloned()
            .collect();
        let h = batch.len();

        // TD targets from the frozen target network. Plain DQN takes the
        // target net's own max; double DQN selects with the online net and
        // evaluates with the target net.
        let next_states = Matrix::from_fn(h, self.state_dim, |r, c| batch[r].next_state[c]);
        let next_q_target = self.target_q.infer(&next_states);
        let next_q_online = self
            .config
            .double
            .then(|| self.q.infer(&next_states));
        let targets: Vec<f64> = batch
            .iter()
            .enumerate()
            .map(|(r, t)| {
                let best = match &next_q_online {
                    Some(online) => {
                        let row = online.row(r);
                        let argmax = (0..row.len())
                            .max_by(|&a, &b| row[a].partial_cmp(&row[b]).expect("NaN Q"))
                            .expect("non-empty action set");
                        next_q_target[(r, argmax)]
                    }
                    None => next_q_target
                        .row(r)
                        .iter()
                        .copied()
                        .fold(f64::NEG_INFINITY, f64::max),
                };
                t.reward + self.config.gamma * best
            })
            .collect();

        // Forward, then build a gradient that touches only chosen actions.
        let states = Matrix::from_fn(h, self.state_dim, |r, c| batch[r].state[c]);
        let pred = self.q.forward(&states);
        let pred_chosen = Matrix::from_fn(h, 1, |r, _| pred[(r, batch[r].action)]);
        let target_mat = Matrix::from_fn(h, 1, |r, _| targets[r]);
        let (loss, grad_chosen) = mse_loss_grad(&pred_chosen, &target_mat);
        let mut grad_full = Matrix::zeros(h, self.n_actions);
        for (r, t) in batch.iter().enumerate() {
            grad_full[(r, t.action)] = grad_chosen[(r, 0)];
        }
        self.q.zero_grad();
        self.q.backward(&grad_full);
        self.q.apply_gradients(&mut self.opt);

        self.train_steps += 1;
        if self.train_steps.is_multiple_of(self.config.target_sync_every) {
            self.target_q.copy_params_from(&self.q);
        }
        Some(loss)
    }

    /// Offline pre-training on the full historical sample set, then seeds
    /// the bounded online buffer with the most recent `|B|` samples.
    pub fn pretrain(&mut self, samples: Vec<Transition<usize>>, steps: usize, rng: &mut StdRng) {
        if samples.is_empty() {
            return;
        }
        self.replay = ReplayBuffer::new(samples.len().max(1));
        for s in samples {
            self.store(s);
        }
        for _ in 0..steps {
            self.train_step(rng);
        }
        let mut online = ReplayBuffer::new(self.config.replay_capacity);
        let skip = self
            .replay
            .len()
            .saturating_sub(self.config.replay_capacity);
        for t in self.replay.iter().skip(skip) {
            online.push(t.clone());
        }
        self.replay = online;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn config() -> DqnConfig {
        DqnConfig {
            replay_capacity: 512,
            batch: 16,
            lr: 5e-3,
            hidden: [16, 8],
            seed: 5,
            ..DqnConfig::default()
        }
    }

    #[test]
    fn q_values_shape() {
        let agent = DqnAgent::new(3, 6, config());
        assert_eq!(agent.q_values(&[0.1, 0.2, 0.3]).len(), 6);
        assert_eq!(agent.n_actions(), 6);
    }

    #[test]
    fn learns_bandit_preference() {
        // Contextual bandit: action 2 always pays 1, others 0.
        let mut agent = DqnAgent::new(2, 4, config());
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..400 {
            let a = rng.random_range(0..4);
            let r = if a == 2 { 1.0 } else { 0.0 };
            agent.store(Transition::new(vec![0.3, 0.7], a, r, vec![0.3, 0.7]));
            agent.train_step(&mut rng);
        }
        let q = agent.q_values(&[0.3, 0.7]);
        let best = q
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2, "Q-values {q:?}");
    }

    #[test]
    fn epsilon_one_explores() {
        let agent = DqnAgent::new(2, 8, config());
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(agent.select_action(&[0.0, 0.0], 1.0, &mut rng));
        }
        assert!(seen.len() >= 6, "explored {seen:?}");
    }

    #[test]
    fn target_sync_counts_steps() {
        let mut agent = DqnAgent::new(1, 2, config());
        let mut rng = StdRng::seed_from_u64(3);
        agent.store(Transition::new(vec![0.0], 0, 1.0, vec![0.0]));
        for _ in 0..30 {
            agent.train_step(&mut rng);
        }
        assert_eq!(agent.train_steps(), 30);
    }

    #[test]
    fn double_dqn_learns_the_same_bandit() {
        let mut agent = DqnAgent::new(2, 4, DqnConfig {
            double: true,
            ..config()
        });
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..400 {
            let a = rng.random_range(0..4);
            let r = if a == 1 { 1.0 } else { 0.0 };
            agent.store(Transition::new(vec![0.3, 0.7], a, r, vec![0.3, 0.7]));
            agent.train_step(&mut rng);
        }
        let q = agent.q_values(&[0.3, 0.7]);
        let best = q
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 1, "Q-values {q:?}");
    }

    #[test]
    fn double_dqn_overestimates_less_on_noisy_rewards() {
        // All actions pay noisy zero-mean rewards; max-Q overestimates,
        // and double-Q should overestimate no more than plain DQN.
        let estimate = |double: bool| -> f64 {
            let mut agent = DqnAgent::new(1, 8, DqnConfig {
                double,
                gamma: 0.9,
                ..config()
            });
            let mut rng = StdRng::seed_from_u64(77);
            for _ in 0..600 {
                let a = rng.random_range(0..8);
                let r = rng.random_range(-1.0..1.0); // zero mean
                agent.store(Transition::new(vec![0.0], a, r, vec![0.0]));
                agent.train_step(&mut rng);
            }
            agent
                .q_values(&[0.0])
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let plain = estimate(false);
        let double = estimate(true);
        // True value is 0; both overshoot, double should not overshoot more.
        assert!(
            double <= plain + 0.05,
            "double {double} vs plain {plain}"
        );
    }

    #[test]
    fn rejects_bad_action_index() {
        let mut agent = DqnAgent::new(1, 2, config());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            agent.store(Transition::new(vec![0.0], 5, 0.0, vec![0.0]));
        }));
        assert!(result.is_err());
    }
}
