//! The DQN-based baseline (§3.2).
//!
//! To make the assignment problem's `M^N` action space DQN-tractable, the
//! paper restricts each action to *assigning one thread to one machine*
//! (`|A| = N·M`). The Q-network maps a state to one Q-value per such move;
//! ε-greedy selects among them; training is classic DQN with experience
//! replay and a periodically synchronized target network. The paper's point
//! — and this reproduction's Figures 6c/7 — is that this restriction
//! explores the full space poorly at scale.
//!
//! # Hot-path layout
//!
//! [`DqnAgent::train_step`] is the throughput-critical loop of online
//! retraining. It samples slot *indices* from the ring-buffer replay (no
//! transition clones), assembles the minibatch directly into preallocated
//! state/next-state matrices, evaluates all `H` target-Q rows in one
//! batched forward pass, and folds the masked MSE loss/gradient in place —
//! zero heap allocations per step once shapes are warm.

use rand::rngs::StdRng;

use dss_nn::{Activation, Adam, Elem, Matrix, Mlp, Scalar};

use crate::explore::epsilon_greedy;
use crate::replay::ReplayBuffer;
use crate::snapshot::{self, Reader, SnapshotError, Writer};
use crate::transition::Transition;

/// DQN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DqnConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// Replay capacity |B|.
    pub replay_capacity: usize,
    /// Mini-batch size H.
    pub batch: usize,
    /// Target-network hard-sync period in train steps (the paper's
    /// "updated every C > 1 epochs").
    pub target_sync_every: u64,
    /// Learning rate.
    pub lr: f64,
    /// Hidden widths (64/32 as in the actor-critic nets).
    pub hidden: [usize; 2],
    /// Seed.
    pub seed: u64,
    /// Double DQN (the paper's reference \[23\]): evaluate the *online*
    /// network's argmax with the *target* network, curbing the max
    /// operator's overestimation bias. Off by default — the paper's
    /// baseline is plain DQN — and exercised by the `double-dqn` ablation.
    pub double: bool,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            replay_capacity: 1000,
            batch: 32,
            target_sync_every: 25,
            lr: 1e-3,
            hidden: [64, 32],
            seed: 42,
            double: false,
        }
    }
}

/// Persistent per-agent minibatch workspace; every buffer is resized in
/// place each step, so steady-state training allocates nothing.
#[derive(Debug, Default)]
struct TrainScratch<S: Scalar> {
    /// Sampled replay slot indices.
    idx: Vec<usize>,
    /// Minibatch states (H × state_dim).
    states: Matrix<S>,
    /// Minibatch next-states (H × state_dim).
    next_states: Matrix<S>,
    /// Per-row argmax of the online net (double DQN only).
    online_argmax: Vec<usize>,
    /// TD targets y_i.
    targets: Vec<S>,
    /// Loss gradient, nonzero only at chosen actions (H × |A|).
    grad: Matrix<S>,
}

/// The DQN agent over single-move actions, generic over the training
/// element type (default [`Elem`] = f32).
pub struct DqnAgent<S: Scalar = Elem> {
    q: Mlp<S>,
    target_q: Mlp<S>,
    opt: Adam<S>,
    replay: ReplayBuffer<usize, S>,
    config: DqnConfig,
    state_dim: usize,
    n_actions: usize,
    train_steps: u64,
    scratch: TrainScratch<S>,
}

impl<S: Scalar> DqnAgent<S> {
    /// Builds an agent with `n_actions = N·M` single-move actions.
    pub fn new(state_dim: usize, n_actions: usize, config: DqnConfig) -> Self {
        assert!(state_dim > 0 && n_actions > 0, "degenerate dimensions");
        let [h1, h2] = config.hidden;
        let q = Mlp::new(
            &[state_dim, h1, h2, n_actions],
            &[Activation::Tanh, Activation::Tanh, Activation::Identity],
            config.seed,
        );
        let mut target_q = q.clone();
        target_q.copy_params_from(&q);
        Self {
            opt: Adam::new(config.lr),
            replay: ReplayBuffer::new(config.replay_capacity),
            q,
            target_q,
            config,
            state_dim,
            n_actions,
            train_steps: 0,
            scratch: TrainScratch::default(),
        }
    }

    /// Number of discrete actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Stored transitions.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Training steps performed.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Serializes every mutable field of the agent — online and target
    /// Q-networks, Adam moments, the replay ring in slot order, and the
    /// train-step counter — into a versioned byte image (see
    /// [`crate::snapshot`]). Together with the caller's RNG state this is
    /// a complete training checkpoint.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.save_state_append(&mut out);
        out
    }

    /// [`DqnAgent::save_state`], appended to a caller-owned buffer so a
    /// periodic checkpoint loop can reuse one scratch allocation for the
    /// replay-ring-dominated image (see [`crate::DdpgAgent::save_state_append`]).
    pub fn save_state_append(&self, out: &mut Vec<u8>) {
        let mut w = Writer::header_in(std::mem::take(out), snapshot::KIND_DQN);
        w.usize(self.state_dim);
        w.usize(self.n_actions);
        w.f64(self.config.gamma);
        w.usize(self.config.replay_capacity);
        w.usize(self.config.batch);
        w.u64(self.config.target_sync_every);
        w.f64(self.config.lr);
        w.usize(self.config.hidden[0]);
        w.usize(self.config.hidden[1]);
        w.u64(self.config.seed);
        w.u8(u8::from(self.config.double));
        w.u64(self.train_steps);
        w.net(&self.q);
        w.net(&self.target_q);
        w.adam(&self.opt);
        snapshot::put_replay(&mut w, &self.replay, |w, &a: &usize| w.usize(a));
        *out = w.buf;
    }

    /// Rebuilds an agent from an image captured by
    /// [`DqnAgent::save_state`]. The restored agent continues the
    /// original's training trajectory bit-for-bit given the same RNG
    /// stream; foreign or corrupt bytes fail with a typed
    /// [`SnapshotError`], never a panic.
    pub fn restore_state(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::open(bytes, snapshot::KIND_DQN)?;
        let state_dim = r.usize()?;
        let n_actions = r.usize()?;
        if state_dim == 0 || n_actions == 0 {
            return Err(SnapshotError::BadStructure("degenerate dimensions"));
        }
        let config = DqnConfig {
            gamma: r.f64()?,
            replay_capacity: r.usize()?,
            batch: r.usize()?,
            target_sync_every: r.u64()?,
            lr: r.f64()?,
            hidden: [r.usize()?, r.usize()?],
            seed: r.u64()?,
            double: r.u8()? != 0,
        };
        let lr_ok = |lr: f64| lr.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if config.replay_capacity == 0 || !lr_ok(config.lr) || config.target_sync_every == 0 {
            return Err(SnapshotError::BadStructure("invalid hyperparameters"));
        }
        let train_steps = r.u64()?;
        let q: Mlp<S> = r.net()?;
        let target_q: Mlp<S> = r.net()?;
        let shapes_ok = q.layers().first().map(|l| l.input_size()) == Some(state_dim)
            && q.layers().last().map(|l| l.output_size()) == Some(n_actions)
            && target_q.param_count() == q.param_count();
        if !shapes_ok {
            return Err(SnapshotError::BadStructure("network shape mismatch"));
        }
        let opt = r.adam(config.lr)?;
        let replay = snapshot::get_replay(&mut r, state_dim, |r| {
            let a = r.usize()?;
            if a >= n_actions {
                return Err(SnapshotError::BadStructure("stored action out of range"));
            }
            Ok(a)
        })?;
        r.done()?;
        Ok(Self {
            q,
            target_q,
            opt,
            replay,
            config,
            state_dim,
            n_actions,
            train_steps,
            scratch: TrainScratch::default(),
        })
    }

    /// Q-values for all actions in `state`.
    pub fn q_values(&self, state: &[S]) -> Vec<S> {
        assert_eq!(state.len(), self.state_dim, "state width");
        self.q.infer_one(state)
    }

    /// ε-greedy action selection.
    pub fn select_action(&self, state: &[S], eps: f64, rng: &mut StdRng) -> usize {
        epsilon_greedy(&self.q_values(state), eps, rng)
    }

    /// Stores an experience sample.
    pub fn store(&mut self, t: Transition<usize, S>) {
        assert_eq!(t.state.len(), self.state_dim, "state width");
        assert!(t.action < self.n_actions, "action index out of range");
        self.replay.push(t);
    }

    /// One DQN training step; returns the TD loss, or `None` when no data.
    ///
    /// Allocation-free once warm: index-based replay sampling, minibatch
    /// assembly into persistent matrices, and a single batched forward for
    /// all `H` target-Q evaluations.
    pub fn train_step(&mut self, rng: &mut StdRng) -> Option<f64> {
        if self.replay.is_empty() {
            return None;
        }
        let scratch = &mut self.scratch;
        self.replay
            .sample_indices_into(self.config.batch, rng, &mut scratch.idx);
        let h = scratch.idx.len();

        // Assemble the minibatch straight into the persistent matrices.
        scratch.states.resize(h, self.state_dim);
        scratch.next_states.resize(h, self.state_dim);
        for (r, &slot) in scratch.idx.iter().enumerate() {
            let t = self.replay.get(slot);
            scratch.states.row_mut(r).copy_from_slice(&t.state);
            scratch
                .next_states
                .row_mut(r)
                .copy_from_slice(&t.next_state);
        }

        // TD targets from the frozen target network — one batched forward
        // for the whole minibatch. Plain DQN takes the target net's own
        // max; double DQN selects with the online net and evaluates with
        // the target net (two batched forwards, still no per-sample calls).
        if self.config.double {
            let online = self.q.forward(&scratch.next_states);
            scratch.online_argmax.clear();
            scratch.online_argmax.extend((0..h).map(|r| {
                let row = online.row(r);
                (0..row.len())
                    .max_by(|&a, &b| row[a].partial_cmp(&row[b]).expect("NaN Q"))
                    .expect("non-empty action set")
            }));
        }
        let next_q = self.target_q.forward(&scratch.next_states);
        scratch.targets.clear();
        let gamma = S::from_f64(self.config.gamma);
        for r in 0..h {
            let best = if self.config.double {
                next_q[(r, scratch.online_argmax[r])]
            } else {
                next_q.row(r).iter().copied().fold(S::NEG_INFINITY, S::max)
            };
            let reward = self.replay.get(scratch.idx[r]).reward;
            scratch.targets.push(reward + gamma * best);
        }

        // Forward on the online net, then fold the masked MSE in place:
        // only the chosen action's Q contributes, so the full gradient is
        // zero except at (r, action_r). Matches `mse_loss_grad` over the
        // H×1 chosen-Q column: loss = Σd²/H, grad = 2d/H.
        let pred = self.q.forward(&scratch.states);
        scratch.grad.resize(h, self.n_actions);
        scratch.grad.data_mut().fill(S::ZERO);
        let grad_scale = S::from_f64(2.0 / h as f64);
        let mut loss = 0.0f64;
        for r in 0..h {
            let action = self.replay.get(scratch.idx[r]).action;
            let d = pred[(r, action)] - scratch.targets[r];
            loss += d.to_f64() * d.to_f64();
            scratch.grad[(r, action)] = grad_scale * d;
        }
        loss /= h as f64;

        self.q.zero_grad();
        self.q.backward(&scratch.grad);
        self.q.apply_gradients(&mut self.opt);

        self.train_steps += 1;
        if self
            .train_steps
            .is_multiple_of(self.config.target_sync_every)
        {
            self.target_q.copy_params_from(&self.q);
        }
        Some(loss)
    }

    /// Offline pre-training on the full historical sample set, then seeds
    /// the bounded online buffer with the most recent `|B|` samples.
    pub fn pretrain(&mut self, samples: Vec<Transition<usize, S>>, steps: usize, rng: &mut StdRng) {
        if samples.is_empty() {
            return;
        }
        self.replay = ReplayBuffer::new(samples.len().max(1));
        for s in samples {
            self.store(s);
        }
        for _ in 0..steps {
            self.train_step(rng);
        }
        let mut online = ReplayBuffer::new(self.config.replay_capacity);
        let skip = self
            .replay
            .len()
            .saturating_sub(self.config.replay_capacity);
        for t in self.replay.iter().skip(skip) {
            online.push(t.clone());
        }
        self.replay = online;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn config() -> DqnConfig {
        DqnConfig {
            replay_capacity: 512,
            batch: 16,
            lr: 5e-3,
            hidden: [16, 8],
            seed: 5,
            ..DqnConfig::default()
        }
    }

    #[test]
    fn q_values_shape() {
        let agent = DqnAgent::new(3, 6, config());
        assert_eq!(agent.q_values(&[0.1, 0.2, 0.3]).len(), 6);
        assert_eq!(agent.n_actions(), 6);
    }

    #[test]
    fn learns_bandit_preference() {
        // Contextual bandit: action 2 always pays 1, others 0.
        let mut agent = DqnAgent::new(2, 4, config());
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..400 {
            let a = rng.random_range(0..4);
            let r = if a == 2 { 1.0 } else { 0.0 };
            agent.store(Transition::new(vec![0.3, 0.7], a, r, vec![0.3, 0.7]));
            agent.train_step(&mut rng);
        }
        let q = agent.q_values(&[0.3, 0.7]);
        let best = q
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2, "Q-values {q:?}");
    }

    #[test]
    fn epsilon_one_explores() {
        let agent = DqnAgent::new(2, 8, config());
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(agent.select_action(&[0.0, 0.0], 1.0, &mut rng));
        }
        assert!(seen.len() >= 6, "explored {seen:?}");
    }

    #[test]
    fn target_sync_counts_steps() {
        let mut agent = DqnAgent::new(1, 2, config());
        let mut rng = StdRng::seed_from_u64(3);
        agent.store(Transition::new(vec![0.0], 0, 1.0, vec![0.0]));
        for _ in 0..30 {
            agent.train_step(&mut rng);
        }
        assert_eq!(agent.train_steps(), 30);
    }

    #[test]
    fn double_dqn_learns_the_same_bandit() {
        let mut agent = DqnAgent::new(
            2,
            4,
            DqnConfig {
                double: true,
                ..config()
            },
        );
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..400 {
            let a = rng.random_range(0..4);
            let r = if a == 1 { 1.0 } else { 0.0 };
            agent.store(Transition::new(vec![0.3, 0.7], a, r, vec![0.3, 0.7]));
            agent.train_step(&mut rng);
        }
        let q = agent.q_values(&[0.3, 0.7]);
        let best = q
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 1, "Q-values {q:?}");
    }

    #[test]
    fn double_dqn_overestimates_less_on_noisy_rewards() {
        // All actions pay noisy zero-mean rewards; max-Q overestimates,
        // and double-Q should overestimate no more than plain DQN.
        let estimate = |double: bool| -> f64 {
            let mut agent = DqnAgent::new(
                1,
                8,
                DqnConfig {
                    double,
                    gamma: 0.9,
                    ..config()
                },
            );
            let mut rng = StdRng::seed_from_u64(77);
            for _ in 0..600 {
                let a = rng.random_range(0..8);
                let r = rng.random_range(-1.0..1.0); // zero mean
                agent.store(Transition::new(vec![0.0], a, r, vec![0.0]));
                agent.train_step(&mut rng);
            }
            agent
                .q_values(&[0.0])
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let plain = estimate(false);
        let double = estimate(true);
        // True value is 0; both overshoot, double should not overshoot more.
        assert!(double <= plain + 0.05, "double {double} vs plain {plain}");
    }

    #[test]
    fn snapshot_round_trip_continues_training_bit_identically() {
        // Train past the replay wrap AND a target sync, snapshot, then run
        // original and restored in RNG lockstep: every Q-value must stay
        // bit-equal through further training.
        let mut agent = DqnAgent::new(
            3,
            4,
            DqnConfig {
                replay_capacity: 16,
                batch: 8,
                target_sync_every: 5,
                hidden: [8, 6],
                seed: 21,
                ..DqnConfig::default()
            },
        );
        let e = Elem::from_f64;
        let mut rng = StdRng::seed_from_u64(31);
        for i in 0..40 {
            let a = i % 4;
            agent.store(Transition::new(
                vec![e(0.1 * i as f64), e(-0.2), e(0.3)],
                a,
                e(i as f64 * 0.01 - 0.1),
                vec![e(0.1 * (i + 1) as f64), e(-0.2), e(0.3)],
            ));
            agent.train_step(&mut rng);
        }
        let image = agent.save_state();
        let mut restored: DqnAgent = DqnAgent::restore_state(&image).unwrap();
        assert_eq!(restored.train_steps(), agent.train_steps());
        assert_eq!(restored.replay_len(), agent.replay_len());

        let mut rng_b = StdRng::from_state(rng.state());
        for i in 0..25 {
            let t = Transition::new(
                vec![e(0.05 * i as f64), e(0.4), e(-0.3)],
                (i + 1) % 4,
                e(-0.2),
                vec![e(0.05 * (i + 1) as f64), e(0.4), e(-0.3)],
            );
            agent.store(t.clone());
            restored.store(t);
            agent.train_step(&mut rng);
            restored.train_step(&mut rng_b);
        }
        let qa = agent.q_values(&[e(0.2), e(-0.1), e(0.7)]);
        let qb = restored.q_values(&[e(0.2), e(-0.1), e(0.7)]);
        for (a, b) in qa.iter().zip(&qb) {
            assert_eq!(a.to_f64().to_bits(), b.to_f64().to_bits());
        }
    }

    #[test]
    fn snapshot_rejects_foreign_and_corrupt_bytes() {
        use crate::snapshot::SnapshotError;
        let agent: DqnAgent = DqnAgent::new(2, 3, config());
        let image = agent.save_state();
        assert!(matches!(
            DqnAgent::<Elem>::restore_state(b"junk"),
            Err(SnapshotError::Truncated | SnapshotError::BadMagic)
        ));
        // A DDPG image must not decode as a DQN agent.
        let ddpg = crate::DdpgAgent::<Elem>::new(2, 3, crate::DdpgConfig::default()).save_state();
        assert!(matches!(
            DqnAgent::<Elem>::restore_state(&ddpg),
            Err(SnapshotError::WrongKind(1))
        ));
        // Truncation anywhere is a typed error, never a panic.
        for cut in [7, 20, 100, image.len() - 1] {
            assert!(DqnAgent::<Elem>::restore_state(&image[..cut]).is_err());
        }
    }

    #[test]
    fn rejects_bad_action_index() {
        let mut agent = DqnAgent::new(1, 2, config());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            agent.store(Transition::new(vec![0.0], 5, 0.0, vec![0.0]));
        }));
        assert!(result.is_err());
    }
}
