//! Reinforcement-learning substrate: the two DRL methods the paper
//! evaluates, over the `dss-nn` networks and `dss-miqp` action solvers.
//!
//! * [`DqnAgent`] — the "straightforward" DQN-based method of §3.2: the
//!   action space is restricted to *single thread moves* (`N × M` discrete
//!   actions), a Q-network scores them all, ε-greedy picks one. The paper
//!   shows this under-explores large action spaces; the reproduction keeps
//!   it as a baseline.
//!
//! * [`DdpgAgent`] — the paper's actor-critic method (§3.2.1, Algorithm 1):
//!   an actor emits a continuous proto-action `â ∈ R^{N·M}`; a K-NN
//!   [`mapper::ActionMapper`] (MIQP-NN) maps it to the `K` nearest feasible
//!   assignments; the critic scores those and the best is executed.
//!   Training follows Algorithm 1 exactly: experience replay (|B| = 1000,
//!   H = 32), target networks with soft updates (τ = 0.01), γ = 0.99,
//!   critic MSE on `y_i = r_i + γ max_{a∈A_{i+1,K}} Q'(s_{i+1}, a)`, and the
//!   deterministic-policy-gradient actor update through `∇_â Q(s, â)`.
//!
//! Both agents are deterministic given their seeds.

pub mod ddpg;
pub mod dqn;
pub mod explore;
pub mod mapper;
pub mod priority;
pub mod quant;
pub mod replay;
pub mod snapshot;
pub mod transition;

pub use ddpg::{ActScratch, DdpgAgent, DdpgConfig};
pub use dqn::{DqnAgent, DqnConfig};
pub use explore::{EpsilonSchedule, OuNoise};
pub use mapper::{
    ActionMapper, CandidateAction, HierarchicalMapper, KBestMapper, RelaxMapper, ScalableMapper,
};
pub use priority::{PrioritizedReplay, PrioritizedSample, PriorityConfig, SumTree};
pub use quant::{QuantActScratch, QuantPolicy};
pub use replay::{ReplayBuffer, ShardSlot, ShardedReplayBuffer};
pub use snapshot::SnapshotError;
pub use transition::Transition;

/// The workspace training element type (re-exported from `dss-nn`): every
/// agent, mapper and buffer here defaults to it. Instantiate the generic
/// types with `f64` explicitly for double-precision debugging.
pub use dss_nn::{Elem, QuantMode, Scalar};
