//! Bit-exact agent state snapshots — the crash-safe-training primitive.
//!
//! [`crate::DdpgAgent::save_state`] and [`crate::DqnAgent::save_state`]
//! serialize everything mutable about an agent — network parameters for
//! all online *and* target nets, the Adam optimizers' per-block moments,
//! the replay ring **in slot order** (index-based minibatch sampling
//! addresses storage slots, so layout is part of the trajectory), and the
//! train-step counter — into a versioned little-endian byte image. The
//! matching `restore_state` constructors rebuild an agent whose future
//! training trajectory is bit-identical to what the snapshotted agent
//! would have produced, given the same RNG stream.
//!
//! Floats travel as `f64` bits (widening is exact for every [`Scalar`]
//! element type), mirroring `dss-nn`'s network wire format, so an
//! f32-trained agent round-trips losslessly.
//!
//! This module owns the shared low-level codec; the agent-specific field
//! layout lives next to each agent (`ddpg.rs`, `dqn.rs`).

use dss_nn::{decode_mlp, encode_mlp, Adam, DecodeError, Mlp, Scalar};

use crate::replay::ReplayBuffer;
use crate::transition::Transition;

/// Agent snapshot decode failures (typed, never panics on foreign bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Input did not start with the expected magic bytes.
    BadMagic,
    /// Unknown snapshot format version.
    BadVersion(u16),
    /// The image is for a different agent kind (DDPG vs DQN).
    WrongKind(u8),
    /// Truncated input.
    Truncated,
    /// A length or index field described an impossible structure.
    BadStructure(&'static str),
    /// An embedded network image failed to decode.
    Net(DecodeError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "bad agent snapshot magic"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::WrongKind(k) => write!(f, "snapshot is for agent kind {k}"),
            SnapshotError::Truncated => write!(f, "truncated agent snapshot"),
            SnapshotError::BadStructure(what) => write!(f, "invalid snapshot structure: {what}"),
            SnapshotError::Net(e) => write!(f, "embedded network: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Net(e)
    }
}

/// Snapshot magic ("DSS" + agent).
pub(crate) const MAGIC: &[u8; 4] = b"DSSG";
/// Snapshot format version.
pub(crate) const VERSION: u16 = 1;
/// Agent kind tags.
pub(crate) const KIND_DDPG: u8 = 1;
pub(crate) const KIND_DQN: u8 = 2;
/// A *policy-only* DDPG image ([`crate::DdpgAgent::save_policy`]): just the
/// online actor and critic — what a rollout worker needs to act. Target
/// nets, optimizer moments and the replay ring stay learner-side, so the
/// blob a parameter server republishes every few train steps is a fraction
/// of the full [`crate::DdpgAgent::save_state`] checkpoint.
pub(crate) const KIND_POLICY: u8 = 3;
/// A *quantized* policy image ([`crate::QuantPolicy`]): the online actor
/// and critic compressed to i8 or bf16 weights (see `dss_nn::quant` for
/// the scheme). Same role as [`KIND_POLICY`] — what a rollout worker
/// pulls from the parameter server — at a fraction of the bytes; floats
/// that are natively f32 travel as f32 bits here, not widened f64.
pub(crate) const KIND_QUANT_POLICY: u8 = 4;

/// Little-endian append-only writer.
#[derive(Default)]
pub(crate) struct Writer {
    pub buf: Vec<u8>,
}

impl Writer {
    pub fn header(kind: u8) -> Self {
        Self::header_in(Vec::new(), kind)
    }

    /// A writer that appends to `buf` without discarding its capacity (or
    /// its existing contents — callers reusing a scratch clear it first).
    /// This is the allocation-reuse seam: a periodic checkpoint loop hands
    /// the same multi-megabyte buffer back every save instead of growing a
    /// fresh one from empty each time.
    pub fn header_in(buf: Vec<u8>, kind: u8) -> Self {
        let mut w = Writer { buf };
        w.buf.extend_from_slice(MAGIC);
        w.u16(VERSION);
        w.u8(kind);
        w
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// An f32 as its own 4-byte bits — used by the quantized policy
    /// image, where the whole point is byte economy (the full-precision
    /// formats keep widening to f64).
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// A network as an embedded length-prefixed `dss-nn` image.
    pub fn net<S: Scalar>(&mut self, net: &Mlp<S>) {
        self.bytes(&encode_mlp(net));
    }

    /// An Adam optimizer's per-block moments.
    pub fn adam<S: Scalar>(&mut self, opt: &Adam<S>) {
        let blocks = opt.export_moments();
        self.usize(blocks.len());
        for (key, m, v, t) in blocks {
            self.usize(key);
            self.u64(t);
            self.usize(m.len());
            for x in m {
                self.f64(x);
            }
            for x in v {
                self.f64(x);
            }
        }
    }

    /// A scalar row of known width.
    pub fn row<S: Scalar>(&mut self, row: &[S]) {
        for &x in row {
            self.f64(x.to_f64());
        }
    }
}

/// Little-endian cursor reader with typed failures.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Validates magic/version/kind and positions the cursor after them.
    pub fn open(bytes: &'a [u8], kind: u8) -> Result<Self, SnapshotError> {
        let mut r = Reader { buf: bytes };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let k = r.u8()?;
        if k != kind {
            return Err(SnapshotError::WrongKind(k));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() < n {
            return Err(SnapshotError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::BadStructure("oversized length"))
    }

    /// A bounded length field: caps structure sizes against corrupt
    /// images allocating absurd buffers before the data runs out.
    pub fn len(&mut self, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        // Every element of every counted structure is ≥ 1 byte on the
        // wire, so a count beyond the remaining bytes is structurally bad.
        if n > self.buf.len() {
            return Err(SnapshotError::BadStructure(what));
        }
        Ok(n)
    }

    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.len("byte field")?;
        self.take(n)
    }

    pub fn net<S: Scalar>(&mut self) -> Result<Mlp<S>, SnapshotError> {
        Ok(decode_mlp(self.bytes()?)?)
    }

    /// Rebuilds an Adam optimizer from `lr` plus serialized moments.
    pub fn adam<S: Scalar>(&mut self, lr: f64) -> Result<Adam<S>, SnapshotError> {
        let n_blocks = self.len("adam blocks")?;
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let key = self.usize()?;
            let t = self.u64()?;
            let len = self.len("adam block")?;
            let mut m = Vec::with_capacity(len);
            for _ in 0..len {
                m.push(self.f64()?);
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(self.f64()?);
            }
            blocks.push((key, m, v, t));
        }
        let mut opt = Adam::new(lr);
        opt.import_moments(blocks);
        Ok(opt)
    }

    pub fn row<S: Scalar>(&mut self, width: usize) -> Result<Vec<S>, SnapshotError> {
        let mut out = Vec::with_capacity(width);
        for _ in 0..width {
            out.push(S::from_f64(self.f64()?));
        }
        Ok(out)
    }

    /// Whether every byte has been consumed (trailing garbage check).
    pub fn done(&self) -> Result<(), SnapshotError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::BadStructure("trailing bytes"))
        }
    }
}

/// Serializes a replay ring (slot order + head) with `action` rows encoded
/// by `put_action`.
pub(crate) fn put_replay<A: Clone, S: Scalar>(
    w: &mut Writer,
    replay: &ReplayBuffer<A, S>,
    mut put_action: impl FnMut(&mut Writer, &A),
) {
    let (slots, head) = replay.ring();
    w.usize(replay.capacity());
    w.usize(head);
    w.usize(slots.len());
    for t in slots {
        w.row(&t.state);
        put_action(w, &t.action);
        w.f64(t.reward.to_f64());
        w.row(&t.next_state);
    }
}

/// Rebuilds a replay ring serialized by [`put_replay`]; `state_dim` fixes
/// the row widths.
pub(crate) fn get_replay<A: Clone, S: Scalar>(
    r: &mut Reader<'_>,
    state_dim: usize,
    mut get_action: impl FnMut(&mut Reader<'_>) -> Result<A, SnapshotError>,
) -> Result<ReplayBuffer<A, S>, SnapshotError> {
    let capacity = r.usize()?;
    let head = r.usize()?;
    let n = r.len("replay slots")?;
    if capacity == 0 || n > capacity {
        return Err(SnapshotError::BadStructure("replay shape"));
    }
    if (n < capacity && head != 0) || (n == capacity && head >= capacity) {
        return Err(SnapshotError::BadStructure("replay head"));
    }
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let state = r.row(state_dim)?;
        let action = get_action(r)?;
        let reward = S::from_f64(r.f64()?);
        let next_state = r.row(state_dim)?;
        slots.push(Transition::new(state, action, reward, next_state));
    }
    Ok(ReplayBuffer::from_ring(capacity, slots, head))
}
