//! State-transition samples — the rows of the paper's transition
//! "database".

/// One experience sample `(s_t, a_t, r_t, s_{t+1})`.
///
/// States are flat feature vectors (the paper's `(X, w)` encoding); the
/// action type is generic: the actor-critic stores the one-hot assignment
/// vector, the DQN stores a discrete action index.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition<A> {
    /// State at the decision epoch.
    pub state: Vec<f64>,
    /// Action taken.
    pub action: A,
    /// Immediate reward (negative average tuple processing time).
    pub reward: f64,
    /// Observed next state.
    pub next_state: Vec<f64>,
}

impl<A> Transition<A> {
    /// Convenience constructor.
    pub fn new(state: Vec<f64>, action: A, reward: f64, next_state: Vec<f64>) -> Self {
        Self {
            state,
            action,
            reward,
            next_state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_generic_actions() {
        let t1: Transition<usize> = Transition::new(vec![0.0], 3, -1.5, vec![1.0]);
        assert_eq!(t1.action, 3);
        let t2: Transition<Vec<f64>> = Transition::new(vec![0.0], vec![1.0, 0.0], -2.0, vec![1.0]);
        assert_eq!(t2.action.len(), 2);
    }
}
