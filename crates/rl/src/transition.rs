//! State-transition samples — the rows of the paper's transition
//! "database".

use dss_nn::{Elem, Scalar};

/// One experience sample `(s_t, a_t, r_t, s_{t+1})`.
///
/// States are flat feature vectors (the paper's `(X, w)` encoding) in the
/// training element type `S` (default [`Elem`] = f32 — replay storage is
/// the largest resident buffer of a training run, so halving its width
/// matters); the action type is generic: the actor-critic stores the
/// one-hot assignment vector, the DQN stores a discrete action index.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition<A, S: Scalar = Elem> {
    /// State at the decision epoch.
    pub state: Vec<S>,
    /// Action taken.
    pub action: A,
    /// Immediate reward (negative average tuple processing time).
    pub reward: S,
    /// Observed next state.
    pub next_state: Vec<S>,
}

impl<A, S: Scalar> Transition<A, S> {
    /// Convenience constructor.
    pub fn new(state: Vec<S>, action: A, reward: S, next_state: Vec<S>) -> Self {
        Self {
            state,
            action,
            reward,
            next_state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_generic_actions_and_scalars() {
        let t1: Transition<usize> = Transition::new(vec![0.0], 3, -1.5, vec![1.0]);
        assert_eq!(t1.action, 3);
        let t2: Transition<Vec<Elem>> = Transition::new(vec![0.0], vec![1.0, 0.0], -2.0, vec![1.0]);
        assert_eq!(t2.action.len(), 2);
        let t3: Transition<usize, f64> = Transition::new(vec![0.5], 1, -0.25, vec![0.5]);
        assert_eq!(t3.reward, -0.25f64);
    }
}
