//! Quantized rollout policy — the compressed twin of
//! [`DdpgAgent::save_policy`](crate::DdpgAgent::save_policy).
//!
//! A [`QuantPolicy`] holds the online actor and critic with weights
//! compressed per net to i8 (per-output-row affine), bf16, or exact f32
//! rows (see [`dss_nn::quant`] for the scheme and its bit-identity
//! guarantees), and replays
//! [`DdpgAgent::select_action_into`]'s exact decision flow — sparse
//! exact-index layer-1 gathers, hot action columns, row-form tail
//! layers, the same RNG consumption via
//! [`perturb_proto_into`](crate::explore) — with the dot products in the
//! compressed domain.
//!
//! # Why the default profile mixes precisions
//!
//! The decision pipeline has one discontinuous stage: the K-NN action
//! mapper. Its candidate *set* flips on arbitrarily small perturbations
//! of the actor's proto-action — measured here, even bf16's ~0.2%
//! weight error changes 5–10% of decisions, and no affordable weight
//! precision gets that tail under the ≥ 99% agreement bar. So
//! [`DdpgAgent::rollout_quant_policy`] ships the **actor as exact f32
//! rows** (bit-identical protos → bit-identical candidate sets, and
//! still half the bytes of the f64-widened policy image).
//!
//! The critic argmax tolerates quantization of everything the
//! candidates *share* — its error cancels in the comparison — but not
//! of what distinguishes them. Two slices carry the differences: the
//! layer-1 **action-block columns** (candidates differ only in which
//! hot columns they sum) and the **tail layers** (each candidate's
//! hidden vector passes through them separately, so tail weight error
//! lands on the Q *differences* too, scaled by how far the hidden
//! vectors sit apart). i8 on either slice flips 1–2% of near-tied
//! argmaxes. The critic is therefore split: the **layer-1 state
//! columns go i8** — the shared bulk, by far the largest slab,
//! integer-SIMD dots at 1/8 the bytes — while the **action block and
//! tail go bf16**, an order of magnitude less differential error for
//! two bytes a weight on slices that are a small fraction of the
//! frame. Uniform [`QuantMode::I8`]/[`QuantMode::Bf16`] policies
//! remain available — and benched — for consumers that tolerate
//! approximate decisions.

use dss_nn::quant::{QuantLinear, QuantMode, QuantWeights};
use dss_nn::{Activation, Scalar};
use rand::rngs::StdRng;

use crate::ddpg::DdpgAgent;
use crate::explore::perturb_proto_into;
use crate::mapper::{ActionMapper, CandidateAction};
use crate::snapshot::{self, Reader, SnapshotError, Writer};
use crate::Elem;

/// Per-actor scratch for [`QuantPolicy::select_action_into`] — the
/// quantized analog of [`crate::ActScratch`], owned by the caller so a
/// shared policy serves many actors with zero allocations once warm.
#[derive(Debug, Default)]
pub struct QuantActScratch<S: Scalar = Elem> {
    /// Ascending support (nonzero coordinates) of the current state.
    nz: Vec<usize>,
    /// The support's *values*, gathered to f32 (the compute precision).
    xg: Vec<f32>,
    /// Row-form ping/pong buffers for the layer stacks (f32 compute).
    row_a: Vec<f32>,
    row_b: Vec<f32>,
    /// Actor output converted back to the workspace element type.
    out_s: Vec<S>,
    /// Explored proto-action (`R(â) = â + εI`).
    proto: Vec<S>,
    /// Candidate set of the last query; [`QuantPolicy::select_action_into`]
    /// returns an index into this.
    pub cands: Vec<CandidateAction<S>>,
    /// Critic layer-1 pre-activation over the state alone.
    h_state: Vec<f32>,
    /// Hot action columns of one candidate.
    hot: Vec<usize>,
    /// u8 activation-quantization scratch (i8 mode).
    qx: Vec<u8>,
}

/// A compressed, inference-only policy snapshot: quantized actor +
/// critic layers plus the decision hyperparameters
/// ([`DdpgAgent::select_action_into`]'s `k`) and provenance
/// (`train_steps`). Built learner-side by [`DdpgAgent::quant_policy`],
/// shipped as a [`QuantPolicy::encode`] image, decoded worker-side.
///
/// The critic's first layer is stored *split at its input blocks*: the
/// state columns and the action columns are independent [`QuantLinear`]s
/// (the act path touches them through disjoint seams — the sparse state
/// gather vs the per-candidate hot-column sums), which is what lets the
/// rollout profile give the argmax-deciding action block more precision
/// than the shared bulk.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantPolicy {
    state_dim: usize,
    action_dim: usize,
    /// K-NN candidate count of the publishing agent's config.
    k: usize,
    train_steps: u64,
    actor_mode: QuantMode,
    critic_mode: QuantMode,
    /// Mode of the critic's differential slice — the layer-1
    /// action-block columns (the hot-col seam) and the tail layers,
    /// everything whose quantization error survives the argmax's
    /// shared-term cancellation.
    critic_hot_mode: QuantMode,
    actor: Vec<QuantLinear>,
    /// Critic layer 1, state columns (`hidden × state_dim`); carries the
    /// layer's bias and activation.
    critic_l1_state: QuantLinear,
    /// Critic layer 1, action columns (`hidden × action_dim`); zero
    /// bias, identity activation — only its weight sums enter the path.
    critic_l1_action: QuantLinear,
    /// Critic layers 2‥ (row-form tail).
    critic_tail: Vec<QuantLinear>,
}

impl<S: Scalar> DdpgAgent<S> {
    /// Compresses the online actor and critic into a [`QuantPolicy`]
    /// with one mode everywhere (the learner keeps training in full
    /// precision — this is a publish-time snapshot, not a conversion of
    /// the agent).
    pub fn quant_policy(&self, mode: QuantMode) -> QuantPolicy {
        self.quant_policy_modes(mode, mode, mode)
    }

    /// The default rollout profile: **actor exact-f32, critic i8 bulk
    /// with a bf16 differential slice**. The actor's rows are
    /// bit-identical to the agent's, so the proto-action — and with it
    /// the discontinuous K-NN candidate set — matches the f32 decision
    /// stream exactly; the critic compresses its layer-1 state columns
    /// (the shared bulk) to i8 and keeps bf16 on the layer-1 action
    /// columns and the tail layers, where quantization error lands on
    /// the Q differences the argmax compares (see the module docs for
    /// the measurements behind this split).
    pub fn rollout_quant_policy(&self) -> QuantPolicy {
        self.quant_policy_modes(QuantMode::F32, QuantMode::I8, QuantMode::Bf16)
    }

    /// [`DdpgAgent::quant_policy`] with independent modes for the actor,
    /// the critic's layer-1 state columns (the shared bulk), and the
    /// critic's differential slice (layer-1 action block + tail layers).
    pub fn quant_policy_modes(
        &self,
        actor_mode: QuantMode,
        critic_mode: QuantMode,
        critic_hot_mode: QuantMode,
    ) -> QuantPolicy {
        let (state_dim, action_dim) = (self.state_dim(), self.action_dim());
        let actor = self
            .actor()
            .layers()
            .iter()
            .map(|l| QuantLinear::from_dense(l, actor_mode))
            .collect();
        let clayers = self.critic().layers();
        let l1 = &clayers[0];
        assert_eq!(l1.input_size(), state_dim + action_dim, "critic input");
        let h = l1.output_size();
        let mut w_state = Vec::with_capacity(h * state_dim);
        let mut w_action = Vec::with_capacity(h * action_dim);
        for o in 0..h {
            let row = l1.weights().row(o);
            w_state.extend(row[..state_dim].iter().map(|&w| w.to_f64() as f32));
            w_action.extend(row[state_dim..].iter().map(|&w| w.to_f64() as f32));
        }
        let bias: Vec<f32> = l1.bias().iter().map(|&b| b.to_f64() as f32).collect();
        let critic_l1_state =
            QuantLinear::from_rows(state_dim, h, l1.activation(), bias, &w_state, critic_mode);
        let critic_l1_action = QuantLinear::from_rows(
            action_dim,
            h,
            Activation::Identity,
            vec![0.0; h],
            &w_action,
            critic_hot_mode,
        );
        let critic_tail = clayers[1..]
            .iter()
            .map(|l| QuantLinear::from_dense(l, critic_hot_mode))
            .collect();
        QuantPolicy {
            state_dim,
            action_dim,
            k: self.config().k,
            train_steps: self.train_steps(),
            actor_mode,
            critic_mode,
            critic_hot_mode,
            actor,
            critic_l1_state,
            critic_l1_action,
            critic_tail,
        }
    }
}

impl QuantPolicy {
    /// State width the policy acts on.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// One-hot action width (`N·M`).
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Train-step counter of the publishing agent.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Which compression the actor layers use.
    pub fn actor_mode(&self) -> QuantMode {
        self.actor_mode
    }

    /// Which compression the critic's layer-1 state columns (the
    /// shared bulk) use.
    pub fn critic_mode(&self) -> QuantMode {
        self.critic_mode
    }

    /// Which compression the critic's differential slice (layer-1
    /// action block + tail layers) uses.
    pub fn critic_hot_mode(&self) -> QuantMode {
        self.critic_hot_mode
    }

    /// Compressed weight payload across all layers, in bytes (what the
    /// frame-size bench compares against the f32 policy image).
    pub fn weight_bytes(&self) -> usize {
        self.actor
            .iter()
            .chain([&self.critic_l1_state, &self.critic_l1_action])
            .chain(&self.critic_tail)
            .map(QuantLinear::weight_bytes)
            .sum()
    }

    /// The quantized decision step, mirroring
    /// [`DdpgAgent::select_action_into`] stage for stage: sparse actor
    /// layer 1 over the state's support (exact indices, quantized
    /// values), row-form tail, exploration noise via the *same*
    /// [`perturb_proto_into`](crate::explore) (noise is drawn in f64, so
    /// the RNG stream is consumed identically to the f32 agent), K-NN
    /// mapping, and the critic argmax with per-candidate hot columns.
    /// Returns the index of the selected candidate in `scratch.cands`.
    ///
    /// # Panics
    /// Panics on a state-width mismatch, an empty candidate set, or a
    /// mapper shape that disagrees with `action_dim`.
    pub fn select_action_into<S: Scalar>(
        &self,
        state: &[S],
        mapper: &mut dyn ActionMapper<S>,
        eps: f64,
        rng: &mut StdRng,
        scratch: &mut QuantActScratch<S>,
    ) -> usize {
        assert_eq!(state.len(), self.state_dim, "state width");
        let QuantActScratch {
            nz,
            xg,
            row_a,
            row_b,
            out_s,
            proto,
            cands,
            h_state,
            hot,
            qx,
        } = scratch;
        nz.clear();
        xg.clear();
        for (l, &x) in state.iter().enumerate() {
            if x != S::ZERO {
                nz.push(l);
                xg.push(x.to_f64() as f32);
            }
        }

        // Actor forward in row form: sparse first layer, quantized tail.
        let layers = &self.actor;
        layers[0].sparse_preact_into(nz, xg, qx, row_a);
        layers[0].finish_row(row_a);
        let mut in_a = true;
        for layer in &layers[1..] {
            if in_a {
                layer.infer_row_into(row_a, qx, row_b);
            } else {
                layer.infer_row_into(row_b, qx, row_a);
            }
            in_a = !in_a;
        }
        let actor_out: &[f32] = if in_a { row_a } else { row_b };
        out_s.clear();
        out_s.extend(actor_out.iter().map(|&v| S::from_f64(v as f64)));
        perturb_proto_into(out_s, eps, rng, proto);
        mapper.nearest_into(proto, self.k, cands);
        assert!(!cands.is_empty(), "no candidates to select from");

        // Critic argmax: shared layer-1 state part + per-candidate hot
        // action columns, exactly like the f32 agent. The hot indices
        // are relative to the action block, which is its own layer here.
        let (n, m) = mapper.shape();
        assert_eq!(n * m, self.action_dim, "mapper/policy action shape");
        self.critic_l1_state.sparse_preact_into(nz, xg, qx, h_state);
        let mut best = 0;
        let mut best_q = f32::NEG_INFINITY;
        for (ci, cand) in cands.iter().enumerate() {
            assert_eq!(cand.choice.len(), n, "candidate executor count");
            hot.clear();
            hot.extend(cand.choice.iter().enumerate().map(|(i, &c)| i * m + c));
            row_a.clear();
            row_a.extend_from_slice(h_state);
            self.critic_l1_action.add_hot_cols(hot, row_a);
            self.critic_l1_state.finish_row(row_a);
            let mut in_a = true;
            for layer in &self.critic_tail {
                if in_a {
                    layer.infer_row_into(row_a, qx, row_b);
                } else {
                    layer.infer_row_into(row_b, qx, row_a);
                }
                in_a = !in_a;
            }
            let q = if in_a { row_a[0] } else { row_b[0] };
            if q > best_q {
                best_q = q;
                best = ci;
            }
        }
        best
    }

    /// Serializes the policy into a versioned byte image (snapshot kind
    /// `KIND_QUANT_POLICY`). Unlike the full-precision formats, floats
    /// that are natively f32 travel as 4-byte f32 bits — byte economy is
    /// the point of this frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::header(snapshot::KIND_QUANT_POLICY);
        w.u8(self.actor_mode.tag());
        w.u8(self.critic_mode.tag());
        w.u8(self.critic_hot_mode.tag());
        w.usize(self.state_dim);
        w.usize(self.action_dim);
        w.usize(self.k);
        w.u64(self.train_steps);
        w.usize(self.actor.len());
        for l in &self.actor {
            put_layer(&mut w, l);
        }
        put_layer(&mut w, &self.critic_l1_state);
        put_layer(&mut w, &self.critic_l1_action);
        w.usize(self.critic_tail.len());
        for l in &self.critic_tail {
            put_layer(&mut w, l);
        }
        w.buf
    }

    /// Rebuilds a policy from an [`QuantPolicy::encode`] image. Foreign
    /// or corrupt bytes fail with a typed [`SnapshotError`], never a
    /// panic; every layer is revalidated (shapes, value ranges) and the
    /// i8 `row_sum` caches are recomputed, not trusted from the wire.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::open(bytes, snapshot::KIND_QUANT_POLICY)?;
        let actor_mode = QuantMode::from_tag(r.u8()?)
            .ok_or(SnapshotError::BadStructure("unknown quant mode"))?;
        let critic_mode = QuantMode::from_tag(r.u8()?)
            .ok_or(SnapshotError::BadStructure("unknown quant mode"))?;
        let critic_hot_mode = QuantMode::from_tag(r.u8()?)
            .ok_or(SnapshotError::BadStructure("unknown quant mode"))?;
        let state_dim = r.usize()?;
        let action_dim = r.usize()?;
        let k = r.usize()?;
        if state_dim == 0 || action_dim == 0 || k == 0 {
            return Err(SnapshotError::BadStructure("degenerate quant policy"));
        }
        let train_steps = r.u64()?;
        let n_actor = r.len("actor layers")?;
        let mut actor = Vec::with_capacity(n_actor);
        for _ in 0..n_actor {
            actor.push(get_layer(&mut r, actor_mode)?);
        }
        let critic_l1_state = get_layer(&mut r, critic_mode)?;
        let critic_l1_action = get_layer(&mut r, critic_hot_mode)?;
        let n_tail = r.len("critic tail layers")?;
        let mut critic_tail = Vec::with_capacity(n_tail);
        for _ in 0..n_tail {
            critic_tail.push(get_layer(&mut r, critic_hot_mode)?);
        }
        r.done()?;
        let chains = |layers: &[QuantLinear], in0: usize, out_last: usize| {
            !layers.is_empty()
                && layers.first().map(QuantLinear::input_size) == Some(in0)
                && layers.last().map(QuantLinear::output_size) == Some(out_last)
                && layers
                    .windows(2)
                    .all(|w| w[0].output_size() == w[1].input_size())
        };
        let h = critic_l1_state.output_size();
        if !chains(&actor, state_dim, action_dim)
            || critic_l1_state.input_size() != state_dim
            || critic_l1_action.input_size() != action_dim
            || critic_l1_action.output_size() != h
            || !chains(&critic_tail, h, 1)
        {
            return Err(SnapshotError::BadStructure("quant layer chain"));
        }
        Ok(Self {
            state_dim,
            action_dim,
            k,
            train_steps,
            actor_mode,
            critic_mode,
            critic_hot_mode,
            actor,
            critic_l1_state,
            critic_l1_action,
            critic_tail,
        })
    }
}

/// One layer on the wire: shape + activation tag + f32 bias, then the
/// mode-specific weight payload (i8: per-row f32 scale + one zero byte,
/// then the quantized bytes; bf16: the u16 weights LE).
fn put_layer(w: &mut Writer, l: &QuantLinear) {
    w.usize(l.input_size());
    w.usize(l.output_size());
    w.u8(l.activation().tag());
    for &b in l.bias() {
        w.f32(b);
    }
    match l.weights() {
        QuantWeights::I8 { q, scale, zero, .. } => {
            for (&s, &z) in scale.iter().zip(zero) {
                w.f32(s);
                w.u8(z as i8 as u8);
            }
            w.bytes(&q.iter().map(|&v| v as u8).collect::<Vec<u8>>());
        }
        QuantWeights::Bf16 { w: weights } => {
            let mut raw = Vec::with_capacity(weights.len() * 2);
            for &h in weights {
                raw.extend_from_slice(&h.to_le_bytes());
            }
            w.bytes(&raw);
        }
        QuantWeights::F32 { w: weights } => {
            let mut raw = Vec::with_capacity(weights.len() * 4);
            for &v in weights {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            w.bytes(&raw);
        }
    }
}

/// Inverse of [`put_layer`]; defers range/shape validation to
/// [`QuantLinear::from_parts`].
fn get_layer(r: &mut Reader<'_>, mode: QuantMode) -> Result<QuantLinear, SnapshotError> {
    let in_dim = r.usize()?;
    let out_dim = r.len("quant layer width")?;
    let activation =
        Activation::from_tag(r.u8()?).ok_or(SnapshotError::BadStructure("bad activation tag"))?;
    let mut bias = Vec::with_capacity(out_dim);
    for _ in 0..out_dim {
        bias.push(r.f32()?);
    }
    let weights = match mode {
        QuantMode::I8 => {
            let mut scale = Vec::with_capacity(out_dim);
            let mut zero = Vec::with_capacity(out_dim);
            for _ in 0..out_dim {
                scale.push(r.f32()?);
                zero.push(r.u8()? as i8 as i32);
            }
            let raw = r.bytes()?;
            QuantWeights::I8 {
                q: raw.iter().map(|&b| b as i8).collect(),
                scale,
                zero,
                row_sum: Vec::new(),
            }
        }
        QuantMode::Bf16 => {
            let raw = r.bytes()?;
            if raw.len() % 2 != 0 {
                return Err(SnapshotError::BadStructure("odd bf16 payload"));
            }
            QuantWeights::Bf16 {
                w: raw
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes([c[0], c[1]]))
                    .collect(),
            }
        }
        QuantMode::F32 => {
            let raw = r.bytes()?;
            if raw.len() % 4 != 0 {
                return Err(SnapshotError::BadStructure("misaligned f32 payload"));
            }
            QuantWeights::F32 {
                w: raw
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            }
        }
    };
    QuantLinear::from_parts(in_dim, out_dim, activation, bias, weights)
        .map_err(SnapshotError::BadStructure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddpg::{ActScratch, DdpgConfig};
    use crate::mapper::KBestMapper;
    use rand::SeedableRng;

    fn agent(state_dim: usize, n: usize, m: usize, seed: u64) -> DdpgAgent {
        DdpgAgent::new(
            state_dim,
            n * m,
            DdpgConfig {
                k: 6,
                seed,
                ..DdpgConfig::default()
            },
        )
    }

    fn rollout_state(state_dim: usize, n: usize, m: usize, t: usize) -> Vec<f32> {
        // A featurized-control-style state: one-hot X block + rate tail.
        let mut s = vec![0.0f32; state_dim];
        for i in 0..n {
            s[i * m + (i + t) % m] = 1.0;
        }
        for (j, v) in s[n * m..].iter_mut().enumerate() {
            *v = 0.1 + 0.03 * ((j + t) % 7) as f32;
        }
        s
    }

    #[test]
    fn encode_decode_round_trips_every_mode() {
        let (n, m) = (4usize, 5usize);
        let state_dim = n * m + 6;
        let a = agent(state_dim, n, m, 11);
        for mode in [QuantMode::I8, QuantMode::Bf16, QuantMode::F32] {
            let qp = a.quant_policy(mode);
            let blob = qp.encode();
            let back = QuantPolicy::decode(&blob).unwrap();
            assert_eq!(back, qp, "{} image diverged", mode.name());
        }
        // The mixed rollout profile carries two distinct per-net modes.
        let qp = a.rollout_quant_policy();
        assert_eq!(qp.actor_mode(), QuantMode::F32);
        assert_eq!(qp.critic_mode(), QuantMode::I8);
        let back = QuantPolicy::decode(&qp.encode()).unwrap();
        assert_eq!(back, qp, "rollout profile image diverged");
    }

    #[test]
    fn decode_rejects_corruption_without_panicking() {
        let (n, m) = (3usize, 4usize);
        let a = agent(n * m + 4, n, m, 13);
        let blob = a.quant_policy(QuantMode::I8).encode();
        // Wrong kind: a full-precision policy image is not a quant image.
        assert!(matches!(
            QuantPolicy::decode(&a.save_policy()),
            Err(SnapshotError::WrongKind(_))
        ));
        // Truncation anywhere fails typed.
        for cut in [1, 8, 20, blob.len() / 2, blob.len() - 1] {
            assert!(QuantPolicy::decode(&blob[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage is rejected.
        let mut long = blob.clone();
        long.push(0);
        assert!(matches!(
            QuantPolicy::decode(&long),
            Err(SnapshotError::BadStructure("trailing bytes"))
        ));
    }

    #[test]
    fn quant_frame_is_a_fraction_of_the_f32_policy() {
        let (n, m) = (10usize, 10usize);
        let a = agent(n * m + 28, n, m, 17);
        let f32_bytes = a.save_policy().len();
        let i8_bytes = a.quant_policy(QuantMode::I8).encode().len();
        let bf16_bytes = a.quant_policy(QuantMode::Bf16).encode().len();
        let rollout_bytes = a.rollout_quant_policy().encode().len();
        // Acceptance bar: the shipped rollout profile ≤ 0.35× of the
        // full-precision frame (f32 actor rows are half the f64-widened
        // weights; the i8 critic bulk is ~1/8 plus per-row metadata,
        // the bf16 differential slice 1/4).
        assert!(
            (rollout_bytes as f64) < 0.35 * f32_bytes as f64,
            "rollout {rollout_bytes} vs f32 {f32_bytes}"
        );
        assert!(
            (i8_bytes as f64) < 0.2 * f32_bytes as f64,
            "i8 {i8_bytes} vs f32 {f32_bytes}"
        );
        assert!(
            (bf16_bytes as f64) < 0.5 * f32_bytes as f64,
            "bf16 {bf16_bytes} vs f32 {f32_bytes}"
        );
    }

    /// The decision streams of the f32 agent and the uniformly quantized
    /// policies, driven by identical RNG seeds, agree on most decisions —
    /// these modes are *approximate* (the K-NN candidate set flips on
    /// small proto perturbations; see the module docs), so the bar here
    /// is deliberately loose. The ≥ 99% bar belongs to the rollout
    /// profile below and the `quant_smoke` harness.
    #[test]
    fn uniform_quant_decisions_track_f32_decisions() {
        let (n, m) = (6usize, 6usize);
        let state_dim = n * m + 9;
        let a = agent(state_dim, n, m, 19);
        for (mode, bar) in [(QuantMode::I8, 85usize), (QuantMode::Bf16, 95)] {
            let qp = a.quant_policy(mode);
            let mut mapper_f = KBestMapper::new(n, m);
            let mut mapper_q = KBestMapper::new(n, m);
            let mut rng_f = StdRng::seed_from_u64(77);
            let mut rng_q = StdRng::seed_from_u64(77);
            let mut sf = ActScratch::default();
            let mut sq = QuantActScratch::default();
            let mut agree = 0usize;
            let rounds = 200usize;
            for t in 0..rounds {
                let state = rollout_state(state_dim, n, m, t);
                let bf = a.select_action_into(&state, &mut mapper_f, 0.3, &mut rng_f, &mut sf);
                let bq = qp.select_action_into(&state, &mut mapper_q, 0.3, &mut rng_q, &mut sq);
                if sf.cands[bf].choice == sq.cands[bq].choice {
                    agree += 1;
                }
            }
            assert!(
                agree * 100 >= rounds * bar,
                "{}: only {agree}/{rounds} decisions agree",
                mode.name()
            );
        }
    }

    /// The rollout profile's actor is exact f32, so every candidate set
    /// matches the agent's bit for bit, and the quantized critic's
    /// argmax must hold the ≥ 99% decision-agreement acceptance bar.
    #[test]
    fn rollout_profile_matches_f32_decisions() {
        let (n, m) = (6usize, 6usize);
        let state_dim = n * m + 9;
        let a = agent(state_dim, n, m, 19);
        let qp = a.rollout_quant_policy();
        let mut mapper_f = KBestMapper::new(n, m);
        let mut mapper_q = KBestMapper::new(n, m);
        let mut rng_f = StdRng::seed_from_u64(77);
        let mut rng_q = StdRng::seed_from_u64(77);
        let mut sf = ActScratch::default();
        let mut sq = QuantActScratch::default();
        let mut agree = 0usize;
        let rounds = 200usize;
        for t in 0..rounds {
            let state = rollout_state(state_dim, n, m, t);
            let bf = a.select_action_into(&state, &mut mapper_f, 0.3, &mut rng_f, &mut sf);
            let bq = qp.select_action_into(&state, &mut mapper_q, 0.3, &mut rng_q, &mut sq);
            // Candidate sets are bit-identical by construction.
            assert_eq!(
                sf.cands.iter().map(|c| &c.choice).collect::<Vec<_>>(),
                sq.cands.iter().map(|c| &c.choice).collect::<Vec<_>>(),
                "candidate set diverged at t={t}"
            );
            if sf.cands[bf].choice == sq.cands[bq].choice {
                agree += 1;
            }
        }
        assert!(
            agree * 100 >= rounds * 99,
            "only {agree}/{rounds} decisions agree"
        );
    }

    #[test]
    fn bf16_mode_consumes_the_same_rng_stream() {
        // Noise is drawn in f64 before any precision-dependent branch, so
        // after any number of decisions both paths leave the RNG in the
        // same state — checked by drawing one more value from each.
        use rand::RngExt;
        let (n, m) = (4usize, 4usize);
        let state_dim = n * m + 5;
        let a = agent(state_dim, n, m, 23);
        let qp = a.quant_policy(QuantMode::Bf16);
        let mut mapper_f = KBestMapper::new(n, m);
        let mut mapper_q = KBestMapper::new(n, m);
        let mut rng_f = StdRng::seed_from_u64(99);
        let mut rng_q = StdRng::seed_from_u64(99);
        let mut sf = ActScratch::default();
        let mut sq = QuantActScratch::default();
        for t in 0..50 {
            let state = rollout_state(state_dim, n, m, t);
            a.select_action_into(&state, &mut mapper_f, 0.7, &mut rng_f, &mut sf);
            qp.select_action_into(&state, &mut mapper_q, 0.7, &mut rng_q, &mut sq);
        }
        assert_eq!(
            rng_f.random_range(0.0..1.0f64),
            rng_q.random_range(0.0..1.0f64)
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn mode() -> impl Strategy<Value = QuantMode> {
            prop_oneof![
                Just(QuantMode::I8),
                Just(QuantMode::Bf16),
                Just(QuantMode::F32),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Any policy shape × any per-net mode triple survives
            /// encode → decode exactly — including the layer payloads,
            /// whose `PartialEq` covers the recomputed i8 `row_sum`
            /// caches and every scale/zero-point row.
            #[test]
            fn encode_decode_round_trips_any_shape_and_mode_triple(
                (n, m, extra, h1, h2, seed) in
                    (2usize..7, 2usize..7, 1usize..12, 2usize..24, 2usize..24, any::<u64>()),
                actor_mode in mode(),
                critic_mode in mode(),
                critic_hot_mode in mode(),
            ) {
                let state_dim = n * m + extra;
                let a: DdpgAgent = DdpgAgent::new(
                    state_dim,
                    n * m,
                    DdpgConfig {
                        hidden: [h1, h2],
                        k: 4,
                        seed,
                        replay_capacity: 8,
                        ..DdpgConfig::default()
                    },
                );
                let qp = a.quant_policy_modes(actor_mode, critic_mode, critic_hot_mode);
                let blob = qp.encode();
                let back = QuantPolicy::decode(&blob).unwrap();
                prop_assert_eq!(back, qp);
            }

            /// Every strict prefix of a valid image fails typed — the
            /// decoder never panics and never accepts a truncation.
            #[test]
            fn truncations_fail_typed(
                (n, m, h, seed) in (2usize..6, 2usize..6, 2usize..16, any::<u64>()),
                cut_frac in 0.0..1.0f64,
            ) {
                let a: DdpgAgent = DdpgAgent::new(
                    n * m + 3,
                    n * m,
                    DdpgConfig {
                        hidden: [h, h],
                        seed,
                        replay_capacity: 8,
                        ..DdpgConfig::default()
                    },
                );
                let blob = a.rollout_quant_policy().encode();
                let cut = ((blob.len() as f64 * cut_frac) as usize).min(blob.len() - 1);
                prop_assert!(QuantPolicy::decode(&blob[..cut]).is_err());
            }
        }
    }
}
