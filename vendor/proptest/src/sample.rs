//! Sampling from fixed sets.

use rand::rngs::StdRng;
use rand::RngCore;

use crate::strategy::Strategy;

/// A strategy choosing uniformly from `options`.
///
/// # Panics
/// Panics when `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// Output of [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
    }
}
