//! Everything a property-test module needs in scope.

pub use crate as prop;
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Arbitrary,
    ProptestConfig, TestCaseError, TestCaseResult,
};
