//! Collection strategies.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// Length specification for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// A strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
