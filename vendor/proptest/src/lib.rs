//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`,
//! strategies for ranges, tuples, `&str`, [`Just`], [`collection::vec`],
//! [`sample::select`] and [`any`], plus the `proptest!`, `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!` and `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the deterministic per-case seed, which is enough to reproduce it (case
//! seeds derive from the test name and case index only).

pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

#[doc(hidden)]
pub use rand as __rand;

use rand::rngs::StdRng;

/// Per-block configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject(String),
    /// `prop_assert*!` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (skipped case) with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Compile-time FNV-1a over the test name, used to seed case generation.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
        i += 1;
    }
    h
}

/// Arbitrary-value strategies for primitives, via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite values only; keeps arithmetic-heavy properties meaningful.
        use rand::RngExt;
        rng.random_range(-1e9..1e9)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        use rand::RngExt;
        char::from_u32(rng.random_range(0x20u32..0x7F)).unwrap_or('?')
    }
}

/// Generated-test driver. See crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            const __SEED: u64 = $crate::fnv1a(stringify!($name));
            let __config: $crate::ProptestConfig = $cfg;
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __case: u64 = 0;
            while __accepted < __config.cases {
                assert!(
                    __rejected < __config.cases.saturating_mul(32).max(1024),
                    "too many cases rejected by prop_assume!"
                );
                let __case_seed = __SEED ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                __case += 1;
                let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__case_seed);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome: $crate::TestCaseResult = (move || {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => __rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "property `{}` failed (case seed {:#x}): {}",
                        stringify!($name),
                        __case_seed,
                        msg
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Chooses uniformly among the given strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
