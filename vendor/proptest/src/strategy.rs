//! The [`Strategy`] trait and core combinators.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SampleRange};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`.
    ///
    /// # Panics
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `&str` strategies: real proptest treats the string as a regex. This
/// stand-in ignores the pattern and generates short strings mixing ASCII
/// and a couple of multi-byte characters, which exercises the same codec
/// paths the `.{0,24}`-style patterns in this workspace aim at.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '-', '_', '.', ',', '/', ':', '!', '"', '\\',
            '{', '}', 'é', 'λ', '中', '🦀',
        ];
        let len = rng.random_range(0..=24usize);
        (0..len)
            .map(|_| POOL[(rng.next_u64() % POOL.len() as u64) as usize])
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
