//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no serializer is
//! ever invoked — binary persistence uses the hand-rolled codecs), so the
//! traits are markers and the derives are no-ops from
//! [`serde_derive`].

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of serde's `Serialize`.
pub trait Serialize {}

/// Marker counterpart of serde's `Deserialize`.
pub trait Deserialize<'de> {}
