//! No-op derive macros backing the offline `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and stats
//! types but never feeds them to a serializer (persistence goes through the
//! hand-rolled binary codecs in `dss-proto` / `dss-store` / `dss-nn`), so
//! the derives only need to exist, not generate code.

use proc_macro::TokenStream;

/// Accepts the input and emits nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input and emits nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
