//! A minimal work-stealing scoped thread pool — the workspace's offline
//! stand-in for rayon.
//!
//! # Why this exists instead of rayon
//!
//! The build environment has no network access, so crates.io dependencies
//! are out; everything external is vendored as a minimal stand-in (see
//! `vendor/`). The training hot path only needs two parallel shapes —
//! *fork-join over borrowed data* (shard a GEMM's independent row blocks)
//! and *self-scheduled chunk loops* (uneven per-item work) — so this crate
//! implements exactly those on top of `std::sync`, in a few hundred lines:
//!
//! * [`Pool::scope`] — rayon-alike fork-join: spawn closures that borrow
//!   from the caller's stack; the call returns only after every spawned
//!   task has finished, which is what makes the borrows sound. The caller
//!   *helps*: while waiting it pops and runs queued tasks itself, so a
//!   `Pool::new(1)` scope degenerates to plain inline execution and never
//!   deadlocks.
//! * **Work stealing** — each worker owns a deque; spawns are distributed
//!   round-robin, workers pop their own deque LIFO (cache-warm) and steal
//!   FIFO from others when empty. Deques are mutex-striped rather than
//!   lock-free: tasks here are coarse (a band of GEMM rows, an actor
//!   rollout), so queue operations are nowhere near the contention point.
//! * [`Pool::for_each_chunk`] — a parallel index loop with atomic
//!   self-scheduling: workers grab the next chunk as they finish, which
//!   load-balances uneven chunks without rayon's splitter machinery.
//!
//! # Pool selection and the `DSS_THREADS` knob
//!
//! Kernels call [`with_current`], which resolves, in order: the serial
//! pool when already running *inside* a pool task (no nested parallelism —
//! a worker that re-entered `scope` could deadlock the pool and would
//! oversubscribe the machine); a [`with_pool`] override on this thread
//! (how benches pin serial-vs-parallel comparisons); else the process-wide
//! [`global`] pool, sized by the `DSS_THREADS` environment variable when
//! set (clamped to ≥ 1) or `std::thread::available_parallelism`.
//!
//! # Panics
//!
//! A panicking task does not poison the pool: the panic is caught, the
//! scope still waits for every sibling task, and the first payload is
//! re-thrown from `scope` on the caller's thread.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A queued task. Lifetimes are erased on the way in ([`Scope::spawn`]);
/// soundness comes from `scope` not returning until the count of spawned
/// tasks reaches zero.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Set while this thread is executing a pool task (worker or helping
    /// caller); makes [`with_current`] resolve to the serial pool so
    /// nested kernels run inline instead of re-entering the pool.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
    /// Thread-local [`with_pool`] override stack.
    static OVERRIDE: RefCell<Vec<Arc<Pool>>> = const { RefCell::new(Vec::new()) };
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per parallelism slot (workers plus the helping caller).
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Total queued jobs across all deques (sleep/wake bookkeeping).
    queued: AtomicUsize,
    /// Guards the sleep decision so a push-then-notify cannot slip between
    /// a worker's empty-queue check and its wait.
    sleep_lock: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn push(&self, slot: usize, job: Job) {
        let n = self.queues.len();
        self.queues[slot % n].lock().unwrap().push_back(job);
        self.queued.fetch_add(1, Ordering::SeqCst);
        let _g = self.sleep_lock.lock().unwrap();
        self.wake.notify_one();
    }

    /// Pops from `home`'s deque LIFO, else steals FIFO from the others.
    fn try_pop(&self, home: usize) -> Option<Job> {
        let n = self.queues.len();
        if let Some(job) = self.queues[home % n].lock().unwrap().pop_back() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        for i in 1..n {
            if let Some(job) = self.queues[(home + i) % n].lock().unwrap().pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }
}

/// Runs one job with the in-task marker set (restoring the previous value,
/// so a helping caller that was already in a task stays marked).
fn run_job(job: Job) {
    IN_TASK.with(|flag| {
        let prev = flag.replace(true);
        job();
        flag.set(prev);
    });
}

/// A fixed-size work-stealing thread pool. `Pool::new(n)` provides
/// parallelism degree `n`: `n - 1` background workers plus the calling
/// thread, which participates while blocked in [`Pool::scope`].
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Round-robin spawn distribution cursor.
    spawn_cursor: AtomicUsize,
}

impl Pool {
    /// A pool of parallelism degree `threads` (≥ 1). `Pool::new(1)` spawns
    /// no workers; every task runs inline on the caller during `scope`.
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads - 1)
            .map(|home| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("workpool-{home}"))
                    .spawn(move || worker_loop(&shared, home))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
            spawn_cursor: AtomicUsize::new(0),
        }
    }

    /// The pool's parallelism degree (workers + helping caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fork-join over borrowed data: `f` spawns tasks via [`Scope::spawn`];
    /// the call returns (or re-throws a task panic) only after every
    /// spawned task has completed. The caller executes queued tasks while
    /// it waits.
    pub fn scope<'s, R>(&'s self, f: impl FnOnce(&Scope<'s>) -> R) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                lock: Mutex::new(()),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _invariant: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.help_until_done(&scope.state);
        let task_panic = scope.state.panic.lock().unwrap().take();
        match result {
            // A panic in the scope body itself outranks task panics (it is
            // the earlier, causal failure) — but tasks were still waited on.
            Err(body_panic) => panic::resume_unwind(body_panic),
            Ok(r) => match task_panic {
                Some(p) => panic::resume_unwind(p),
                None => r,
            },
        }
    }

    /// Self-scheduled parallel loop over `0..len`: `f` receives disjoint
    /// index ranges of at most `chunk` elements, claimed atomically by
    /// whichever thread frees up first. Runs inline when the pool is
    /// serial or one chunk covers the range.
    pub fn for_each_chunk(&self, len: usize, chunk: usize, f: impl Fn(Range<usize>) + Sync) {
        let chunk = chunk.max(1);
        if self.threads == 1 || len <= chunk {
            if len > 0 {
                f(0..len);
            }
            return;
        }
        let n_chunks = len.div_ceil(chunk);
        let next = AtomicUsize::new(0);
        let (next, f) = (&next, &f);
        self.scope(|s| {
            for _ in 0..self.threads.min(n_chunks) {
                s.spawn(move || loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    let start = c * chunk;
                    if start >= len {
                        break;
                    }
                    f(start..(start + chunk).min(len));
                });
            }
        });
    }

    /// Runs this scope's remaining tasks (and any other queued work — the
    /// helping caller is just another worker) until the scope's count hits
    /// zero, then sleeps on the scope condvar for in-flight stragglers.
    fn help_until_done(&self, state: &ScopeState) {
        let helper_slot = self.threads - 1;
        while state.pending.load(Ordering::SeqCst) > 0 {
            if let Some(job) = self.shared.try_pop(helper_slot) {
                run_job(job);
                continue;
            }
            let guard = state.lock.lock().unwrap();
            if state.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            // All of this scope's tasks are running on workers (nothing is
            // queued and, with no spawns after the scope body, nothing new
            // can appear); the last one to finish notifies `done`.
            drop(state.done.wait(guard).unwrap());
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.sleep_lock.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, home: usize) {
    loop {
        if let Some(job) = shared.try_pop(home) {
            run_job(job);
            continue;
        }
        let guard = shared.sleep_lock.lock().unwrap();
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if shared.queued.load(Ordering::SeqCst) > 0 {
            continue; // work appeared between the pop attempt and the lock
        }
        drop(shared.wake.wait(guard).unwrap());
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Per-`scope` completion accounting shared by its tasks.
struct ScopeState {
    pending: AtomicUsize,
    lock: Mutex<()>,
    done: Condvar,
    /// First task panic, re-thrown by `scope`.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Spawn handle passed to the closure of [`Pool::scope`]. Tasks may borrow
/// anything that outlives the `scope` call; they must not capture the
/// `Scope` itself (tasks do not spawn — the completion wait relies on the
/// task count being final once the scope body returns).
pub struct Scope<'s> {
    pool: &'s Pool,
    state: Arc<ScopeState>,
    /// Invariant over `'s` so the borrow the tasks hold cannot be shrunk.
    _invariant: PhantomData<fn(&'s ()) -> &'s ()>,
}

impl<'s> Scope<'s> {
    /// Queues `f` for execution on the pool. Panics in `f` are caught and
    /// re-thrown by the enclosing [`Pool::scope`] after all tasks finish.
    pub fn spawn(&self, f: impl FnOnce() + Send + 's) {
        let slot = self.pool.spawn_cursor.fetch_add(1, Ordering::Relaxed);
        self.spawn_at(slot, f);
    }

    /// [`Scope::spawn`] with an explicit home slot: the task is queued on
    /// worker queue `slot % threads` instead of the round-robin cursor,
    /// so callers that re-submit the same work unit across scopes (e.g.
    /// GEMM output bands within a training step) land it on the same
    /// worker every time — keeping that band's output rows resident in
    /// that worker's cache. The assignment is an *affinity hint*: an idle
    /// worker may still steal the task, so pinning never costs
    /// utilization, it only biases placement.
    pub fn spawn_at(&self, slot: usize, f: impl FnOnce() + Send + 's) {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 's> = Box::new(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _g = state.lock.lock().unwrap();
                state.done.notify_all();
            }
        });
        // SAFETY: only the lifetime is erased. `Pool::scope` does not
        // return before `pending` reaches zero, i.e. before this closure
        // (and the borrows it captures, all outliving `'s`) has run to
        // completion; the invariant `'s` ties those borrows to frames
        // still on the caller's stack at that point.
        let task: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 's>, Box<dyn FnOnce() + Send + 'static>>(
                task,
            )
        };
        self.pool.shared.push(slot, task);
    }
}

/// Parallelism degree requested via `DSS_THREADS` (clamped to ≥ 1; an
/// unparseable value falls back to 1), else the machine's available
/// parallelism. Public so tools that build their own pools (benches)
/// honor the exact same knob as [`global`] instead of re-parsing it.
pub fn default_threads() -> usize {
    match std::env::var("DSS_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// The process-wide pool, created on first use with [`default_threads`].
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// A degree-1 pool: `scope` runs everything inline on the caller.
pub fn serial() -> &'static Pool {
    static SERIAL: OnceLock<Pool> = OnceLock::new();
    SERIAL.get_or_init(|| Pool::new(1))
}

/// Resolves the pool the current context should use (see the module docs
/// for the precedence) and passes it to `f`. This is the entry point the
/// GEMM kernels use, so overriding the pool via [`with_pool`] retargets
/// every kernel dispatched from the closure's thread.
pub fn with_current<R>(f: impl FnOnce(&Pool) -> R) -> R {
    if IN_TASK.with(Cell::get) {
        return f(serial());
    }
    let overridden = OVERRIDE.with(|stack| stack.borrow().last().cloned());
    match overridden {
        Some(pool) => f(&pool),
        None => f(global()),
    }
}

/// Runs `f` with `pool` as this thread's [`with_current`] pool (stacked;
/// restored on exit, including on panic).
pub fn with_pool<R>(pool: Arc<Pool>, f: impl FnOnce() -> R) -> R {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    OVERRIDE.with(|stack| stack.borrow_mut().push(pool));
    let _restore = Restore;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_tasks_and_borrows_stack_data() {
        let pool = Pool::new(4);
        let mut results = vec![0usize; 64];
        pool.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        for (i, &v) in results.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn spawn_at_runs_all_tasks_on_any_slot() {
        // The pinned-slot spawn is an affinity hint; correctness-wise it
        // must behave exactly like `spawn` for every slot value,
        // including slots far beyond the worker count.
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let mut results = vec![0usize; 48];
            pool.scope(|s| {
                for (i, slot) in results.iter_mut().enumerate() {
                    s.spawn_at(i % 3 + usize::MAX / 2, move || *slot = i + 1);
                }
            });
            for (i, &v) in results.iter().enumerate() {
                assert_eq!(v, i + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..10 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = Pool::new(2);
        let sum = pool.scope(|s| {
            s.spawn(|| {});
            41 + 1
        });
        assert_eq!(sum, 42);
    }

    #[test]
    fn for_each_chunk_covers_range_exactly_once() {
        let pool = Pool::new(3);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.for_each_chunk(1000, 17, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn for_each_chunk_empty_and_tiny() {
        let pool = Pool::new(2);
        pool.for_each_chunk(0, 8, |_| panic!("no chunks for an empty range"));
        let count = AtomicU64::new(0);
        pool.for_each_chunk(3, 8, |r| {
            count.fetch_add(r.len() as u64, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn task_panic_propagates_after_siblings_finish() {
        let pool = Pool::new(2);
        let finished = Arc::new(AtomicU64::new(0));
        let fin = Arc::clone(&finished);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task failure"));
                for _ in 0..8 {
                    let fin = Arc::clone(&fin);
                    s.spawn(move || {
                        fin.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(finished.load(Ordering::SeqCst), 8, "siblings still ran");
        // Pool is not poisoned.
        let ok = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_kernels_resolve_to_serial_inside_tasks() {
        let pool = Pool::new(3);
        let all_serial = AtomicBool::new(true);
        pool.scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    with_current(|inner| {
                        if inner.threads() != 1 {
                            all_serial.store(false, Ordering::SeqCst);
                        }
                    });
                });
            }
        });
        assert!(all_serial.load(Ordering::SeqCst));
    }

    #[test]
    fn with_pool_overrides_current_and_restores() {
        let four = Arc::new(Pool::new(4));
        let seen = with_pool(Arc::clone(&four), || with_current(|p| p.threads()));
        assert_eq!(seen, 4);
        // After the override is popped, current is the global again.
        with_current(|p| assert_eq!(p.threads(), global().threads()));
    }

    #[test]
    fn many_concurrent_scopes_from_many_threads() {
        let pool = Arc::new(Pool::new(4));
        let total = Arc::new(AtomicU64::new(0));
        std::thread::scope(|ts| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                ts.spawn(move || {
                    for _ in 0..20 {
                        pool.scope(|s| {
                            for _ in 0..8 {
                                let total = Arc::clone(&total);
                                s.spawn(move || {
                                    total.fetch_add(1, Ordering::SeqCst);
                                });
                            }
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 4 * 20 * 8);
    }
}
