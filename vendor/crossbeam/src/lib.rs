//! Offline stand-in for `crossbeam`, exposing only [`channel`].

pub mod channel;
