//! Multi-producer multi-consumer channels over `std::sync::mpsc`.
//!
//! crossbeam's `Receiver` is cloneable (MPMC); std's is not, so the
//! receiver wraps the std endpoint in an `Arc<Mutex<…>>`. Contention is a
//! non-issue at the workspace's message rates (coordination watches and
//! control-plane frames, not data tuples).

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender { tx },
        Receiver {
            rx: Arc::new(Mutex::new(rx)),
        },
    )
}

/// Sending half (cloneable).
#[derive(Debug)]
pub struct Sender<T> {
    tx: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message; fails only when all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.tx
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// Receiving half (cloneable; receivers share one queue).
#[derive(Debug)]
pub struct Receiver<T> {
    rx: Arc<Mutex<mpsc::Receiver<T>>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Self {
            rx: Arc::clone(&self.rx),
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.rx
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .recv()
            .map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.rx
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .try_recv()
            .map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.rx
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .recv_timeout(timeout)
            .map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
    }

    /// Blocking iterator until all senders disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Non-blocking iterator over queued messages.
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

/// All receivers disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// All senders disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Why `try_recv` returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

/// Why `recv_timeout` returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_visible() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(7).unwrap();
        assert_eq!(rx2.recv(), Ok(7));
        assert_eq!(rx1.try_recv(), Err(TryRecvError::Empty));
    }
}
