//! Sequence helpers.

use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
