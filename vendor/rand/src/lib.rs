//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the (small) API surface the workspace actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   splitmix64, so `seed_from_u64` gives well-mixed streams;
//! * [`SeedableRng::seed_from_u64`];
//! * [`RngExt::random_range`] over integer and float ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is reproducible: the same seed always yields the same stream,
//! which the experiment harness relies on end to end.

pub mod rngs;
pub mod seq;

/// Core of a pseudo-random generator: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring rand 0.9's `Rng::random_range`.
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// A range that knows how to draw a uniform sample from an RNG.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniformly random mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn small_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.random_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02, "{counts:?}");
        }
    }
}
