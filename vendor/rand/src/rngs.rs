//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator.
///
/// State is seeded through splitmix64 so that adjacent `seed_from_u64`
/// seeds (0, 1, 2, …) still produce decorrelated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// The raw xoshiro256++ state word vector — everything the generator
    /// is. Captured by checkpoint/recovery code so a restored process can
    /// resume the exact random stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state previously captured with
    /// [`StdRng::state`]. The restored generator continues the original
    /// stream bit-for-bit.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let mut same = 0;
        for _ in 0..64 {
            if a.next_u64() == b.next_u64() {
                same += 1;
            }
        }
        assert_eq!(same, 0);
    }
}
