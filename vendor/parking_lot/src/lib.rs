//! Offline stand-in for `parking_lot`: the same non-poisoning `lock()` /
//! `read()` / `write()` API, implemented over `std::sync`. A poisoned std
//! lock (a panic while holding it) is unwrapped into the underlying data,
//! matching parking_lot's "no poisoning" semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
