//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply cloneable, sliceable, immutable buffer),
//! [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`] cursor
//! traits — restricted to the little-endian accessors the workspace codecs
//! actually use. `Bytes` shares one allocation across clones and slices via
//! `Arc`, so `clone`/`slice`/`split_to` never copy payload bytes.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Splits off and returns everything from `at`, truncating `self`.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_off(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_ref())
    }
}

/// Growable byte builder.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Clears the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits off and returns the first `at` bytes, keeping the rest.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let head = self.data.drain(..at).collect();
        BytesMut { data: head }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", self.as_ref())
    }
}

/// Read cursor over a byte source (little-endian accessors only).
///
/// # Panics
/// All `get_*` methods panic when fewer than the required bytes remain,
/// matching the real crate's contract; codecs check `remaining()` first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.data.len(), "buffer underflow");
        self.data.drain(..n);
    }
}

/// Write cursor over a growable sink (little-endian writers only).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f64_le(-2.5);
        let frozen = buf.freeze();
        let mut cursor = frozen.as_ref();
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 300);
        assert_eq!(cursor.get_u32_le(), 70_000);
        assert_eq!(cursor.get_u64_le(), 1 << 40);
        assert_eq!(cursor.get_f64_le(), -2.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_slicing_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[1, 2, 3]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&rest[..], &[2, 3, 4]);
    }

    #[test]
    fn bytes_as_buf_consumes_from_front() {
        let mut b = Bytes::from(vec![1, 0, 2, 0]);
        assert_eq!(b.get_u16_le(), 1);
        assert_eq!(b.get_u16_le(), 2);
        assert!(b.is_empty());
    }
}
