//! Offline stand-in for `criterion`.
//!
//! Supports the API the workspace benches use (`benchmark_group`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, the
//! `criterion_group!` / `criterion_main!` macros) with a simple timer:
//! after one warm-up batch, each benchmark runs enough iterations to fill
//! a ~50 ms measurement window (several samples) and reports the median
//! sample's ns/iter on stdout. No statistics machinery, no reports on
//! disk — the workspace's perf artifacts come from `dss-bench`'s
//! `bench_json` binary instead.

use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(50);
/// Samples taken within the budget.
const SAMPLES: usize = 7;

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in times one routine call per setup call regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times one benchmark's closure.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: how many iters fit one sample window?
        let t0 = Instant::now();
        let mut calib_iters = 0u64;
        while t0.elapsed() < MEASURE_BUDGET / (SAMPLES as u32 * 2) {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let per_sample = calib_iters.max(1);
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let s = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            samples.push(s.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Times `routine` on fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        std::hint::black_box(routine(input)); // warm-up
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let input = setup();
            let s = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(s.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    println!("bench {label:<60} {:>14.1} ns/iter", b.ns_per_iter);
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
