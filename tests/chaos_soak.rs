//! Chaos soak: the control-plane backend under an *unreliable network*.
//!
//! The link between agent and master drops, duplicates, delays and
//! corrupts control messages (≥ 10% loss each way) and black-holes
//! entirely for a two-epoch partition window — and the training stack
//! must ride through it: the reliable retry protocol absorbs ordinary
//! loss, partitions degrade to typed penalty epochs instead of hanging,
//! the fault stream is deterministic for a fixed chaos seed across
//! thread-pool sizes, and a DDPG agent still trains end-to-end and beats
//! the ε = 1 random baseline.

use std::sync::Arc;

use dsdps_drl::control::env::Environment;
use dsdps_drl::control::parallel::RoundPlan;
use dsdps_drl::control::scenario::{cluster_fleet, Scenario};
use dsdps_drl::control::ControlConfig;
use dsdps_drl::proto::ChaosPlan;
use dsdps_drl::rl::{DdpgAgent, DdpgConfig, KBestMapper};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workpool::{with_pool, Pool};

fn cfg() -> ControlConfig {
    ControlConfig {
        sim_epoch_s: 1.0,
        ..ControlConfig::test()
    }
}

/// The soak scenario: the registry's lossy link (15% drop + duplicates +
/// delays + corruption each way) with a two-epoch full partition on top.
fn soak_scenario() -> Scenario {
    let mut sc = Scenario::by_name("cq-small-lossy").expect("registry scenario");
    let chaos = sc
        .chaos
        .take()
        .expect("lossy scenario carries a chaos plan");
    sc.chaos = Some(chaos.with_partition_epochs(4, 6));
    sc
}

/// The chaos streams are seeded and counter-driven, never clocked: the
/// same chaos seed must produce the same fault pattern — and therefore
/// bit-identical collected rewards — regardless of the worker-pool size.
#[test]
fn chaos_collection_is_deterministic_across_thread_counts() {
    let cfg = cfg();
    let sc = soak_scenario();
    let agent = DdpgAgent::new(
        sc.state_dim(),
        sc.action_dim(),
        DdpgConfig {
            k: 4,
            seed: cfg.seed,
            hidden: [16, 8],
            ..DdpgConfig::default()
        },
    );
    let run = |threads: usize| {
        with_pool(Arc::new(Pool::new(threads)), || {
            let mut col = cluster_fleet(std::slice::from_ref(&sc), &cfg, 2, 256);
            col.collect_round(&agent, 0.4, 8)
        })
    };
    let first = run(1);
    assert_eq!(first.len(), 2);
    assert!(first.iter().all(|r| r.is_finite()));
    assert_eq!(first, run(1), "same-seed chaos re-run must be identical");
    assert_eq!(
        first,
        run(4),
        "thread count must not change the fault pattern"
    );
}

/// A single lossy+partitioned env, stepped past the partition window:
/// the partition epochs degrade (bounded penalty, no hang), the loss
/// counters prove the chaos actually fired at soak rates, and the env
/// re-syncs afterwards.
#[test]
fn partition_window_degrades_and_heals() {
    let cfg = cfg();
    let sc = soak_scenario();
    let mut env = sc.cluster_env(&cfg, 42);
    let w = &sc.app.workload;
    let mut current = sc.initial_assignment();
    let mut latencies = Vec::new();
    for step in 0..10 {
        latencies.push(env.deploy_and_measure(&current, w));
        current = current.with_move(step % current.n_executors(), (step + 1) % 4);
    }
    assert!(latencies.iter().all(|v| v.is_finite()));
    assert!(
        env.degraded_epochs() >= 2,
        "the two partition epochs must degrade: {latencies:?}"
    );
    assert!(
        latencies[8].abs() < 10_000.0 && latencies[9].abs() < 10_000.0,
        "post-heal epochs must measure real latency again: {latencies:?}"
    );
    let stats = env.chaos_stats().expect("chaos armed");
    assert!(
        stats.loss_fraction() >= 0.10,
        "soak must actually lose ≥ 10% of traffic: {stats:?}"
    );
    assert!(
        stats.partition_dropped > 0,
        "partition never fired: {stats:?}"
    );
}

/// The acceptance soak: DDPG trains end-to-end while every control
/// message risks loss and a partition interrupts training — and the
/// trained greedy policy still beats the ε = 1 random baseline (both
/// evaluated under the *same* deterministic fault stream, so the chaos
/// cancels out of the comparison).
#[test]
fn ddpg_trains_through_lossy_partitioned_control_plane() {
    let cfg = cfg();
    let sc = soak_scenario();
    let mut agent = DdpgAgent::new(
        sc.state_dim(),
        sc.action_dim(),
        DdpgConfig {
            k: 6,
            seed: cfg.seed,
            gamma: cfg.gamma,
            hidden: [32, 16],
            ..DdpgConfig::default()
        },
    );

    // Fresh fleet per policy: same seeds, same clusters, same chaos.
    let eval = |agent: &DdpgAgent, eps: f64| -> f64 {
        let mut fresh = cluster_fleet(std::slice::from_ref(&sc), &cfg, 2, 1024);
        fresh.collect_round(agent, eps, 12).iter().sum::<f64>() / 24.0
    };
    let baseline = eval(&agent, 1.0);

    let mut col = cluster_fleet(std::slice::from_ref(&sc), &cfg, 2, 1024);
    let mut mapper = KBestMapper::new(sc.n_executors(), sc.n_machines());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let plan = RoundPlan {
        rounds: 10,
        steps_per_actor: 8,
        train_per_round: 30,
    };
    col.run(&mut agent, &mut mapper, &mut rng, &plan, |round| {
        (0.8 * (1.0 - round as f64 / 10.0)).max(0.1)
    });
    assert!(agent.train_steps() >= 300, "learner must actually train");

    // The training fleet really soaked: lossy link, degraded partition
    // epochs, no hang.
    let stats = col.env(0).chaos_stats().expect("chaos armed");
    assert!(
        stats.loss_fraction() >= 0.10,
        "training traffic must have soaked ≥ 10% loss: {stats:?}"
    );
    assert!(
        col.env(0).degraded_epochs() >= 1,
        "the partition window must have degraded at least one epoch"
    );

    let trained = eval(&agent, 0.0);
    assert!(
        trained > baseline,
        "trained greedy reward {trained:.4} must beat the random baseline {baseline:.4}"
    );
}

/// A zero-fault chaos plan is a pure passthrough: armed but rate-zero
/// chaos must reproduce the chaos-free trajectory exactly, on the same
/// seeds the clean parity tests use.
#[test]
fn zero_rate_chaos_is_transparent_end_to_end() {
    let cfg = cfg();
    let clean = Scenario::by_name("cq-small-steady").expect("registry scenario");
    let mut wrapped = clean.clone();
    wrapped.chaos = Some(ChaosPlan::new(0xD06F00D));
    let walk = |sc: &Scenario| -> Vec<f64> {
        let mut env = sc.cluster_env(&cfg, 7);
        let mut current = sc.initial_assignment();
        let mut out = Vec::new();
        for step in 0..6 {
            out.push(env.deploy_and_measure(&current, &sc.app.workload));
            current = current.with_move(step % current.n_executors(), (step + 1) % 4);
        }
        out
    };
    assert_eq!(walk(&clean), walk(&wrapped), "zero-rate chaos drifted");
}
