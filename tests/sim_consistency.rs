//! Cross-crate consistency: the fast analytic evaluator must rank
//! assignments the same way as the tuple-level discrete-event engine,
//! since agents train on the former and are judged on the latter.

use dsdps_drl::apps::{continuous_queries, CqScale};
use dsdps_drl::sim::{AnalyticModel, Assignment, ClusterSpec, SimConfig, SimEngine};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn des_stable_ms(app: &dsdps_drl::apps::App, a: &Assignment) -> f64 {
    let cluster = ClusterSpec::homogeneous(10);
    let mut eng = SimEngine::new(
        app.topology.clone(),
        cluster,
        app.workload.clone(),
        SimConfig::steady_state(42),
    )
    .unwrap();
    eng.deploy(a.clone()).unwrap();
    eng.run_until(90.0);
    eng.measure_avg_latency_ms().expect("tuples completed")
}

#[test]
fn analytic_and_des_agree_on_pack_level_ordering() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let mut model = AnalyticModel::new(
        app.topology.clone(),
        cluster.clone(),
        SimConfig::steady_state(1),
    )
    .unwrap();
    let n = app.topology.n_executors();
    let mut analytic = Vec::new();
    let mut des = Vec::new();
    for k in [1usize, 2, 4, 10] {
        let a = Assignment::new((0..n).map(|e| e % k).collect(), 10).unwrap();
        analytic.push(model.evaluate(&a, &app.workload));
        des.push(des_stable_ms(&app, &a));
    }
    // Both strictly increasing in spread for this light workload.
    for i in 1..analytic.len() {
        assert!(
            analytic[i] > analytic[i - 1],
            "analytic not monotone: {analytic:?}"
        );
        assert!(des[i] > des[i - 1], "DES not monotone: {des:?}");
    }
    // Levels agree within 25% at every point.
    for (a, d) in analytic.iter().zip(&des) {
        assert!((a / d - 1.0).abs() < 0.25, "analytic {a} vs DES {d}");
    }
}

#[test]
fn analytic_correlates_with_des_on_random_assignments() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let mut model = AnalyticModel::new(
        app.topology.clone(),
        cluster.clone(),
        SimConfig::steady_state(2),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let n = app.topology.n_executors();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..12 {
        // Random pack level, then random machines — spans the space.
        let k = rng.random_range(1..=10usize);
        let a = Assignment::new((0..n).map(|_| rng.random_range(0..k)).collect(), 10).unwrap();
        xs.push(model.evaluate(&a, &app.workload));
        ys.push(des_stable_ms(&app, &a));
    }
    let nf = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let cov: f64 = xs.iter().zip(&ys).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = xs.iter().map(|a| (a - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|b| (b - my).powi(2)).sum();
    let corr = cov / (vx.sqrt() * vy.sqrt()).max(1e-12);
    assert!(corr > 0.8, "correlation {corr}: {xs:?} vs {ys:?}");
}

#[test]
fn overloaded_machine_is_catastrophic_in_both_models() {
    let app = continuous_queries(CqScale::Large);
    let cluster = ClusterSpec::homogeneous(10);
    let mut model = AnalyticModel::new(
        app.topology.clone(),
        cluster.clone(),
        SimConfig::steady_state(3),
    )
    .unwrap();
    let n = app.topology.n_executors();
    let packed = Assignment::new(vec![0; n], 10).unwrap();
    let spread = Assignment::round_robin(&app.topology, &cluster);
    let a_packed = model.evaluate(&packed, &app.workload);
    let a_spread = model.evaluate(&spread, &app.workload);
    assert!(
        a_packed > 3.0 * a_spread,
        "analytic must heavily penalize saturation: {a_packed} vs {a_spread}"
    );
}
