//! Agent warm restart: the Figure-1 database actually feeds training.
//!
//! Runs the integrated control plane (agent ↔ socket ↔ Nimbus ↔ simulated
//! cluster), then simulates an agent restart: reopen the durable
//! transition database, load it into an offline dataset, and pretrain a
//! fresh actor-critic scheduler from it — the paper's "pre-trained by the
//! historical transition samples" path, across a process boundary.

use dsdps_drl::control::experiment::{initial_state, train_method, Method};
use dsdps_drl::control::{ActorCriticScheduler, ControlConfig, RewardScale, Scheduler};
use dsdps_drl::offline::dataset_from_db;
use dsdps_drl::sim::{ClusterSpec, Grouping, SimConfig, TopologyBuilder, Workload};
use dsdps_drl::store::TransitionDb;
use dsdps_drl::{run_control_plane, ControlPlaneConfig};

fn setup() -> (dsdps_drl::sim::Topology, ClusterSpec, Workload) {
    let mut b = TopologyBuilder::new("warm-restart");
    let s = b.spout("s", 2, 0.05);
    let x = b.bolt("x", 4, 0.3);
    let y = b.bolt("y", 2, 0.2);
    b.edge(s, x, Grouping::Shuffle, 1.0, 128);
    b.edge(x, y, Grouping::Shuffle, 0.5, 64);
    let topology = b.build().unwrap();
    let cluster = ClusterSpec::homogeneous(5);
    let workload = Workload::uniform(&topology, 100.0);
    (topology, cluster, workload)
}

#[test]
fn control_plane_samples_warm_start_a_fresh_agent() {
    let (topology, cluster, workload) = setup();
    let db_dir = std::env::temp_dir().join(format!("dss-warm-restart-{}", std::process::id()));
    std::fs::remove_dir_all(&db_dir).ok();

    // Phase 1: a first agent (round-robin is fine — any policy produces
    // valid samples) runs the distributed control plane; every epoch's
    // sample lands in the database.
    let mut first_agent = dsdps_drl::control::RoundRobinScheduler::new(&topology, &cluster);
    let reward = RewardScale::default();
    let report = run_control_plane(
        topology.clone(),
        cluster.clone(),
        workload.clone(),
        SimConfig::default(),
        &mut first_agent,
        &ControlPlaneConfig {
            epochs: 4,
            stabilize_s: 5.0,
            db_dir: Some(db_dir.clone()),
            reward,
            ..ControlPlaneConfig::default()
        },
    )
    .expect("control plane run");
    assert_eq!(report.transitions_stored, 4);

    // Phase 2: the agent process "restarts". A fresh scheduler pretrains
    // from the recovered history.
    let db = TransitionDb::open(&db_dir).expect("reopen db");
    let dataset = dataset_from_db(&db, &topology, cluster.n_machines(), reward)
        .expect("load offline dataset");
    assert_eq!(dataset.len(), 4);
    for s in &dataset.samples {
        assert!(s.latency_ms > 0.0, "latencies survive the roundtrip");
    }

    let cfg = ControlConfig::test();
    let mut fresh = ActorCriticScheduler::new(
        topology.n_executors(),
        cluster.n_machines(),
        workload.rates().len(),
        &cfg,
    );
    fresh.pretrain(&dataset);

    // The pretrained scheduler produces a valid assignment for the
    // current state.
    let state = dsdps_drl::control::SchedState::new(
        dsdps_drl::sim::Assignment::round_robin(&topology, &cluster),
        workload.clone(),
    );
    let proposal = fresh.schedule(&state);
    assert_eq!(proposal.n_executors(), topology.n_executors());
    assert!(proposal
        .as_slice()
        .iter()
        .all(|&m| m < cluster.n_machines()));
    std::fs::remove_dir_all(&db_dir).ok();
}

#[test]
fn trained_agent_improves_over_the_control_plane() {
    // Train an actor-critic on the analytic model, then verify its
    // distributed deployment beats round-robin through the full socket +
    // Nimbus + DES pipeline — the cross-substrate version of Fig. 6's
    // comparison.
    let (topology, cluster, workload) = setup();
    let app = dsdps_drl::apps::App {
        name: "warm-restart-cmp",
        topology: topology.clone(),
        workload: workload.clone(),
    };
    let cfg = ControlConfig::test();
    let mut trained = train_method(Method::ActorCritic, &app, &cluster, &cfg);
    let _ = initial_state(&app, &cluster);

    let run = |sched: &mut dyn Scheduler| {
        let report = run_control_plane(
            topology.clone(),
            cluster.clone(),
            workload.clone(),
            SimConfig::default(),
            sched,
            &ControlPlaneConfig {
                epochs: 3,
                stabilize_s: 30.0,
                ..ControlPlaneConfig::default()
            },
        )
        .expect("control plane run");
        *report.epoch_latency_ms.last().expect("at least one epoch")
    };

    let mut rr = dsdps_drl::control::RoundRobinScheduler::new(&topology, &cluster);
    let rr_ms = run(&mut rr);
    let ac_ms = run(trained.scheduler.as_mut());
    assert!(
        ac_ms < rr_ms * 1.02,
        "trained agent ({ac_ms:.3} ms) should not lose to round-robin ({rr_ms:.3} ms)"
    );
}
