//! Smoke tests for the figure runners: miniature versions of every
//! experiment the paper's evaluation reports, checking structure rather
//! than magnitudes.

use dsdps_drl::apps::{continuous_queries, log_stream, word_count, CqScale};
use dsdps_drl::control::experiment::{
    deployment_curve, normalize_rewards, train_method, workload_shift_curve, Method,
};
use dsdps_drl::control::ControlConfig;
use dsdps_drl::metrics::TimeSeries;
use dsdps_drl::sim::{Assignment, ClusterSpec};

fn tiny() -> ControlConfig {
    ControlConfig {
        offline_samples: 80,
        offline_steps: 50,
        online_epochs: 20,
        eps_decay_epochs: 10,
        ..ControlConfig::test()
    }
}

#[test]
fn deployment_curves_decay_for_all_three_topologies() {
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = tiny();
    for app in [
        continuous_queries(CqScale::Small),
        log_stream(),
        word_count(),
    ] {
        let rr = Assignment::round_robin(&app.topology, &cluster);
        let curve = deployment_curve(&app, &cluster, &cfg, &rr, 8.0, 30.0);
        assert!(curve.len() >= 14, "{}: {} samples", app.name, curve.len());
        let early = curve.window_mean(0.0, 90.0).unwrap();
        let late = curve.window_mean(360.0, 480.0 + 1.0).unwrap();
        assert!(
            early > late,
            "{}: deployment curve should decay ({early} -> {late})",
            app.name
        );
        assert!(late > 0.1, "{}: positive stable latency", app.name);
    }
}

#[test]
fn log_stream_is_slowest_topology() {
    // Paper: the log topology "leads to a longer average tuple processing
    // time no matter which method is used".
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = tiny();
    let stable = |app: &dsdps_drl::apps::App| {
        let rr = Assignment::round_robin(&app.topology, &cluster);
        let c = deployment_curve(app, &cluster, &cfg, &rr, 8.0, 30.0);
        c.tail_mean(4).unwrap()
    };
    let cq = stable(&continuous_queries(CqScale::Large));
    let log = stable(&log_stream());
    let wc = stable(&word_count());
    assert!(log > cq, "log {log} should exceed cq {cq}");
    assert!(log > wc, "log {log} should exceed wc {wc}");
}

#[test]
fn workload_shift_produces_spike_and_restabilization() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = tiny();
    let mut outcome = train_method(Method::ActorCritic, &app, &cluster, &cfg);
    let curve = workload_shift_curve(&app, &cluster, &cfg, &mut outcome, 8.0, 20.0, 30.0);
    assert!(curve.last().unwrap().0 >= 20.0 * 60.0 - 1.0);
    // The curve must have data both sides of the shift.
    assert!(curve.window_mean(300.0, 480.0).is_some());
    assert!(curve.window_mean(1000.0, 1200.0 + 1.0).is_some());
}

#[test]
fn normalized_reward_curves_stay_in_unit_interval() {
    let raw = TimeSeries::from_sampled(
        0.0,
        1.0,
        (0..100)
            .map(|i| -2.0 + (i as f64 / 100.0) + if i % 7 == 0 { -0.3 } else { 0.0 })
            .collect(),
    );
    let n = normalize_rewards(&raw);
    assert_eq!(n.len(), raw.len());
    assert!(n.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
    // Smoothed upward trend survives.
    assert!(n.tail_mean(10).unwrap() > n.window_mean(0.0, 10.0).unwrap());
}

#[test]
fn dqn_trains_and_produces_rewards_series() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let outcome = train_method(Method::Dqn, &app, &cluster, &tiny());
    let rewards = outcome.rewards.expect("DQN is a DRL method");
    assert_eq!(rewards.len(), tiny().online_epochs);
    assert!(rewards.values().iter().all(|&r| r < 0.0));
}
