//! The scenario registry across both `Environment` backends.
//!
//! Every named scenario is exercised on the analytic evaluator *and* the
//! tuple-level engine: the two backends must agree on the problem shape
//! (state dimensionality, action validity), the sim backend must be
//! bit-reproducible regardless of thread count, and a DRL agent must be
//! able to train end-to-end against the tuple-level backend through the
//! generic parallel collector.

use std::sync::Arc;

use dsdps_drl::control::env::Environment;
use dsdps_drl::control::parallel::RoundPlan;
use dsdps_drl::control::scenario::{sim_fleet, Scenario};
use dsdps_drl::control::state::featurize_into;
use dsdps_drl::control::ControlConfig;
use dsdps_drl::rl::{ActionMapper, DdpgAgent, DdpgConfig, Elem, KBestMapper, Scalar};
use dsdps_drl::sim::Assignment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workpool::{with_pool, Pool};

fn cfg() -> ControlConfig {
    ControlConfig {
        sim_epoch_s: 1.0,
        ..ControlConfig::test()
    }
}

/// Every registry scenario, on both backends: the analytic and tuple-level
/// environments must expose the same problem shape, produce the same state
/// dimensionality, and accept the same actions.
#[test]
fn every_scenario_agrees_across_backends() {
    let cfg = cfg();
    let names = Scenario::names();
    assert!(names.len() >= 12, "registry shrank to {}", names.len());
    for name in names {
        let sc = Scenario::by_name(name).expect("registry name resolves");
        let mut analytic = sc.analytic_env(&cfg, cfg.seed);
        let mut sim = sc.sim_env(&cfg, cfg.seed);

        // Problem shape agreement.
        assert_eq!(analytic.n_executors(), sim.n_executors(), "{name}: N");
        assert_eq!(analytic.n_machines(), sim.n_machines(), "{name}: M");
        assert_eq!(analytic.n_executors(), sc.n_executors(), "{name}: N");
        assert_eq!(analytic.n_machines(), sc.n_machines(), "{name}: M");

        // State dimensionality agreement: featurizing the same (X, w)
        // against either backend's shape yields sc.state_dim() features.
        let initial = sc.initial_assignment();
        let mut features = Vec::new();
        featurize_into(&initial, &sc.app.workload, cfg.rate_scale, &mut features);
        assert_eq!(features.len(), sc.state_dim(), "{name}: state dim");
        assert_eq!(
            initial.n_executors() * initial.n_machines(),
            sc.action_dim(),
            "{name}: action dim"
        );

        // Action validity agreement: the round-robin start and a
        // mapper-produced K-NN candidate are deployable on both backends
        // and both measure a finite positive latency.
        let mut mapper = KBestMapper::new(sc.n_executors(), sc.n_machines());
        let proto = vec![0.3; sc.action_dim()];
        let cand = &mapper.nearest(&proto, 1)[0];
        let mapped = Assignment::new(cand.choice.clone(), sc.n_machines())
            .expect("mapper candidates are valid assignments");
        for action in [&initial, &mapped] {
            let a_ms = analytic.deploy_and_measure(action, &sc.app.workload);
            assert!(
                a_ms.is_finite() && a_ms > 0.0,
                "{name}: analytic latency {a_ms}"
            );
            let s_ms = sim.deploy_and_measure(action, &sc.app.workload);
            assert!(s_ms.is_finite() && s_ms > 0.0, "{name}: sim latency {s_ms}");
        }
    }
}

/// Same-seed `SimEnv` trajectories are bit-identical, and independent of
/// the workpool size (the DSS_THREADS=1 vs =4 guarantee): each env owns
/// its whole event loop, so thread scheduling cannot touch event order.
#[test]
fn sim_env_trajectories_are_bit_identical_across_thread_counts() {
    let cfg = cfg();
    let sc = Scenario::by_name("cq-small-diurnal").expect("registry scenario");
    let trajectory = |threads: usize| -> Vec<f64> {
        with_pool(Arc::new(Pool::new(threads)), || {
            let mut env = sc.sim_env(&cfg, 42);
            let mut mapper = KBestMapper::new(sc.n_executors(), sc.n_machines());
            let mut current = sc.initial_assignment();
            let mut out = vec![env.deploy_and_measure(&current, &sc.app.workload)];
            for step in 0..10 {
                // A deterministic action walk through mapper candidates:
                // trajectories cover re-deployments, not just one deploy.
                let proto = vec![Elem::from_f64(0.1 * (step % 4) as f64); sc.action_dim()];
                let cand = &mapper.nearest(&proto, 2)[step % 2];
                current = Assignment::new(cand.choice.clone(), sc.n_machines()).unwrap();
                out.push(env.deploy_and_measure(&current, &sc.app.workload));
                out.push(env.workload_multiplier());
            }
            out
        })
    };
    let single = trajectory(1);
    assert_eq!(single, trajectory(1), "same-seed re-run must be identical");
    assert_eq!(
        single,
        trajectory(4),
        "thread count must not leak into the trajectory"
    );
    assert!(single.iter().all(|v| v.is_finite()));
}

/// The event-driven engine against its dense oracle, on **every** registry
/// scenario: same seed, same deploys, same epochs — the per-epoch latency
/// trajectory and the processed-tuple counts must be bit-identical. The
/// calendar only changes *how* the next event is found (binary heap vs
/// full scan), never *which* event fires.
#[test]
fn event_engine_matches_dense_oracle_on_every_registry_scenario() {
    for name in Scenario::names() {
        let sc = Scenario::by_name(name).expect("registry name resolves");
        let run = |dense: bool| -> (Vec<Option<f64>>, (u64, u64, u64, usize)) {
            let mut engine = sc.sim_engine_with(dsdps_drl::sim::SimConfig::steady_state(7));
            engine.set_dense_events(dense);
            engine.set_rate_schedule(sc.schedule.clone());
            engine.deploy(sc.initial_assignment()).expect("deployable");
            let traj: Vec<Option<f64>> = (0..4).map(|_| engine.step_epoch(0.5)).collect();
            (traj, engine.tuple_counts())
        };
        let event = run(false);
        let dense = run(true);
        assert_eq!(
            event, dense,
            "{name}: event engine diverged from dense oracle"
        );
        assert!(
            event.0.iter().flatten().all(|l| l.is_finite() && *l > 0.0),
            "{name}: latencies must be finite"
        );
    }
}

/// Fleet scenarios on the training backends, at a reduced epoch budget:
/// the 1152-executor problems featurize, map and measure on both the
/// analytic and tuple-level backends, and the sim trajectory is
/// bit-identical across 1- and 4-thread pools (the DSS_THREADS=1/4
/// guarantee at fleet scale).
#[test]
fn fleet_scenarios_reproduce_across_thread_counts() {
    let cfg = cfg();
    for name in ["cq-fleet", "word-count-fleet"] {
        let sc = Scenario::by_name(name).expect("fleet scenario registered");
        assert_eq!(sc.n_executors(), 1152, "{name}");
        assert_eq!(sc.n_machines(), 128, "{name}");
        let trajectory = |threads: usize| -> Vec<f64> {
            with_pool(Arc::new(Pool::new(threads)), || {
                let mut env = sc.sim_env(&cfg, 42);
                let mut mapper = KBestMapper::new(sc.n_executors(), sc.n_machines());
                let mut current = sc.initial_assignment();
                let mut out = vec![env.deploy_and_measure(&current, &sc.app.workload)];
                for step in 0..2 {
                    let proto = vec![Elem::from_f64(0.2 * step as f64); sc.action_dim()];
                    let cand = &mapper.nearest(&proto, 1)[0];
                    current = Assignment::new(cand.choice.clone(), sc.n_machines()).unwrap();
                    out.push(env.deploy_and_measure(&current, &sc.app.workload));
                }
                out
            })
        };
        let single = trajectory(1);
        assert!(single.iter().all(|v| v.is_finite() && *v > 0.0), "{name}");
        assert_eq!(single, trajectory(4), "{name}: thread count leaked");
        // The analytic backend accepts the same fleet actions.
        let mut analytic = sc.analytic_env(&cfg, 7);
        let ms = analytic.deploy_and_measure(&sc.initial_assignment(), &sc.app.workload);
        assert!(ms.is_finite() && ms > 0.0, "{name}: analytic latency {ms}");
    }
}

/// The acceptance demo: a DRL agent trains end-to-end against `SimEnv`
/// through the generic `ParallelCollector` on a registry scenario, and
/// the trained greedy policy beats the random (ε = 1) baseline reward.
#[test]
fn ddpg_trains_against_sim_env_and_beats_random_baseline() {
    let cfg = ControlConfig {
        sim_epoch_s: 1.0,
        ..ControlConfig::test()
    };
    let sc = Scenario::by_name("cq-small-steady").expect("registry scenario");
    let mut agent = DdpgAgent::new(
        sc.state_dim(),
        sc.action_dim(),
        DdpgConfig {
            k: 6,
            seed: cfg.seed,
            gamma: cfg.gamma,
            hidden: [32, 16],
            ..DdpgConfig::default()
        },
    );

    // Evaluation harness: a *fresh* fleet (same seeds, same engines) per
    // policy, so the stateful engines' accumulated backlog from training
    // cannot bias the comparison.
    let eval = |agent: &DdpgAgent, eps: f64| -> f64 {
        let mut fresh = sim_fleet(std::slice::from_ref(&sc), &cfg, 2, 1024);
        fresh.collect_round(agent, eps, 12).iter().sum::<f64>() / 24.0
    };

    // Random baseline: pure exploration with the untrained agent.
    let baseline = eval(&agent, 1.0);

    // Train end-to-end against the tuple-level backend: alternating
    // collect/train rounds with decaying exploration.
    let mut col = sim_fleet(std::slice::from_ref(&sc), &cfg, 2, 1024);
    let mut mapper = KBestMapper::new(sc.n_executors(), sc.n_machines());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let plan = RoundPlan {
        rounds: 10,
        steps_per_actor: 8,
        train_per_round: 30,
    };
    col.run(&mut agent, &mut mapper, &mut rng, &plan, |round| {
        (0.8 * (1.0 - round as f64 / 10.0)).max(0.1)
    });
    assert!(agent.train_steps() >= 300, "learner must actually train");

    // Evaluate the trained greedy policy on an identical fresh fleet.
    let trained = eval(&agent, 0.0);
    assert!(
        trained > baseline,
        "trained greedy reward {trained:.4} must beat the random baseline {baseline:.4}"
    );
}
