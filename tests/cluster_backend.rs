//! The control-plane backend (`ClusterEnv`) through the whole training
//! stack: registry construction, fleet collection, thread-count
//! reproducibility, fault-plan scenarios, and the acceptance demo — a
//! DDPG agent trained end-to-end through the Figure-1 message path beats
//! the ε = 1 random baseline.

use std::sync::Arc;

use dsdps_drl::control::env::Environment;
use dsdps_drl::control::parallel::RoundPlan;
use dsdps_drl::control::scenario::{cluster_fleet, Scenario};
use dsdps_drl::control::{ClusterTransport, ControlConfig};
use dsdps_drl::rl::{DdpgAgent, DdpgConfig, KBestMapper};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workpool::{with_pool, Pool};

fn cfg() -> ControlConfig {
    ControlConfig {
        sim_epoch_s: 1.0,
        ..ControlConfig::test()
    }
}

/// Same-seed `ClusterEnv` trajectories are bit-identical across runs,
/// across thread counts, and across transports: each actor owns a whole
/// private cluster, so neither scheduling nor the socket hop can reorder
/// anything the agent observes.
#[test]
fn cluster_env_trajectories_are_reproducible_everywhere() {
    let cfg = cfg();
    let sc = Scenario::by_name("cq-small-diurnal").expect("registry scenario");
    let trajectory = |threads: usize, transport: ClusterTransport| -> Vec<f64> {
        with_pool(Arc::new(Pool::new(threads)), || {
            let mut env = sc.cluster_env_with(&cfg, 42, transport);
            let mut current = sc.initial_assignment();
            let mut out = vec![env.deploy_and_measure(&current, &sc.app.workload)];
            for step in 0..8 {
                current = current.with_move(step % current.n_executors(), (step + 1) % 4);
                out.push(env.deploy_and_measure(&current, &sc.app.workload));
                out.push(env.workload_multiplier());
            }
            out
        })
    };
    let single = trajectory(1, ClusterTransport::Channel);
    assert!(single.iter().all(|v| v.is_finite()));
    assert_eq!(
        single,
        trajectory(1, ClusterTransport::Channel),
        "same-seed re-run must be identical"
    );
    assert_eq!(
        single,
        trajectory(4, ClusterTransport::Channel),
        "thread count must not leak into the trajectory"
    );
    assert_eq!(
        single,
        trajectory(1, ClusterTransport::Tcp),
        "the TCP hop must not leak into the trajectory"
    );
}

/// A fleet of private in-process clusters collects into every shard and
/// reproduces bit-identically across pool sizes.
#[test]
fn cluster_fleet_collects_deterministically() {
    let cfg = cfg();
    let sc = Scenario::by_name("cq-small-steady").expect("registry scenario");
    let agent = DdpgAgent::new(
        sc.state_dim(),
        sc.action_dim(),
        DdpgConfig {
            k: 4,
            seed: cfg.seed,
            hidden: [16, 8],
            ..DdpgConfig::default()
        },
    );
    let run = |threads: usize| {
        with_pool(Arc::new(Pool::new(threads)), || {
            let mut col = cluster_fleet(std::slice::from_ref(&sc), &cfg, 2, 256);
            col.collect_round(&agent, 0.4, 5)
        })
    };
    let first = run(4);
    assert_eq!(first.len(), 2);
    assert!(first.iter().all(|&r| r < 0.0));
    assert_eq!(first, run(4), "re-run must reproduce rewards exactly");
    assert_eq!(first, run(1), "thread count must not change results");
}

/// A fault-plan scenario trains through the same path: the crash fires
/// inside the masters, repair reroutes the executors, and collection
/// keeps producing finite rewards across the outage.
#[test]
fn fault_scenario_collects_through_crash_and_repair() {
    let cfg = cfg();
    let sc = Scenario::by_name("cq-small-crash").expect("registry scenario");
    let agent = DdpgAgent::new(
        sc.state_dim(),
        sc.action_dim(),
        DdpgConfig {
            k: 4,
            seed: cfg.seed,
            hidden: [16, 8],
            ..DdpgConfig::default()
        },
    );
    let mut col = cluster_fleet(std::slice::from_ref(&sc), &cfg, 1, 256);
    // 30 one-second epochs cross the crash at t = 20 s and the session
    // expiry behind it.
    let rewards = col.collect_round(&agent, 0.3, 30);
    assert!(rewards[0].is_finite());
    let nimbus = col.env(0).nimbus().expect("channel-mode master");
    assert!(
        nimbus.engine().machine_failed(1),
        "the scheduled crash must have fired"
    );
    assert!(
        nimbus.repair_count() >= 1,
        "auto-repair must have rescheduled the stranded executors"
    );
}

/// The acceptance demo: a DRL agent trains end-to-end against the
/// Figure-1 control plane through the generic `ParallelCollector`, and
/// the trained greedy policy beats the random (ε = 1) baseline reward.
#[test]
fn ddpg_trains_through_cluster_env_and_beats_random_baseline() {
    let cfg = cfg();
    let sc = Scenario::by_name("cq-small-steady").expect("registry scenario");
    let mut agent = DdpgAgent::new(
        sc.state_dim(),
        sc.action_dim(),
        DdpgConfig {
            k: 6,
            seed: cfg.seed,
            gamma: cfg.gamma,
            hidden: [32, 16],
            ..DdpgConfig::default()
        },
    );

    // Evaluation harness: a *fresh* fleet (same seeds, same clusters) per
    // policy, so accumulated engine backlog cannot bias the comparison.
    let eval = |agent: &DdpgAgent, eps: f64| -> f64 {
        let mut fresh = cluster_fleet(std::slice::from_ref(&sc), &cfg, 2, 1024);
        fresh.collect_round(agent, eps, 12).iter().sum::<f64>() / 24.0
    };

    // Random baseline: pure exploration with the untrained agent.
    let baseline = eval(&agent, 1.0);

    // Train end-to-end through the control plane: every transition the
    // learner sees travelled the framed socket protocol.
    let mut col = cluster_fleet(std::slice::from_ref(&sc), &cfg, 2, 1024);
    let mut mapper = KBestMapper::new(sc.n_executors(), sc.n_machines());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let plan = RoundPlan {
        rounds: 10,
        steps_per_actor: 8,
        train_per_round: 30,
    };
    col.run(&mut agent, &mut mapper, &mut rng, &plan, |round| {
        (0.8 * (1.0 - round as f64 / 10.0)).max(0.1)
    });
    assert!(agent.train_steps() >= 300, "learner must actually train");

    let trained = eval(&agent, 0.0);
    assert!(
        trained > baseline,
        "trained greedy reward {trained:.4} must beat the random baseline {baseline:.4}"
    );

    // And a fresh cluster still deploys and measures after training.
    let mut env = sc.cluster_env(&cfg, cfg.seed ^ 0x5EED);
    let ms = env.deploy_and_measure(&sc.initial_assignment(), &sc.app.workload);
    assert!(ms.is_finite() && ms > 0.0);
}
