//! Scheduler-level integration: every method produces valid assignments on
//! every paper topology, and the DQN's restricted action space behaves as
//! §3.2 describes.

use dsdps_drl::apps::{all_large_scale, continuous_queries, CqScale};
use dsdps_drl::control::experiment::initial_state;
use dsdps_drl::control::scheduler::RandomMode;
use dsdps_drl::control::{
    ActorCriticScheduler, ControlConfig, DqnScheduler, ModelBasedScheduler, RandomScheduler,
    RoundRobinScheduler, Scheduler,
};
use dsdps_drl::sim::ClusterSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_scheduler_produces_valid_assignments_on_every_topology() {
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = ControlConfig::test();
    for app in all_large_scale() {
        let n = app.topology.n_executors();
        let sources = app.workload.rates().len();
        let state = initial_state(&app, &cluster);
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(RoundRobinScheduler::new(&app.topology, &cluster)),
            Box::new(RandomScheduler::new(
                RandomMode::FullRandom,
                StdRng::seed_from_u64(1),
            )),
            Box::new(RandomScheduler::new(
                RandomMode::RandomWalk,
                StdRng::seed_from_u64(2),
            )),
            Box::new(ModelBasedScheduler::new(app.topology.clone(), 10, 4, 3)),
            Box::new(DqnScheduler::new(n, 10, sources, &cfg)),
            Box::new(ActorCriticScheduler::new(n, 10, sources, &cfg)),
        ];
        for sched in &mut schedulers {
            let a = sched.schedule(&state);
            assert_eq!(a.n_executors(), n, "{} on {}", sched.name(), app.name);
            assert_eq!(a.n_machines(), 10);
            a.validate_for(&app.topology, &cluster)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", sched.name(), app.name));
        }
    }
}

#[test]
fn dqn_moves_one_thread_per_epoch() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = ControlConfig::test();
    let mut dqn = DqnScheduler::new(20, 10, 1, &cfg);
    let state = initial_state(&app, &cluster);
    for _ in 0..10 {
        let next = dqn.schedule(&state);
        assert!(
            state.assignment.diff(&next).len() <= 1,
            "DQN action space is single moves"
        );
    }
}

#[test]
fn learning_schedulers_ignore_observations_when_frozen() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = ControlConfig::test();
    let state = initial_state(&app, &cluster);

    let mut ac = ActorCriticScheduler::new(20, 10, 1, &cfg);
    ac.freeze();
    let a1 = ac.schedule(&state);
    ac.observe(&state, &a1, -99.0, &state.clone());
    assert_eq!(ac.agent().train_steps(), 0);
    assert_eq!(ac.schedule(&state), a1);

    let mut dqn = DqnScheduler::new(20, 10, 1, &cfg);
    dqn.freeze();
    let d1 = dqn.schedule(&state);
    dqn.observe(&state, &d1, -99.0, &state.clone());
    assert_eq!(dqn.agent().train_steps(), 0);
}
