//! End-to-end pipeline: offline collection → pre-training → online
//! learning → deployment on the tuple-level engine, asserting the paper's
//! headline shape at test scale.

use dsdps_drl::apps::{continuous_queries, CqScale};
use dsdps_drl::control::experiment::{
    deployment_curve, figure_rewards, stable_ms, train_method, Method,
};
use dsdps_drl::control::ControlConfig;
use dsdps_drl::sim::ClusterSpec;

fn cfg() -> ControlConfig {
    ControlConfig {
        offline_samples: 400,
        offline_steps: 300,
        online_epochs: 80,
        eps_decay_epochs: 40,
        ..ControlConfig::test()
    }
}

#[test]
fn actor_critic_beats_default_scheduler_on_des() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = cfg();

    let default = train_method(Method::Default, &app, &cluster, &cfg);
    let ac = train_method(Method::ActorCritic, &app, &cluster, &cfg);

    let d = stable_ms(&deployment_curve(
        &app,
        &cluster,
        &cfg,
        &default.solution,
        10.0,
        30.0,
    ));
    let a = stable_ms(&deployment_curve(
        &app,
        &cluster,
        &cfg,
        &ac.solution,
        10.0,
        30.0,
    ));
    assert!(
        a < d * 0.9,
        "actor-critic ({a:.3} ms) should beat default ({d:.3} ms) by >10%"
    );
}

#[test]
fn model_based_beats_default_scheduler_on_des() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = cfg();
    let default = train_method(Method::Default, &app, &cluster, &cfg);
    let mb = train_method(Method::ModelBased, &app, &cluster, &cfg);
    let d = stable_ms(&deployment_curve(
        &app,
        &cluster,
        &cfg,
        &default.solution,
        10.0,
        30.0,
    ));
    let m = stable_ms(&deployment_curve(
        &app,
        &cluster,
        &cfg,
        &mb.solution,
        10.0,
        30.0,
    ));
    assert!(
        m < d,
        "model-based ({m:.3} ms) should beat default ({d:.3} ms)"
    );
}

#[test]
fn reward_curves_are_normalized_and_actor_critic_dominates() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let curves = figure_rewards(&app, &cluster, &cfg());
    assert_eq!(curves.len(), 2);
    for (_, series) in &curves {
        assert!(series.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
    let tail = |s: &dsdps_drl::metrics::TimeSeries| s.tail_mean(10).unwrap();
    let (ac, dqn) = (&curves[0].1, &curves[1].1);
    // Normalized scales differ per-curve; compare each curve's own climb.
    assert!(
        tail(ac) >= ac.window_mean(0.0, 10.0).unwrap() - 0.15,
        "actor-critic reward should not collapse"
    );
    let _ = dqn;
}

#[test]
fn training_is_reproducible_for_a_seed() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let mut c = cfg();
    c.offline_samples = 150;
    c.online_epochs = 20;
    let a = train_method(Method::ActorCritic, &app, &cluster, &c);
    let b = train_method(Method::ActorCritic, &app, &cluster, &c);
    assert_eq!(a.solution, b.solution, "same seed, same solution");
    let mut c2 = c;
    c2.seed ^= 0xFFFF;
    let d = train_method(Method::ActorCritic, &app, &cluster, &c2);
    // Different seed is allowed to coincide, but the rewards series differs.
    assert_ne!(
        a.rewards.as_ref().unwrap().values(),
        d.rewards.as_ref().unwrap().values()
    );
}
