//! # dsdps-drl
//!
//! A from-scratch Rust reproduction of *Model-Free Control for Distributed
//! Stream Data Processing using Deep Reinforcement Learning*
//! (Li, Xu, Tang, Wang — VLDB 2018).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sim`] — the Storm-like DSDPS discrete-event simulator,
//! * [`nn`] — the dense neural network substrate,
//! * [`rl`] — replay buffer, DQN and DDPG-style actor-critic, prioritized
//!   replay and exploration-noise processes,
//! * [`miqp`] — the MIQP-NN nearest-neighbour action solvers,
//! * [`svr`] — support-vector regression (model-based baseline),
//! * [`apps`] — the paper's three stream applications,
//! * [`metrics`] — series post-processing used by the figures,
//! * [`control`] — the paper's contribution: the DRL-based control
//!   framework (schedulers, offline training and online learning loops),
//! * [`coord`] — the ZooKeeper-like coordination service,
//! * [`proto`] — the agent↔scheduler socket protocol,
//! * [`store`] — the durable transition-sample database,
//! * [`nimbus`] — the Nimbus-like master (custom scheduler endpoint,
//!   heartbeat monitoring, failure repair),
//! * [`trainer`] — the Rapid-style async training service: parameter
//!   server, continuous learner, and rollout workers over `dss-proto`,
//! * [`control_plane`] — the integrated Figure-1 deployment: agent thread
//!   and cluster thread connected by the real substrates.
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `examples/control_plane.rs` / `examples/fault_tolerance.rs` for the
//! distributed control plane.

pub mod control_plane;
pub mod offline;

pub use dss_apps as apps;
pub use dss_coord as coord;
pub use dss_core as control;
pub use dss_metrics as metrics;
pub use dss_miqp as miqp;
pub use dss_nimbus as nimbus;
pub use dss_nn as nn;
pub use dss_proto as proto;
pub use dss_rl as rl;
pub use dss_sim as sim;
pub use dss_store as store;
pub use dss_svr as svr;
pub use dss_trainer as trainer;

pub use control_plane::{
    run_control_plane, ControlPlaneConfig, ControlPlaneError, ControlPlaneReport,
};

/// Workspace version, shared by every crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
